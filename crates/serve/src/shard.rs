//! Sharded serving: a front router over N independent shard servers.
//!
//! Each shard is a full `archdse-serve` instance (its own reactor,
//! coalescer, `CpiCache` and learned tier — shared-nothing). The router
//! is a second, thinner instance of the same reactor whose app handlers
//! proxy to the shards over persistent keep-alive connections:
//!
//! * `/v1/evaluate` — each point is owned by the shard
//!   `shard_of(code)` (a splitmix64 hash of the encoded design point,
//!   so ownership is a pure function of the point, not of arrival
//!   order). The batch splits by owner, fans out concurrently, and the
//!   replies merge back in the caller's original point order. Because
//!   every shard evaluates deterministically and a point always lands
//!   on the same shard's cache, the merged answers are bit-identical to
//!   a single server's — sharding changes throughput, never answers.
//! * `/v1/explain` — routed by the same hash (stateless, but keeps a
//!   point's traffic on one shard).
//! * `/v1/workloads` — fanned to *all* shards so every shard can answer
//!   for every registered workload.
//! * `/v1/explore` + `/v1/jobs` — jobs round-robin across shards; the
//!   router hands out global ids `local * N + shard` so a job id alone
//!   names its shard.
//! * `/metrics` — the JSON form is a field-wise sum of the shards'
//!   reports; the Prometheus form re-parses each shard's exposition
//!   ([`dse_obs::parse_prometheus_text`]), sums series
//!   ([`dse_obs::sum_snapshots`]) and overlays the router's own
//!   registry (router series win collisions).

use std::io;
use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::sync_channel;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use dse_obs::Counter;
use dse_reactor::{waker_pair, Waker};
use serde_json::Value;

use crate::http::client::{ClientResponse, Conn};
use crate::http::{BadRequest, Request, CT_JSON, CT_PROMETHEUS};
use crate::protocol::{error_body, RequestCounters};
use crate::reactor::{app_worker_loop, AppJob, CompletionQueue, Engine, Reactor};
use crate::server::ServerMetrics;

/// Socket timeout on upstream connections (generous: an upstream
/// evaluate can sit behind a long coalescer batch).
const UPSTREAM_TIMEOUT: Duration = Duration::from_secs(60);

/// The shard that owns an encoded design point: a splitmix64 finalizer
/// over the code, mod the shard count. Pure function of the point, so
/// a point always hits the same shard's cache.
pub(crate) fn shard_of(code: u64, shards: usize) -> usize {
    let mut z = code.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z % shards as u64) as usize
}

/// Configuration of a shard router.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Bind address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Upstream shard addresses (`host:port`), shard index = position.
    pub shard_addrs: Vec<String>,
    /// App-handler pool size. The router proxies with blocking upstream
    /// I/O, so one handler is occupied for a request's whole upstream
    /// round-trip: size this at or above the peak client concurrency
    /// you want served without `503` admission pushback.
    pub workers: usize,
    /// Idle upstream keep-alive connections kept per shard; checked-out
    /// connections are unbounded, this only caps what parks between
    /// requests.
    pub pool_idle_cap: usize,
    /// Per-connection read deadline on the router's own sockets.
    pub read_timeout: Duration,
    /// Per-connection write deadline on the router's own sockets.
    pub write_timeout: Duration,
    /// Largest accepted request body.
    pub max_body_bytes: usize,
}

impl RouterConfig {
    /// Defaults: ephemeral localhost port, 64 app workers, 64 parked
    /// upstream connections per shard, 1 MiB bodies, 10 s socket
    /// deadlines.
    #[must_use]
    pub fn new(shard_addrs: Vec<String>) -> Self {
        Self {
            addr: "127.0.0.1:0".into(),
            shard_addrs,
            workers: 64,
            pool_idle_cap: 64,
            read_timeout: Duration::from_secs(10),
            write_timeout: Duration::from_secs(10),
            max_body_bytes: 1024 * 1024,
        }
    }
}

/// Cross-thread router state.
pub(crate) struct RouterShared {
    addr: SocketAddr,
    config: RouterConfig,
    shutdown: AtomicBool,
    waker: Waker,
    metrics: ServerMetrics,
    /// Requests forwarded per shard (`serve_shard_requests_total{shard}`).
    shard_requests: Vec<Counter>,
    /// Round-robin cursor for `/v1/explore`.
    explore_rr: AtomicU64,
    /// Idle keep-alive connections per shard.
    pools: Vec<Mutex<Vec<Conn>>>,
    /// Completed-request ring for `GET /debug/requests` (router view).
    flight: crate::flight::FlightRecorder,
    /// Router-assigned trace id sequence (deterministic per process).
    trace_seq: AtomicU64,
}

impl RouterShared {
    pub(crate) fn metrics(&self) -> &ServerMetrics {
        &self.metrics
    }

    pub(crate) fn flight(&self) -> &crate::flight::FlightRecorder {
        &self.flight
    }

    pub(crate) fn next_trace_seq(&self) -> u64 {
        self.trace_seq.fetch_add(1, Ordering::Relaxed) + 1
    }

    pub(crate) fn limits(&self) -> (Duration, Duration, usize) {
        (self.config.read_timeout, self.config.write_timeout, self.config.max_body_bytes)
    }

    pub(crate) fn is_shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    pub(crate) fn initiate_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.waker.wake();
    }

    fn shards(&self) -> usize {
        self.config.shard_addrs.len()
    }

    fn counters(&self) -> RequestCounters {
        RequestCounters {
            healthz: self.metrics.healthz.get(),
            metrics: self.metrics.metrics.get(),
            evaluate: self.metrics.evaluate.get(),
            explain: self.metrics.explain.get(),
            explore: self.metrics.explore.get(),
            workloads: self.metrics.workloads.get(),
            jobs: self.metrics.jobs.get(),
            rejected: self.metrics.rejected.get(),
            errors: self.metrics.errors.get(),
        }
    }

    /// One request/response round-trip to a shard over a pooled
    /// keep-alive connection, with one reconnect-and-retry on failure
    /// (a pooled connection may have idled past the shard's deadline).
    /// `trace` propagates the caller's trace context to the shard via
    /// the `X-ArchDSE-Trace` header.
    fn upstream(
        &self,
        shard: usize,
        method: &str,
        path: &str,
        body: Option<&str>,
        trace: Option<&str>,
    ) -> io::Result<ClientResponse> {
        self.shard_requests[shard].inc();
        let trace_header = trace.map(|id| (crate::http::TRACE_HEADER, id));
        let headers: &[(&str, &str)] = trace_header.as_slice();
        let pooled = self.pools[shard].lock().expect("shard pool poisoned").pop();
        if let Some(mut conn) = pooled {
            if let Ok(response) = conn.request_with(method, path, body, headers) {
                self.park(shard, conn);
                return Ok(response);
            }
        }
        let addr = &self.config.shard_addrs[shard];
        let mut conn = Conn::connect_with_timeout(addr, UPSTREAM_TIMEOUT)?;
        let response = conn.request_with(method, path, body, headers)?;
        self.park(shard, conn);
        Ok(response)
    }

    fn park(&self, shard: usize, conn: Conn) {
        if !conn.is_alive() {
            return;
        }
        let mut pool = self.pools[shard].lock().expect("shard pool poisoned");
        if pool.len() < self.config.pool_idle_cap {
            pool.push(conn);
        }
    }
}

/// A running shard router: bound address plus shutdown/join control.
pub struct RouterHandle {
    shared: Arc<RouterShared>,
    supervisor: Option<JoinHandle<()>>,
}

impl RouterHandle {
    /// The address the router is listening on.
    pub fn addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// Requests a graceful shutdown of the router (the shards are shut
    /// down by `POST /v1/shutdown`, not by this call).
    pub fn shutdown(&self) {
        self.shared.initiate_shutdown();
    }

    /// Blocks until the router has drained and exited.
    ///
    /// # Panics
    ///
    /// Panics if the supervisor thread itself panicked.
    pub fn join(mut self) {
        if let Some(handle) = self.supervisor.take() {
            handle.join().expect("router supervisor panicked");
        }
    }
}

/// Binds the router and verifies every shard answers `/healthz`.
/// Returns immediately with the running handle.
///
/// # Errors
///
/// Fails when the address cannot be bound, no shards were given, or a
/// shard does not answer its health check.
pub fn spawn_router(config: RouterConfig) -> io::Result<RouterHandle> {
    if config.shard_addrs.is_empty() {
        return Err(io::Error::other("a router needs at least one shard address"));
    }
    for (i, addr) in config.shard_addrs.iter().enumerate() {
        let health = crate::http::client::get(addr, "/healthz")
            .map_err(|e| io::Error::other(format!("shard {i} at {addr} is unreachable: {e}")))?;
        if health.status != 200 {
            return Err(io::Error::other(format!(
                "shard {i} at {addr} failed its health check (status {})",
                health.status
            )));
        }
    }

    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    let (waker, wake_rx) = waker_pair()?;
    let metrics = ServerMetrics::new();
    let shard_requests = (0..config.shard_addrs.len())
        .map(|i| {
            metrics
                .registry
                .counter_with("serve_shard_requests_total", &[("shard", &i.to_string())])
        })
        .collect();
    let pools = (0..config.shard_addrs.len()).map(|_| Mutex::new(Vec::new())).collect();
    let shared = Arc::new(RouterShared {
        addr,
        shutdown: AtomicBool::new(false),
        waker: waker.clone(),
        metrics,
        shard_requests,
        explore_rr: AtomicU64::new(0),
        pools,
        flight: crate::flight::FlightRecorder::new(),
        trace_seq: AtomicU64::new(0),
        config,
    });
    let completions = Arc::new(CompletionQueue::new(waker));

    // The queue buffers between the reactor and the handler pool; with
    // a pool sized for the target concurrency it stays near-empty, so
    // it only needs to absorb scheduling jitter.
    let (app_tx, app_rx) = sync_channel::<AppJob>(shared.config.workers.max(128));
    let app_rx = Arc::new(Mutex::new(app_rx));
    let app_workers: Vec<JoinHandle<()>> = (0..shared.config.workers.max(1))
        .map(|_| {
            let engine = Engine::Router(Arc::clone(&shared));
            let app_rx = Arc::clone(&app_rx);
            let completions = Arc::clone(&completions);
            std::thread::spawn(move || app_worker_loop(engine, app_rx, completions))
        })
        .collect();

    let reactor = {
        let engine = Engine::Router(Arc::clone(&shared));
        let completions = Arc::clone(&completions);
        std::thread::spawn(move || Reactor::run(engine, listener, wake_rx, completions, app_tx))
    };

    let supervisor = std::thread::spawn(move || {
        let _ = reactor.join();
        for worker in app_workers {
            let _ = worker.join();
        }
    });

    Ok(RouterHandle { shared, supervisor: Some(supervisor) })
}

/// Renders an upstream failure as a 502 naming the shard.
fn shard_down(shard: usize, e: &io::Error) -> (u16, String) {
    (502, error_body(&format!("shard {shard} is unreachable: {e}")))
}

/// Forwards a request to one shard verbatim, proxying status and body.
fn forward(router: &RouterShared, shard: usize, request: &Request) -> (u16, String) {
    let body = match request.body_utf8() {
        Ok(body) if !body.is_empty() => Some(body),
        Ok(_) => None,
        Err(BadRequest { status, reason }) => return (status, error_body(&reason)),
    };
    match router.upstream(shard, &request.method, &request.path, body, request.trace.as_deref()) {
        Ok(response) => (response.status, response.body),
        Err(e) => shard_down(shard, &e),
    }
}

/// App-pool request routing for the router engine.
pub(crate) fn route(router: &Arc<RouterShared>, request: &Request) -> (u16, String, &'static str) {
    let (path, query) = match request.path.split_once('?') {
        Some((path, query)) => (path, query),
        None => (request.path.as_str(), ""),
    };
    if let ("GET", "/metrics") = (request.method.as_str(), path) {
        return handle_metrics(router, query);
    }
    let (status, body) = match (request.method.as_str(), path) {
        ("GET", "/healthz") => {
            router.metrics.healthz.inc();
            forward(router, 0, request)
        }
        ("GET", "/debug/requests") => handle_debug_requests(router, request),
        ("POST", "/v1/evaluate") => handle_evaluate(router, request),
        ("POST", "/v1/explain") => handle_explain(router, request),
        ("POST", "/v1/explore") => handle_explore(router, request),
        ("POST", "/v1/workloads") => handle_workloads(router, request),
        ("GET", path) if path.starts_with("/v1/jobs/") => handle_job(router, path),
        ("POST", "/v1/shutdown") => handle_shutdown(router),
        (
            _,
            "/healthz" | "/metrics" | "/v1/evaluate" | "/v1/explain" | "/v1/explore"
            | "/v1/workloads",
        ) => (405, error_body("method not allowed for this endpoint")),
        _ => (
            404,
            error_body(
                "no such endpoint; try GET /healthz, GET /metrics, POST /v1/evaluate, \
                 POST /v1/explain, POST /v1/explore, POST /v1/workloads, GET /v1/jobs/<id>, \
                 POST /v1/shutdown",
            ),
        ),
    };
    (status, body, CT_JSON)
}

/// `GET /debug/requests` on the router: the router's own flight
/// recorder plus each shard's, in shard order.
fn handle_debug_requests(router: &Arc<RouterShared>, request: &Request) -> (u16, String) {
    let mut out = String::from("{\"router\":");
    out.push_str(&router.flight.to_json());
    out.push_str(",\"shards\":[");
    for shard in 0..router.shards() {
        if shard > 0 {
            out.push(',');
        }
        match router.upstream(shard, "GET", "/debug/requests", None, request.trace.as_deref()) {
            Ok(response) if response.status == 200 => out.push_str(&response.body),
            Ok(response) => return (response.status, response.body),
            Err(e) => return shard_down(shard, &e),
        }
    }
    out.push_str("]}");
    (200, out)
}

fn handle_evaluate(router: &Arc<RouterShared>, request: &Request) -> (u16, String) {
    router.metrics.evaluate.inc();
    let body = match request.body_utf8() {
        Ok(body) => body,
        Err(BadRequest { status, reason }) => return (status, error_body(&reason)),
    };
    let shards = router.shards();
    // Malformed bodies (or ones whose points we cannot read) forward to
    // shard 0 verbatim so clients get the shard's canonical error text.
    let Ok(parsed) = serde_json::from_str::<Value>(body) else {
        return forward(router, 0, request);
    };
    let codes: Option<Vec<u64>> = parsed
        .get("points")
        .and_then(Value::as_array)
        .map(|points| points.iter().map(Value::as_u64).collect::<Option<Vec<u64>>>())
        .unwrap_or(None);
    let Some(codes) = codes else {
        return forward(router, 0, request);
    };
    if codes.is_empty() || shards == 1 {
        return forward(router, 0, request);
    }

    // Split the batch by owning shard, preserving arrival order within
    // each shard's sub-batch.
    let owners: Vec<usize> = codes.iter().map(|&code| shard_of(code, shards)).collect();
    // Single-owner fast path: when the whole batch hashes to one shard
    // (always true for one-point requests), the original body forwards
    // verbatim and the shard's response relays untouched — no sub-batch
    // serialization, no fan-out threads, no response re-parse/merge.
    // Identical answers either way; this only removes router work.
    if owners.iter().all(|&owner| owner == owners[0]) {
        return forward(router, owners[0], request);
    }
    let mut per_shard: Vec<Vec<u64>> = vec![Vec::new(); shards];
    for (&owner, &code) in owners.iter().zip(&codes) {
        per_shard[owner].push(code);
    }
    let mut bodies: Vec<Option<String>> = Vec::with_capacity(shards);
    for codes in &per_shard {
        if codes.is_empty() {
            bodies.push(None);
            continue;
        }
        let mut sub = parsed.clone();
        set_field(&mut sub, "points", Value::Seq(codes.iter().map(|&c| Value::U64(c)).collect()));
        match serde_json::to_string(&sub) {
            Ok(body) => bodies.push(Some(body)),
            Err(e) => return (500, error_body(&format!("sub-batch serialization failed: {e}"))),
        }
    }

    // Concurrent fan-out: every active shard's sub-batch is in flight at
    // once, so the router adds one upstream round-trip, not N. Every leg
    // carries the same trace context, so one router request span joins
    // each shard sub-batch it touched.
    let router_ref: &RouterShared = router;
    let trace = request.trace.as_deref();
    let mut replies: Vec<Option<io::Result<ClientResponse>>> = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = bodies
            .iter()
            .enumerate()
            .map(|(shard, body)| {
                body.as_deref().map(|body| {
                    scope.spawn(move || {
                        router_ref.upstream(shard, "POST", "/v1/evaluate", Some(body), trace)
                    })
                })
            })
            .collect();
        replies = handles
            .into_iter()
            .map(|handle| handle.map(|h| h.join().expect("shard fan-out thread panicked")))
            .collect();
    });

    // Any failure propagates (lowest shard index first, deterministic).
    let mut results_per_shard: Vec<std::vec::IntoIter<Value>> = Vec::with_capacity(shards);
    for (shard, reply) in replies.into_iter().enumerate() {
        match reply {
            None => results_per_shard.push(Vec::new().into_iter()),
            Some(Err(e)) => return shard_down(shard, &e),
            Some(Ok(response)) if response.status != 200 => {
                return (response.status, response.body)
            }
            Some(Ok(response)) => {
                let rows = serde_json::from_str::<Value>(&response.body)
                    .ok()
                    .and_then(|v| v.get("results").and_then(Value::as_array).cloned());
                match rows {
                    Some(rows) if rows.len() == per_shard[shard].len() => {
                        results_per_shard.push(rows.into_iter());
                    }
                    _ => {
                        return (
                            502,
                            error_body(&format!(
                                "shard {shard} returned a malformed evaluate response"
                            )),
                        )
                    }
                }
            }
        }
    }

    // Order-stable merge: walk the original points, taking each row from
    // its owner's reply stream.
    let mut merged = Vec::with_capacity(codes.len());
    for &owner in &owners {
        match results_per_shard[owner].next() {
            Some(row) => merged.push(row),
            None => return (502, error_body(&format!("shard {owner} returned too few results"))),
        }
    }
    let merged = Value::Map(vec![("results".to_string(), Value::Seq(merged))]);
    match serde_json::to_string(&merged) {
        Ok(body) => (200, body),
        Err(e) => (500, error_body(&format!("merge serialization failed: {e}"))),
    }
}

fn handle_explain(router: &Arc<RouterShared>, request: &Request) -> (u16, String) {
    router.metrics.explain.inc();
    let shards = router.shards();
    let point = request
        .body_utf8()
        .ok()
        .and_then(|body| serde_json::from_str::<Value>(body).ok())
        .and_then(|v| v.get("point").and_then(Value::as_u64));
    let shard = point.map_or(0, |p| shard_of(p, shards));
    forward(router, shard, request)
}

fn handle_workloads(router: &Arc<RouterShared>, request: &Request) -> (u16, String) {
    router.metrics.workloads.inc();
    // Every shard must know every workload; fan the upload to all of
    // them and report shard 0's response. A failure part-way leaves the
    // registries inconsistent, so it is surfaced loudly as a 502.
    let mut first: Option<(u16, String)> = None;
    for shard in 0..router.shards() {
        let (status, body) = forward(router, shard, request);
        if status != 200 {
            if shard == 0 {
                // Shard 0 rejected it outright (bad request, duplicate):
                // nothing was registered anywhere; relay verbatim.
                return (status, body);
            }
            return (
                502,
                error_body(&format!(
                    "workload registration diverged: shard {shard} answered {status} after \
                     earlier shards accepted ({body})"
                )),
            );
        }
        if first.is_none() {
            first = Some((status, body));
        }
    }
    first.unwrap_or((502, error_body("no shards configured")))
}

fn handle_explore(router: &Arc<RouterShared>, request: &Request) -> (u16, String) {
    router.metrics.explore.inc();
    if router.is_shutting_down() {
        return (503, error_body("server is shutting down"));
    }
    let shards = router.shards() as u64;
    let shard = (router.explore_rr.fetch_add(1, Ordering::Relaxed) % shards) as usize;
    let (status, body) = forward(router, shard, request);
    if status != 200 {
        return (status, body);
    }
    // Rewrite the local job id into a global one that encodes the shard.
    match serde_json::from_str::<Value>(&body) {
        Ok(mut v) => {
            let Some(local) = v.get("job").and_then(Value::as_u64) else {
                return (502, error_body(&format!("shard {shard} returned a jobless response")));
            };
            set_field(&mut v, "job", Value::U64(local * shards + shard as u64));
            match serde_json::to_string(&v) {
                Ok(body) => (200, body),
                Err(e) => (500, error_body(&format!("job id rewrite failed: {e}"))),
            }
        }
        Err(_) => (502, error_body(&format!("shard {shard} returned malformed job JSON"))),
    }
}

fn handle_job(router: &Arc<RouterShared>, path: &str) -> (u16, String) {
    router.metrics.jobs.inc();
    let Some(global) = path.strip_prefix("/v1/jobs/").and_then(|raw| raw.parse::<u64>().ok())
    else {
        return (400, error_body("job ids are integers: GET /v1/jobs/<id>"));
    };
    let shards = router.shards() as u64;
    let (shard, local) = ((global % shards) as usize, global / shards);
    if local == 0 {
        // Local ids start at 1, so no global id maps to local 0.
        return (404, error_body(&format!("no job {global}")));
    }
    match router.upstream(shard, "GET", &format!("/v1/jobs/{local}"), None, None) {
        Err(e) => shard_down(shard, &e),
        Ok(response) => {
            // Patch the shard-local id back into the caller's global id.
            match serde_json::from_str::<Value>(&response.body) {
                Ok(mut v) if v.get("job").is_some() => {
                    set_field(&mut v, "job", Value::U64(global));
                    match serde_json::to_string(&v) {
                        Ok(body) => (response.status, body),
                        Err(_) => (response.status, response.body),
                    }
                }
                _ => (response.status, response.body),
            }
        }
    }
}

fn handle_shutdown(router: &Arc<RouterShared>) -> (u16, String) {
    for shard in 0..router.shards() {
        let _ = router.upstream(shard, "POST", "/v1/shutdown", None, None);
    }
    router.initiate_shutdown();
    (200, "{\"status\":\"shutting down\"}".into())
}

fn handle_metrics(router: &Arc<RouterShared>, query: &str) -> (u16, String, &'static str) {
    router.metrics.metrics.inc();
    let format = query.split('&').find_map(|pair| pair.strip_prefix("format=")).unwrap_or("json");
    match format {
        "prometheus" => {
            let mut shard_snaps = Vec::with_capacity(router.shards());
            for shard in 0..router.shards() {
                let response =
                    match router.upstream(shard, "GET", "/metrics?format=prometheus", None, None) {
                        Ok(r) if r.status == 200 => r,
                        Ok(r) => return (r.status, r.body, CT_JSON),
                        Err(e) => {
                            let (status, body) = shard_down(shard, &e);
                            return (status, body, CT_JSON);
                        }
                    };
                match dse_obs::parse_prometheus_text(&response.body) {
                    Ok(snap) => shard_snaps.push(snap),
                    Err(e) => {
                        return (
                            502,
                            error_body(&format!("shard {shard} exposition did not parse: {e}")),
                            CT_JSON,
                        )
                    }
                }
            }
            let summed = dse_obs::sum_snapshots(shard_snaps);
            // Router registry first: its serve_* series (its own request
            // counts, shard counters, reactor gauges) win collisions;
            // shard-only series (ledger, sim kernel) pass through summed.
            let text = router.metrics.registry.snapshot().merged(summed).to_prometheus_text();
            (200, text, CT_PROMETHEUS)
        }
        "json" => {
            let mut acc: Option<Value> = None;
            for shard in 0..router.shards() {
                let response =
                    match router.upstream(shard, "GET", "/metrics?format=json", None, None) {
                        Ok(r) if r.status == 200 => r,
                        Ok(r) => return (r.status, r.body, CT_JSON),
                        Err(e) => {
                            let (status, body) = shard_down(shard, &e);
                            return (status, body, CT_JSON);
                        }
                    };
                let Ok(v) = serde_json::from_str::<Value>(&response.body) else {
                    return (
                        502,
                        error_body(&format!("shard {shard} metrics did not parse")),
                        CT_JSON,
                    );
                };
                match &mut acc {
                    None => acc = Some(v),
                    Some(acc) => sum_json(acc, &v),
                }
            }
            let mut v = acc.unwrap_or(Value::Null);
            // The shard-summed `requests` section counts backend work
            // (sub-batches, fan-outs); replace it with the router's own
            // front-door view and record the topology.
            if v.is_object() {
                set_field(&mut v, "requests", serde::Serialize::to_content(&router.counters()));
                set_field(&mut v, "shards", Value::U64(router.shards() as u64));
            }
            match serde_json::to_string(&v) {
                Ok(body) => (200, body, CT_JSON),
                Err(e) => (500, error_body(&format!("metrics serialization failed: {e}")), CT_JSON),
            }
        }
        other => (
            400,
            error_body(&format!("unknown format {other:?} (expected \"json\" or \"prometheus\")")),
            CT_JSON,
        ),
    }
}

/// Field-wise sum of two JSON documents: numbers add (u64 arithmetic
/// when both sides are u64, f64 otherwise), arrays add elementwise,
/// objects union-sum, and anything else (strings, bools, nulls, type
/// mismatches) keeps the first value seen.
fn sum_json(acc: &mut Value, add: &Value) {
    match (&mut *acc, add) {
        (Value::Map(a), Value::Map(b)) => {
            for (key, value) in b {
                match a.iter_mut().find(|(k, _)| k == key) {
                    Some((_, slot)) => sum_json(slot, value),
                    None => a.push((key.clone(), value.clone())),
                }
            }
        }
        (Value::Seq(a), Value::Seq(b)) => {
            for (i, value) in b.iter().enumerate() {
                match a.get_mut(i) {
                    Some(slot) => sum_json(slot, value),
                    None => a.push(value.clone()),
                }
            }
        }
        (Value::U64(a), Value::U64(b)) => *a = a.saturating_add(*b),
        (number, add) if number.is_number() && add.is_number() => {
            let summed = number.as_f64().unwrap_or(0.0) + add.as_f64().unwrap_or(0.0);
            *number = Value::F64(summed);
        }
        _ => {}
    }
}

/// Sets (or appends) one field of a JSON map; no-op on non-maps.
fn set_field(v: &mut Value, key: &str, value: Value) {
    if let Value::Map(entries) = v {
        match entries.iter_mut().find(|(k, _)| k == key) {
            Some((_, slot)) => *slot = value,
            None => entries.push((key.to_string(), value)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_of_is_stable_and_covers_all_shards() {
        // Determinism: same code, same shard, always.
        for code in [0u64, 1, 7, 1 << 40, u64::MAX] {
            assert_eq!(shard_of(code, 4), shard_of(code, 4));
        }
        // Coverage: a small code range must not collapse onto one shard.
        for shards in [2usize, 3, 4] {
            let mut hit = vec![false; shards];
            for code in 0..64u64 {
                hit[shard_of(code, shards)] = true;
            }
            assert!(hit.iter().all(|&h| h), "{shards} shards not all hit");
        }
    }

    #[test]
    fn sum_json_adds_numbers_and_keeps_first_on_mismatch() {
        let mut a: Value = serde_json::from_str(
            r#"{"requests": {"evaluate": 3, "errors": 0}, "job_states": [1, 0, 0],
                "label": "shard", "ratio": 0.5}"#,
        )
        .expect("fixture parses");
        let b: Value = serde_json::from_str(
            r#"{"requests": {"evaluate": 4, "errors": 2, "extra": 9}, "job_states": [0, 2, 0],
                "label": "other", "ratio": 0.25}"#,
        )
        .expect("fixture parses");
        sum_json(&mut a, &b);
        let want: Value = serde_json::from_str(
            r#"{"requests": {"evaluate": 7, "errors": 2, "extra": 9}, "job_states": [1, 2, 0],
                "label": "shard", "ratio": 0.75}"#,
        )
        .expect("fixture parses");
        assert_eq!(a, want);
    }
}
