//! The JSON wire protocol: request parsing (hand-rolled over the serde
//! `Content` tree so optional fields and precise error messages work)
//! and the serializable response payloads.

use dse_exec::{CacheStats, Fidelity, LedgerSummary};
use dse_fnn::DecisionExplanation;
use serde::{Deserialize, Serialize};
use serde_json::Value;

use crate::batcher::{CoalescerStats, TierRequest};

/// A structured request rejection: message plus HTTP status.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct ProtocolError(pub String);

impl ProtocolError {
    fn new(msg: impl Into<String>) -> Self {
        Self(msg.into())
    }
}

/// Parses a request body into the JSON tree.
pub(crate) fn parse_body(body: &str) -> Result<Value, ProtocolError> {
    if body.trim().is_empty() {
        return Err(ProtocolError::new("request body must be a JSON object"));
    }
    serde_json::from_str(body).map_err(|e| ProtocolError::new(e.to_string()))
}

fn get_u64(value: &Value, key: &str) -> Result<Option<u64>, ProtocolError> {
    match value.get(key) {
        None => Ok(None),
        Some(v) => v
            .as_u64()
            .map(Some)
            .ok_or_else(|| ProtocolError::new(format!("`{key}` must be a non-negative integer"))),
    }
}

fn get_f64(value: &Value, key: &str) -> Result<Option<f64>, ProtocolError> {
    match value.get(key) {
        None => Ok(None),
        Some(v) => v
            .as_f64()
            .map(Some)
            .ok_or_else(|| ProtocolError::new(format!("`{key}` must be a number"))),
    }
}

fn get_str<'a>(value: &'a Value, key: &str) -> Result<Option<&'a str>, ProtocolError> {
    match value.get(key) {
        None => Ok(None),
        Some(v) => v
            .as_str()
            .map(Some)
            .ok_or_else(|| ProtocolError::new(format!("`{key}` must be a string"))),
    }
}

fn get_bool(value: &Value, key: &str) -> Result<Option<bool>, ProtocolError> {
    match value.get(key) {
        None => Ok(None),
        Some(v) => v
            .as_bool()
            .map(Some)
            .ok_or_else(|| ProtocolError::new(format!("`{key}` must be a boolean"))),
    }
}

/// `POST /v1/evaluate` body: encoded design points plus a fidelity tier
/// and, optionally, a registered ingested workload to evaluate instead
/// of the server's synthetic template.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct EvaluateRequest {
    /// Encoded design indices (`DesignSpace::encode` order).
    pub points: Vec<u64>,
    /// Which tier to spend — a fixed one, or gate-routed `"auto"`.
    pub fidelity: TierRequest,
    /// Registered workload id (from `POST /v1/workloads`), or `None`
    /// for the synthetic template workload.
    pub workload: Option<String>,
}

impl EvaluateRequest {
    /// Parses `{"points": [..], "fidelity": "lf"|"learned"|"hf"|"auto",
    /// "workload": "id"}` (fidelity case-insensitive, default `"hf"`)
    /// and range-checks every index against `space_size`. Ingested
    /// workloads have no learned tier or router, so `workload` combined
    /// with `"learned"`/`"auto"` is rejected here, before anything is
    /// queued.
    pub fn parse(body: &str, space_size: u64, max_points: usize) -> Result<Self, ProtocolError> {
        let value = parse_body(body)?;
        let fidelity = match get_str(&value, "fidelity")? {
            None => TierRequest::Fixed(Fidelity::High),
            Some(name) => {
                let key = name.to_ascii_lowercase();
                if key == "auto" {
                    TierRequest::Auto
                } else if let Some(tier) = Fidelity::from_key(&key) {
                    TierRequest::Fixed(tier)
                } else {
                    return Err(ProtocolError::new(format!(
                        "unknown fidelity {name:?} (expected \"lf\", \"learned\", \"hf\" or \
                         \"auto\")"
                    )));
                }
            }
        };
        let workload = get_str(&value, "workload")?.map(str::to_string);
        if workload.is_some()
            && !matches!(fidelity, TierRequest::Fixed(Fidelity::Low | Fidelity::High))
        {
            return Err(ProtocolError::new(
                "ingested workloads answer fixed tiers only: use fidelity \"lf\" or \"hf\" \
                 (the learned tier and \"auto\" routing are trained on the synthetic template \
                 workload)",
            ));
        }
        let raw = value
            .get("points")
            .ok_or_else(|| ProtocolError::new("missing `points` array"))?
            .as_array()
            .ok_or_else(|| ProtocolError::new("`points` must be an array"))?;
        if raw.is_empty() {
            return Err(ProtocolError::new("`points` must not be empty"));
        }
        if raw.len() > max_points {
            return Err(ProtocolError::new(format!(
                "{} points exceed the per-request limit of {max_points}",
                raw.len()
            )));
        }
        let mut points = Vec::with_capacity(raw.len());
        for (i, item) in raw.iter().enumerate() {
            let code = item.as_u64().ok_or_else(|| {
                ProtocolError::new(format!("points[{i}] must be a non-negative integer"))
            })?;
            if code >= space_size {
                return Err(ProtocolError::new(format!(
                    "points[{i}] = {code} is outside the design space (size {space_size})"
                )));
            }
            points.push(code);
        }
        Ok(Self { points, fidelity, workload })
    }
}

/// `POST /v1/workloads` body: a named ELF upload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct WorkloadUploadRequest {
    /// The id the workload registers under (and is addressed by in
    /// `/v1/evaluate` and `/v1/explore`).
    pub name: String,
    /// The statically linked RV64 ELF binary, standard base64.
    pub elf_base64: String,
}

impl WorkloadUploadRequest {
    /// Parses `{"name": "...", "elf_base64": "..."}`. Names are 1–64
    /// chars of `[A-Za-z0-9_-]` so they stay unambiguous in URLs, error
    /// messages and metrics labels.
    pub fn parse(body: &str) -> Result<Self, ProtocolError> {
        let value = parse_body(body)?;
        let name = get_str(&value, "name")?
            .ok_or_else(|| ProtocolError::new("missing `name` (the id to register under)"))?
            .to_string();
        if name.is_empty() || name.len() > 64 {
            return Err(ProtocolError::new("`name` must be 1-64 characters"));
        }
        if !name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-') {
            return Err(ProtocolError::new(
                "`name` may only contain ASCII letters, digits, `_` and `-`",
            ));
        }
        let elf_base64 = get_str(&value, "elf_base64")?
            .ok_or_else(|| {
                ProtocolError::new("missing `elf_base64` (the ELF binary, base64-encoded)")
            })?
            .to_string();
        Ok(Self { name, elf_base64 })
    }
}

/// `POST /v1/workloads` response payload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadUploadResponse {
    /// The registered workload id, echoing the request.
    pub workload: String,
    /// Dynamic instructions the binary retired during ingestion (also
    /// the length of the trace the HF tier replays).
    pub instructions: u64,
    /// The code the binary passed to `exit`.
    pub exit_code: u64,
    /// Workloads now registered, in registration order.
    pub registered: Vec<String>,
}

/// One evaluated point in an `/v1/evaluate` response.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EvaluatedPoint {
    /// The encoded design index this row answers.
    pub point: u64,
    /// Cycles per instruction.
    pub cpi: f64,
    /// The tier that answered: `"LF"`, `"learned"` or `"HF"`. Under
    /// `"auto"` routing this varies per row.
    pub fidelity: String,
    /// Whether the answer came from the run ledger or the evaluator
    /// memo rather than a fresh model run.
    pub cached: bool,
    /// Die area of the design under the server's area model.
    pub area_mm2: f64,
    /// Static (leakage) power of the design.
    pub leakage_mw: f64,
    /// Whether the design satisfies the server's constraints.
    pub feasible: bool,
}

/// `POST /v1/evaluate` response payload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EvaluateResponse {
    /// One row per requested point, in request order.
    pub results: Vec<EvaluatedPoint>,
}

/// `POST /v1/explain` body.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct ExplainRequest {
    /// Encoded design index to explain at.
    pub point: u64,
    /// How many top rules to report.
    pub k: usize,
    /// Explain a specific output (by parameter name) instead of the
    /// winning action.
    pub output: Option<String>,
    /// CPI observation; computed by the LF model when absent.
    pub cpi: Option<f64>,
}

impl ExplainRequest {
    /// Parses `{"point": n, "k": 3, "output": "rob", "cpi": 1.2}`.
    pub fn parse(body: &str, space_size: u64) -> Result<Self, ProtocolError> {
        let value = parse_body(body)?;
        let point = get_u64(&value, "point")?
            .ok_or_else(|| ProtocolError::new("missing `point` (encoded design index)"))?;
        if point >= space_size {
            return Err(ProtocolError::new(format!(
                "`point` = {point} is outside the design space (size {space_size})"
            )));
        }
        let k = get_u64(&value, "k")?.unwrap_or(3) as usize;
        if k == 0 {
            return Err(ProtocolError::new("`k` must be at least 1"));
        }
        let output = get_str(&value, "output")?.map(str::to_string);
        let cpi = get_f64(&value, "cpi")?;
        if let Some(cpi) = cpi {
            if !cpi.is_finite() || cpi <= 0.0 {
                return Err(ProtocolError::new("`cpi` must be a positive finite number"));
            }
        }
        Ok(Self { point, k, output, cpi })
    }
}

/// `POST /v1/explain` response payload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExplainResponse {
    /// The explained design, encoded.
    pub point: u64,
    /// The design spelled out parameter by parameter.
    pub design: String,
    /// The CPI observation the explanation was computed at.
    pub cpi: f64,
    /// The per-rule decomposition of the chosen output's score.
    pub explanation: DecisionExplanation,
}

/// `POST /v1/explore` body: a quick-exploration job specification.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct ExploreRequest {
    /// Benchmark name, or `None` for the general-purpose average.
    pub benchmark: Option<String>,
    /// Registered ingested workload to explore for (mutually exclusive
    /// with `benchmark`/`general`).
    pub workload: Option<String>,
    /// Area limit in mm².
    pub area_mm2: f64,
    /// Master seed.
    pub seed: u64,
    /// LF training episodes.
    pub lf_episodes: usize,
    /// HF simulation budget.
    pub hf_budget: usize,
    /// Trace length per benchmark.
    pub trace_len: usize,
}

impl ExploreRequest {
    /// Parses the job spec with service-quick defaults.
    pub fn parse(body: &str) -> Result<Self, ProtocolError> {
        let value = parse_body(body)?;
        let general = get_bool(&value, "general")?.unwrap_or(false);
        let benchmark = get_str(&value, "benchmark")?.map(str::to_string);
        if general && benchmark.is_some() {
            return Err(ProtocolError::new("`general` and `benchmark` are mutually exclusive"));
        }
        let workload = get_str(&value, "workload")?.map(str::to_string);
        if workload.is_some() && (general || benchmark.is_some()) {
            return Err(ProtocolError::new(
                "`workload` is mutually exclusive with `benchmark` and `general`",
            ));
        }
        let area_mm2 = get_f64(&value, "area")?.unwrap_or(8.0);
        if !area_mm2.is_finite() || area_mm2 <= 0.0 {
            return Err(ProtocolError::new("`area` must be a positive number"));
        }
        let trace_len = get_u64(&value, "trace_len")?.unwrap_or(2_000) as usize;
        if trace_len == 0 {
            return Err(ProtocolError::new("`trace_len` must be at least 1"));
        }
        Ok(Self {
            benchmark: if general || workload.is_some() {
                None
            } else {
                Some(benchmark.unwrap_or_else(|| "mm".into()))
            },
            workload,
            area_mm2,
            seed: get_u64(&value, "seed")?.unwrap_or(0),
            lf_episodes: get_u64(&value, "lf_episodes")?.unwrap_or(50) as usize,
            hf_budget: get_u64(&value, "hf_budget")?.unwrap_or(4) as usize,
            trace_len,
        })
    }
}

/// The result of a finished exploration job.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobResult {
    /// Best simulated design, encoded.
    pub best_point: u64,
    /// The same design spelled out.
    pub best_design: String,
    /// Its simulated CPI.
    pub best_cpi: f64,
    /// HF simulations the job charged.
    pub hf_evaluations: u64,
    /// The extracted rule base, rendered as text.
    pub rules: Vec<String>,
    /// The job's own cost ledger (jobs account separately from the
    /// server's evaluate ledger).
    pub ledger: LedgerSummary,
}

/// `GET /v1/jobs/<id>` response payload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobStatus {
    /// The job id.
    pub job: u64,
    /// `"running"`, `"done"` or `"failed"`.
    pub state: String,
    /// The result, when done.
    pub result: Option<JobResult>,
    /// The failure message, when failed.
    pub error: Option<String>,
}

/// Per-endpoint request counters in `/metrics`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RequestCounters {
    /// `GET /healthz` hits.
    pub healthz: u64,
    /// `GET /metrics` hits.
    pub metrics: u64,
    /// `POST /v1/evaluate` hits.
    pub evaluate: u64,
    /// `POST /v1/explain` hits.
    pub explain: u64,
    /// `POST /v1/explore` hits.
    pub explore: u64,
    /// `POST /v1/workloads` hits.
    pub workloads: u64,
    /// `GET /v1/jobs/<id>` hits.
    pub jobs: u64,
    /// Requests answered 503 by backpressure (full queue).
    pub rejected: u64,
    /// Requests answered 4xx/5xx for any other reason.
    pub errors: u64,
}

/// `GET /metrics` response payload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricsResponse {
    /// Per-endpoint request counters.
    pub requests: RequestCounters,
    /// Micro-batcher counters: fewer `batches` than `requests` is the
    /// coalescer amortizing work across concurrent clients.
    pub coalescer: CoalescerStats,
    /// The server-lifetime cost ledger behind `/v1/evaluate`.
    pub ledger: LedgerSummary,
    /// The HF evaluator's memo counters.
    pub hf_cache: CacheStats,
    /// Exploration jobs by state: `[running, done, failed]`.
    pub job_states: [u64; 3],
}

/// Renders `{"error": reason}`.
pub(crate) fn error_body(reason: &str) -> String {
    // Built as a `Value` rather than a derived struct: the vendored
    // derive does not support lifetime parameters.
    let body = Value::Map(vec![("error".to_string(), Value::Str(reason.to_string()))]);
    serde_json::to_string(&body).unwrap_or_else(|_| "{}".into())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evaluate_request_parses_and_validates() {
        let ok = EvaluateRequest::parse(r#"{"points": [0, 5], "fidelity": "lf"}"#, 10, 8).unwrap();
        assert_eq!(ok.points, vec![0, 5]);
        assert_eq!(ok.fidelity, TierRequest::Fixed(Fidelity::Low));
        // Defaults to HF.
        let hf = EvaluateRequest::parse(r#"{"points": [1]}"#, 10, 8).unwrap();
        assert_eq!(hf.fidelity, TierRequest::Fixed(Fidelity::High));
        // The full tier stack and the router are addressable by name,
        // case-insensitively.
        let mid = EvaluateRequest::parse(r#"{"points": [1], "fidelity": "learned"}"#, 10, 8);
        assert_eq!(mid.unwrap().fidelity, TierRequest::Fixed(Fidelity::Learned));
        let auto = EvaluateRequest::parse(r#"{"points": [1], "fidelity": "AUTO"}"#, 10, 8);
        assert_eq!(auto.unwrap().fidelity, TierRequest::Auto);
        // Out of range, empty, too many, bad fidelity, junk.
        assert!(EvaluateRequest::parse(r#"{"points": [10]}"#, 10, 8).is_err());
        assert!(EvaluateRequest::parse(r#"{"points": []}"#, 10, 8).is_err());
        assert!(EvaluateRequest::parse(r#"{"points": [1, 2, 3]}"#, 10, 2).is_err());
        let bad = EvaluateRequest::parse(r#"{"points": [1], "fidelity": "mid"}"#, 10, 8);
        let msg = bad.unwrap_err().0;
        assert!(msg.contains("\"learned\"") && msg.contains("\"auto\""), "{msg}");
        assert!(EvaluateRequest::parse("nonsense", 10, 8).is_err());
        assert!(EvaluateRequest::parse("", 10, 8).is_err());
    }

    #[test]
    fn explain_request_defaults_and_bounds() {
        let e = ExplainRequest::parse(r#"{"point": 3}"#, 10).unwrap();
        assert_eq!((e.point, e.k, e.output, e.cpi), (3, 3, None, None));
        let full =
            ExplainRequest::parse(r#"{"point": 3, "k": 5, "output": "rob", "cpi": 1.5}"#, 10)
                .unwrap();
        assert_eq!(full.k, 5);
        assert_eq!(full.output.as_deref(), Some("rob"));
        assert_eq!(full.cpi, Some(1.5));
        assert!(ExplainRequest::parse(r#"{"point": 99}"#, 10).is_err());
        assert!(ExplainRequest::parse(r#"{"point": 1, "k": 0}"#, 10).is_err());
        assert!(ExplainRequest::parse(r#"{"point": 1, "cpi": -2.0}"#, 10).is_err());
    }

    #[test]
    fn explore_request_defaults_are_service_quick() {
        let e = ExploreRequest::parse("{}").unwrap();
        assert_eq!(e.benchmark.as_deref(), Some("mm"));
        assert_eq!((e.lf_episodes, e.hf_budget, e.trace_len), (50, 4, 2_000));
        let g = ExploreRequest::parse(r#"{"general": true, "seed": 7}"#).unwrap();
        assert_eq!(g.benchmark, None);
        assert_eq!(g.seed, 7);
        assert!(ExploreRequest::parse(r#"{"general": true, "benchmark": "mm"}"#).is_err());
        assert!(ExploreRequest::parse(r#"{"area": -1.0}"#).is_err());
        // A workload-targeted job drops the benchmark default and
        // excludes the synthetic selectors.
        let w = ExploreRequest::parse(r#"{"workload": "firmware"}"#).unwrap();
        assert_eq!(w.workload.as_deref(), Some("firmware"));
        assert_eq!(w.benchmark, None);
        assert!(ExploreRequest::parse(r#"{"workload": "w", "benchmark": "mm"}"#).is_err());
        assert!(ExploreRequest::parse(r#"{"workload": "w", "general": true}"#).is_err());
    }

    #[test]
    fn evaluate_request_workload_constraints() {
        // Absent workload: wire format identical to before.
        let plain = EvaluateRequest::parse(r#"{"points": [1]}"#, 10, 8).unwrap();
        assert_eq!(plain.workload, None);
        // Named workload with a fixed lf/hf tier is accepted.
        let w =
            EvaluateRequest::parse(r#"{"points": [1], "workload": "fw", "fidelity": "lf"}"#, 10, 8)
                .unwrap();
        assert_eq!(w.workload.as_deref(), Some("fw"));
        // Learned/auto on an ingested workload are rejected at parse,
        // naming the tiers that do work.
        for tier in ["learned", "auto"] {
            let body = format!(r#"{{"points": [1], "workload": "fw", "fidelity": "{tier}"}}"#);
            let msg = EvaluateRequest::parse(&body, 10, 8).unwrap_err().0;
            assert!(msg.contains("\"lf\"") && msg.contains("\"hf\""), "{msg}");
        }
    }

    #[test]
    fn workload_upload_request_validates_names() {
        let ok = WorkloadUploadRequest::parse(r#"{"name": "fw-1", "elf_base64": "AAAA"}"#).unwrap();
        assert_eq!((ok.name.as_str(), ok.elf_base64.as_str()), ("fw-1", "AAAA"));
        assert!(WorkloadUploadRequest::parse(r#"{"elf_base64": "AAAA"}"#).is_err());
        assert!(WorkloadUploadRequest::parse(r#"{"name": "fw"}"#).is_err());
        assert!(WorkloadUploadRequest::parse(r#"{"name": "", "elf_base64": "A"}"#).is_err());
        assert!(WorkloadUploadRequest::parse(r#"{"name": "a b", "elf_base64": "A"}"#).is_err());
    }

    #[test]
    fn error_body_is_json() {
        assert_eq!(error_body("queue full"), r#"{"error":"queue full"}"#);
    }
}
