//! # archdse-serve — the DSE stack as a long-running service
//!
//! A dependency-free HTTP/1.1 JSON service over [`std::net`] exposing
//! the evaluation, explanation and exploration layers of this
//! workspace to concurrent clients:
//!
//! | Endpoint | What it does |
//! |---|---|
//! | `GET /healthz` | liveness + the served benchmarks and space size |
//! | `GET /metrics` | request counters, coalescer stats, [`CostLedger`] summary, HF memo counters |
//! | `POST /v1/evaluate` | CPI of a batch of encoded design points at `"lf"` or `"hf"` fidelity |
//! | `POST /v1/explain` | per-rule contributions behind the FNN's decision at a design point |
//! | `POST /v1/explore` | start a background exploration job |
//! | `POST /v1/workloads` | upload a statically linked RV64 ELF; it is ingested and registered as an evaluable workload |
//! | `GET /v1/jobs/<id>` | poll a job |
//! | `POST /v1/shutdown` | graceful shutdown (drains in-flight work) |
//!
//! ## Ingested workloads
//!
//! `POST /v1/workloads` accepts `{"name": ..., "elf_base64": ...}`:
//! the binary is run by the functional executor in `dse-ingest`, its
//! event stream is characterized into a workload profile, and the
//! server registers a private evaluation stack for it — an analytical
//! LF model built from the *ingested* profile, an HF simulator
//! replaying the *ingested* trace, and a dedicated ledger. Subsequent
//! `/v1/evaluate` and `/v1/explore` requests address it by
//! `"workload": "<name>"`. Ingested workloads answer the `"lf"` and
//! `"hf"` tiers only: the learned tier and the `"auto"` router are
//! trained on the server's synthetic template workload and would
//! silently misroute a different binary.
//!
//! ## The cross-request micro-batcher
//!
//! The server's core mechanism is the coalescer thread:
//! concurrent `/v1/evaluate` requests are gathered — up to
//! [`BatcherConfig::max_batch_points`] points or for at most
//! [`BatcherConfig::max_delay`] — and submitted as **one**
//! `CostLedger::evaluate_batch` per fidelity through the shared
//! [`CpiCache`](dse_exec::CpiCache)-backed evaluator. Because the
//! batch-first evaluator contract guarantees bit-identical results and
//! counters versus a sequential walk, coalescing changes throughput but
//! never answers: N concurrent clients observe exactly the CPIs and
//! ledger totals one sequential client would.
//!
//! ## Robustness policy
//!
//! * **Backpressure** — a full evaluation or request queue answers
//!   `503` immediately instead of queueing unboundedly.
//! * **Timeouts** — every connection gets read and write deadlines from
//!   the reactor's timer wheel; slow-loris senders get `408` or a
//!   silent close instead of pinning resources.
//! * **Size limits** — request line, header count and body size are all
//!   capped; oversize bodies answer `413`.
//! * **Graceful shutdown** — `POST /v1/shutdown` (or
//!   [`ServerHandle::shutdown`]) stops accepting, then drains every
//!   accepted connection, queued evaluation and background job before
//!   the process exits.
//!
//! ## Example
//!
//! ```no_run
//! use archdse::Explorer;
//! use archdse_serve::{client, spawn, ServeConfig};
//! use dse_workloads::Benchmark;
//!
//! let server = spawn(ServeConfig::new(
//!     Explorer::for_benchmark(Benchmark::Mm).trace_len(2_000),
//! ))?;
//! let addr = server.addr().to_string();
//! let health = client::get(&addr, "/healthz")?;
//! assert_eq!(health.status, 200);
//! server.shutdown();
//! server.join();
//! # Ok::<(), std::io::Error>(())
//! ```
//!
//! [`CostLedger`]: dse_exec::CostLedger

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod batcher;
mod conn;
mod flight;
mod http;
mod loadgen;
mod protocol;
mod reactor;
mod server;
mod shard;

pub use batcher::{BatcherConfig, CoalescerStats};
pub use http::client;
pub use loadgen::{run as run_loadgen, LatencyStats, LoadgenConfig, LoadgenReport, StatusLatency};
pub use protocol::{
    EvaluateResponse, EvaluatedPoint, ExplainResponse, JobResult, JobStatus, MetricsResponse,
    RequestCounters, WorkloadUploadResponse,
};
pub use server::{spawn, ServeConfig, ServerHandle};
pub use shard::{spawn_router, RouterConfig, RouterHandle};
