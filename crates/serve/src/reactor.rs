//! The readiness event loop behind both server modes.
//!
//! One reactor thread owns the listener, every connection state machine
//! ([`Conn`]), a [`TimerWheel`] of read/write deadlines, and a [`Poller`]
//! (epoll on Linux, `poll` fallback — selectable with
//! `ARCHDSE_REACTOR_BACKEND=poll` for testing). Connections therefore cost
//! one fd each, not one thread each; at rest the reactor blocks in the
//! kernel with zero CPU.
//!
//! Work leaves the reactor two ways and comes back through one:
//!
//! - `/v1/evaluate` (local mode) is parsed inline — it is cheap string work —
//!   and enqueued on the coalescer, which stays the batching heart of the
//!   service; the connection parks with interest `None`.
//! - Every other endpoint is handed to a small app-handler pool (CPU-bound
//!   JSON/ingestion/aggregation work must not stall the event loop).
//!
//! Both paths post a [`Completion`] to the shared [`CompletionQueue`] and
//! wake the poller; the reactor then renders/loads the response and drives
//! the nonblocking write. A `generation` counter per connection makes stale
//! timers and stale completions (from a connection that died or moved on)
//! recognisable.

use std::collections::{HashMap, VecDeque};
use std::net::TcpListener;
use std::os::unix::io::AsRawFd;
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use dse_exec::{Fidelity, LedgerEntry};
use dse_obs::trace;
use dse_reactor::{Backend, Event, Interest, Poller, TimerWheel, WakeRx, Waker, WAKE_TOKEN};

use crate::batcher::EvalTiming;
use crate::conn::{trace_id_hash, Conn, ConnState, ReadEvent, Timeline, PHASES};
use crate::flight::CompletedRequest;
use crate::http::{build_response, build_response_with, Request, CT_JSON};
use crate::protocol::error_body;
use crate::server::{endpoint_label, Shared};
use crate::shard::RouterShared;

/// Listener registration token (connection tokens start above it).
const LISTEN_TOKEN: u64 = 0;
/// Timer wheel granularity.
const TICK: Duration = Duration::from_millis(5);
/// Timer wheel size (deadlines beyond the horizon re-queue transparently).
const WHEEL_SLOTS: usize = 512;

/// Which service logic a reactor instance drives.
#[derive(Clone)]
pub(crate) enum Engine {
    /// A full evaluation server (coalescer, eval core, jobs).
    Local(Arc<Shared>),
    /// A shard router front (fan-out to upstream shard servers).
    Router(Arc<RouterShared>),
}

impl Engine {
    pub(crate) fn shutting_down(&self) -> bool {
        match self {
            Engine::Local(s) => s.is_shutting_down(),
            Engine::Router(r) => r.is_shutting_down(),
        }
    }

    fn metrics(&self) -> &crate::server::ServerMetrics {
        match self {
            Engine::Local(s) => s.metrics(),
            Engine::Router(r) => r.metrics(),
        }
    }

    fn limits(&self) -> (Duration, Duration, usize) {
        match self {
            Engine::Local(s) => s.limits(),
            Engine::Router(r) => r.limits(),
        }
    }

    /// The next server-assigned trace id (deterministic per-process
    /// counter; prefixed by role so router- and shard-assigned ids
    /// never collide in a merged trace).
    fn next_trace_id(&self) -> String {
        match self {
            Engine::Local(s) => format!("s{:08x}", s.next_trace_seq()),
            Engine::Router(r) => format!("r{:08x}", r.next_trace_seq()),
        }
    }

    /// The role label this engine stamps on its request records.
    fn role(&self) -> &'static str {
        match self {
            Engine::Local(_) => "server",
            Engine::Router(_) => "router",
        }
    }

    /// Records one fully written response: always into the in-memory
    /// flight recorder, and — when the request is trace-sampled — as a
    /// `request` record in the JSONL trace.
    fn record_request(
        &self,
        timeline: &Timeline,
        endpoint: &'static str,
        status: u16,
        total_us: u64,
    ) {
        let completed = CompletedRequest::new(timeline, endpoint, status, total_us);
        match self {
            Engine::Local(s) => s.flight().record(completed),
            Engine::Router(r) => r.flight().record(completed),
        }
        if timeline.sampled {
            if let Some(id) = &timeline.trace {
                let phases: Vec<(&'static str, u64)> =
                    PHASES.iter().copied().zip(timeline.phase_values()).collect();
                trace::request(&trace::RequestRecord {
                    trace: id,
                    role: self.role(),
                    endpoint,
                    status,
                    dur_us: total_us,
                    phases: &phases,
                });
            }
        }
    }

    /// Reactor-thread dispatch of a parsed request. Only work that is cheap
    /// and nonblocking may run here.
    fn dispatch(
        &self,
        request: Request,
        token: u64,
        generation: u64,
        completions: &Arc<CompletionQueue>,
        app_tx: &SyncSender<AppJob>,
    ) -> Dispatch {
        // Local mode answers `/v1/evaluate` through the coalescer; every
        // other request (and everything in router mode, whose handlers do
        // blocking upstream I/O) goes to the app pool.
        if let Engine::Local(shared) = self {
            let path = request.path.split('?').next().unwrap_or(&request.path);
            if (request.method.as_str(), path) == ("POST", "/v1/evaluate") {
                return shared.dispatch_evaluate(&request, token, generation, completions);
            }
            if (request.method.as_str(), path) == ("POST", "/v1/shutdown") {
                shared.initiate_shutdown();
                return Dispatch::Immediate(200, "{\"status\":\"shutting down\"}".into(), CT_JSON);
            }
        }
        // Router mode handles everything (including /v1/shutdown, whose
        // upstream fan-out blocks) on the app pool.
        match app_tx.try_send(AppJob { token, generation, request, enqueued_at: Instant::now() }) {
            Ok(()) => Dispatch::Queued,
            Err(TrySendError::Full(_)) => {
                self.metrics().rejected.inc();
                Dispatch::Immediate(503, error_body("request queue full, retry later"), CT_JSON)
            }
            Err(TrySendError::Disconnected(_)) => {
                Dispatch::Immediate(503, error_body("server is shutting down"), CT_JSON)
            }
        }
    }

    /// Renders a parked evaluate completion (local mode only).
    fn render_eval(
        &self,
        codes: &[u64],
        entries: Vec<(LedgerEntry, Fidelity)>,
    ) -> (u16, String, &'static str) {
        match self {
            Engine::Local(shared) => shared.render_evaluate(codes, entries),
            Engine::Router(_) => (500, error_body("router has no local evaluator"), CT_JSON),
        }
    }

    /// Blocking request handling on an app-pool worker.
    fn app_handle(&self, request: &Request) -> (u16, String, &'static str) {
        match self {
            Engine::Local(shared) => crate::server::route(shared, request),
            Engine::Router(router) => crate::shard::route(router, request),
        }
    }
}

/// Outcome of [`Engine::dispatch`].
pub(crate) enum Dispatch {
    /// Respond now from the reactor thread.
    Immediate(u16, String, &'static str),
    /// Parked on the coalescer; a [`Completion::Eval`] will arrive.
    EvalParked { codes: Vec<u64> },
    /// Handed to the app pool; a [`Completion::App`] will arrive.
    Queued,
}

/// One finished piece of off-reactor work, addressed by connection token
/// and the generation it was issued under.
pub(crate) enum Completion {
    Eval {
        token: u64,
        generation: u64,
        entries: Vec<(LedgerEntry, Fidelity)>,
        timing: EvalTiming,
        /// When the completion was posted — anchors the write phase.
        posted_at: Instant,
    },
    App {
        token: u64,
        generation: u64,
        status: u16,
        body: String,
        content_type: &'static str,
        timing: EvalTiming,
        posted_at: Instant,
    },
}

/// MPSC rendezvous from workers back to the reactor, with a built-in wake.
pub(crate) struct CompletionQueue {
    items: Mutex<VecDeque<Completion>>,
    waker: Waker,
}

impl CompletionQueue {
    pub(crate) fn new(waker: Waker) -> Self {
        CompletionQueue { items: Mutex::new(VecDeque::new()), waker }
    }

    pub(crate) fn push(&self, completion: Completion) {
        self.items.lock().expect("completion queue poisoned").push_back(completion);
        self.waker.wake();
    }

    fn drain(&self) -> VecDeque<Completion> {
        std::mem::take(&mut *self.items.lock().expect("completion queue poisoned"))
    }
}

/// One queued app-pool request.
pub(crate) struct AppJob {
    pub token: u64,
    pub generation: u64,
    pub request: Request,
    /// When the job was queued (timeline `queue` phase).
    pub enqueued_at: Instant,
}

/// The app-pool worker body: handle requests until the queue closes.
pub(crate) fn app_worker_loop(
    engine: Engine,
    rx: Arc<Mutex<Receiver<AppJob>>>,
    completions: Arc<CompletionQueue>,
) {
    loop {
        let job = {
            let rx = rx.lock().expect("app queue poisoned");
            rx.recv()
        };
        let Ok(job) = job else { return };
        let picked_at = Instant::now();
        let (status, body, content_type) = engine.app_handle(&job.request);
        let timing = EvalTiming {
            queue_us: picked_at.saturating_duration_since(job.enqueued_at).as_micros() as u64,
            coalesce_us: 0,
            exec_us: picked_at.elapsed().as_micros() as u64,
        };
        completions.push(Completion::App {
            token: job.token,
            generation: job.generation,
            status,
            body,
            content_type,
            timing,
            posted_at: Instant::now(),
        });
    }
}

/// Picks the poller backend: platform default, unless
/// `ARCHDSE_REACTOR_BACKEND=poll` forces the portable fallback.
fn make_poller() -> std::io::Result<Poller> {
    match std::env::var("ARCHDSE_REACTOR_BACKEND").as_deref() {
        Ok("poll") => Poller::with_backend(Backend::Poll),
        _ => Poller::new(),
    }
}

pub(crate) struct Reactor {
    engine: Engine,
    poller: Poller,
    wheel: TimerWheel,
    conns: HashMap<u64, Conn>,
    completions: Arc<CompletionQueue>,
    app_tx: SyncSender<AppJob>,
    wake_rx: WakeRx,
    listener: Option<TcpListener>,
    next_token: u64,
    read_timeout: Duration,
    write_timeout: Duration,
    max_body_bytes: usize,
}

impl Reactor {
    /// The reactor thread body. Returns when shutdown has been requested
    /// and every accepted connection has fully drained.
    pub(crate) fn run(
        engine: Engine,
        listener: TcpListener,
        wake_rx: WakeRx,
        completions: Arc<CompletionQueue>,
        app_tx: SyncSender<AppJob>,
    ) {
        let Ok(poller) = make_poller() else { return };
        if listener.set_nonblocking(true).is_err() {
            return;
        }
        if poller.register(listener.as_raw_fd(), LISTEN_TOKEN, Interest::Read).is_err() {
            return;
        }
        if poller.register(wake_rx.as_raw_fd(), WAKE_TOKEN, Interest::Read).is_err() {
            return;
        }
        let (read_timeout, write_timeout, max_body_bytes) = engine.limits();
        let mut reactor = Reactor {
            engine,
            poller,
            wheel: TimerWheel::new(TICK, WHEEL_SLOTS),
            conns: HashMap::new(),
            completions,
            app_tx,
            wake_rx,
            listener: Some(listener),
            next_token: LISTEN_TOKEN + 1,
            read_timeout,
            write_timeout,
            max_body_bytes,
        };
        reactor.event_loop();
    }

    fn event_loop(&mut self) {
        let mut events: Vec<Event> = Vec::new();
        let mut fired: Vec<(u64, u64)> = Vec::new();
        loop {
            let timeout = self
                .wheel
                .next_deadline()
                .map(|deadline| deadline.saturating_duration_since(Instant::now()));
            match self.poller.wait(&mut events, timeout) {
                Ok(_) => {}
                Err(_) => {
                    // A broken poller cannot make progress; back off briefly
                    // so a transient failure does not spin the CPU.
                    std::thread::sleep(Duration::from_millis(1));
                }
            }
            self.engine.metrics().reactor_wakeups.inc();

            let batch = std::mem::take(&mut events);
            for event in &batch {
                match event.token {
                    WAKE_TOKEN => self.wake_rx.drain(),
                    LISTEN_TOKEN => self.accept_ready(),
                    token => self.conn_event(token, event),
                }
            }
            events = batch;

            for completion in self.completions.drain() {
                self.apply_completion(completion);
            }

            let now = Instant::now();
            self.wheel.expire(now, &mut fired);
            let due = std::mem::take(&mut fired);
            for &(token, generation) in &due {
                self.on_deadline(token, generation);
            }
            fired = due;

            if self.engine.shutting_down() && self.shutdown_sweep() {
                return;
            }
        }
    }

    /// Progresses shutdown: stop accepting, shed idle connections, and
    /// report whether the drain is complete.
    fn shutdown_sweep(&mut self) -> bool {
        if let Some(listener) = self.listener.take() {
            let _ = self.poller.deregister(listener.as_raw_fd());
            // Dropping closes the socket; pending SYNs get RST, which is
            // the contract: after /v1/shutdown answers, connects fail.
        }
        let idle: Vec<u64> = self
            .conns
            .iter()
            .filter(|(_, c)| c.state == ConnState::Reading && !c.got_bytes)
            .map(|(&t, _)| t)
            .collect();
        for token in idle {
            self.close_conn(token);
        }
        self.conns.is_empty()
    }

    fn accept_ready(&mut self) {
        loop {
            let Some(listener) = self.listener.as_ref() else { return };
            match listener.accept() {
                Ok((stream, _)) => {
                    if self.engine.shutting_down() {
                        continue; // drop it; we are draining
                    }
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    let token = self.next_token;
                    self.next_token += 1;
                    let conn = Conn::new(stream, self.max_body_bytes);
                    if self.poller.register(conn.stream.as_raw_fd(), token, Interest::Read).is_err()
                    {
                        continue;
                    }
                    self.wheel.insert(Instant::now(), self.read_timeout, token, conn.generation);
                    self.conns.insert(token, conn);
                    self.engine.metrics().connections_open.set(self.conns.len() as f64);
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    // Out of fds or a transient accept failure: count it and
                    // yield briefly — level-triggered readiness would
                    // otherwise spin the loop at full speed.
                    self.engine.metrics().accept_errors.inc();
                    std::thread::sleep(Duration::from_millis(2));
                    return;
                }
            }
        }
    }

    fn conn_event(&mut self, token: u64, event: &Event) {
        let Some(state) = self.conns.get(&token).map(|conn| conn.state) else { return };
        match state {
            ConnState::Reading if event.readable || event.hangup => self.pump(token, true),
            ConnState::Writing
                if (event.writable || event.hangup) && self.continue_write(token) =>
            {
                // Response done and the connection went back to
                // Reading: service any buffered pipelined requests.
                self.pump(token, false);
            }
            ConnState::InFlight if event.hangup => {
                // Peer is gone; the eventual completion will find no
                // connection and be dropped.
                self.close_conn(token);
            }
            _ => {}
        }
    }

    /// Reads (optionally) and processes as many buffered requests as
    /// possible — the pipelining loop.
    fn pump(&mut self, token: u64, mut do_read: bool) {
        loop {
            let Some(conn) = self.conns.get_mut(&token) else { return };
            if conn.state != ConnState::Reading {
                return;
            }
            let read_event = if do_read { conn.on_readable() } else { conn.step_parser() };
            do_read = false;
            match read_event {
                ReadEvent::More => return,
                ReadEvent::Close => {
                    self.close_conn(token);
                    return;
                }
                ReadEvent::Bad(bad) => {
                    let metrics = self.engine.metrics();
                    metrics.errors.inc();
                    metrics.response("unparsed", bad.status).inc();
                    if let Some(conn) = self.conns.get_mut(&token) {
                        conn.keep_alive_after = false;
                    }
                    self.respond(token, bad.status, &error_body(&bad.reason), CT_JSON, false);
                    return;
                }
                ReadEvent::Request(request) => {
                    if !self.begin_request(token, request) {
                        return;
                    }
                    // begin_request finished the whole response inline and
                    // the connection is ready for the next pipelined
                    // request: loop without reading.
                }
            }
        }
    }

    /// Dispatches one parsed request. Returns `true` when the response was
    /// written out entirely and the connection is back in `Reading` (so the
    /// caller may continue pumping pipelined input).
    fn begin_request(&mut self, token: u64, mut request: Request) -> bool {
        let shutting_down = self.engine.shutting_down();
        // Trace context: adopt the client's id, or — only when a trace
        // sink is installed — assign one. Off path this is one load.
        if request.trace.is_none() && trace::enabled() {
            request.trace = Some(self.engine.next_trace_id());
        }
        let Some(conn) = self.conns.get_mut(&token) else { return false };
        let now = Instant::now();
        conn.started = Some(now);
        conn.timeline.sampled =
            request.trace.as_deref().is_some_and(|id| trace::request_sampled(trace_id_hash(id)));
        conn.timeline.trace = request.trace.clone();
        if let Some(read_started) = conn.timeline.read_started {
            conn.timeline.parse_us = now.saturating_duration_since(read_started).as_micros() as u64;
        }
        conn.endpoint = endpoint_label(&request.path);
        conn.keep_alive_after = request.keep_alive && !shutting_down;
        conn.state = ConnState::InFlight;
        let generation = conn.bump_generation();
        let fd = conn.stream.as_raw_fd();
        let _ = self.poller.modify(fd, token, Interest::None);

        match self.engine.dispatch(request, token, generation, &self.completions, &self.app_tx) {
            Dispatch::Immediate(status, body, content_type) => {
                self.finish_and_respond(token, status, &body, content_type)
            }
            Dispatch::EvalParked { codes } => {
                if let Some(conn) = self.conns.get_mut(&token) {
                    conn.pending_codes = codes;
                }
                false
            }
            Dispatch::Queued => false,
        }
    }

    /// Observes per-request metrics, then writes the response. Returns
    /// `true` when the connection is immediately ready for the next request.
    fn finish_and_respond(
        &mut self,
        token: u64,
        status: u16,
        body: &str,
        content_type: &'static str,
    ) -> bool {
        let Some(conn) = self.conns.get_mut(&token) else { return false };
        let endpoint = conn.endpoint;
        let elapsed = conn.started.map(|s| s.elapsed());
        let metrics = self.engine.metrics();
        if let Some(elapsed) = elapsed {
            metrics.request_seconds(endpoint).observe_duration(elapsed);
        }
        metrics.response(endpoint, status).inc();
        if status >= 400 {
            metrics.errors.inc();
        }
        self.respond(token, status, body, content_type, true)
    }

    /// Loads and starts writing a response. `keep_alive_allowed` is false
    /// for protocol-error responses which always close. Returns `true` when
    /// the response flushed completely and the connection took the
    /// keep-alive path back to `Reading`.
    fn respond(
        &mut self,
        token: u64,
        status: u16,
        body: &str,
        content_type: &'static str,
        keep_alive_allowed: bool,
    ) -> bool {
        let shutting_down = self.engine.shutting_down();
        let Some(conn) = self.conns.get_mut(&token) else { return false };
        let keep = keep_alive_allowed && conn.keep_alive_after && !shutting_down;
        conn.keep_alive_after = keep;
        conn.status = status;
        // Immediate responses never went through a completion; anchor
        // the write phase here.
        if conn.timeline.resp_ready.is_none() {
            conn.timeline.resp_ready = Some(Instant::now());
        }
        // Requests with trace context get the phase breakdown echoed as
        // a `Server-Timing` header; everyone else keeps the old bytes.
        let response = if conn.timeline.trace.is_some() {
            let timing = conn.timeline.server_timing_value();
            build_response_with(status, content_type, body, keep, &[("Server-Timing", timing)])
        } else {
            build_response(status, content_type, body, keep)
        };
        conn.set_response(response);
        let generation = conn.bump_generation();
        self.wheel.insert(Instant::now(), self.write_timeout, token, generation);
        self.continue_write(token)
    }

    /// Drives the nonblocking write; on completion either resets for
    /// keep-alive (returning `true`) or closes.
    fn continue_write(&mut self, token: u64) -> bool {
        let Some(conn) = self.conns.get_mut(&token) else { return false };
        if conn.state != ConnState::Writing {
            return false;
        }
        match conn.try_flush() {
            Ok(true) => {
                conn.bump_generation(); // cancel the write deadline
                                        // The response is fully on the wire: close the write
                                        // phase and record the finished timeline.
                let now = Instant::now();
                if let Some(ready) = conn.timeline.resp_ready {
                    // The write window opens when the completion was
                    // posted; serialization happened inside it and is
                    // reported separately, so subtract it to keep the
                    // phases tiling (never exceeding) the wall time.
                    let since_ready = now.saturating_duration_since(ready).as_micros() as u64;
                    conn.timeline.write_us = since_ready.saturating_sub(conn.timeline.serialize_us);
                }
                let total_us = conn
                    .timeline
                    .read_started
                    .map(|s| now.saturating_duration_since(s).as_micros() as u64)
                    .unwrap_or(0);
                let timeline = conn.timeline.clone();
                let (endpoint, status) = (conn.endpoint, conn.status);
                self.engine.record_request(&timeline, endpoint, status, total_us);
                let Some(conn) = self.conns.get_mut(&token) else { return false };
                if conn.keep_alive_after && conn.reset_for_next_request() {
                    let generation = conn.generation;
                    let fd = conn.stream.as_raw_fd();
                    let _ = self.poller.modify(fd, token, Interest::Read);
                    self.wheel.insert(Instant::now(), self.read_timeout, token, generation);
                    // A pipelined request may already be buffered; the
                    // caller (pump) keeps going. When called from a
                    // completion path, pump explicitly.
                    true
                } else {
                    self.close_conn(token);
                    false
                }
            }
            Ok(false) => {
                let fd = conn.stream.as_raw_fd();
                let _ = self.poller.modify(fd, token, Interest::Write);
                false
            }
            Err(_) => {
                self.close_conn(token);
                false
            }
        }
    }

    fn apply_completion(&mut self, completion: Completion) {
        let (token, generation) = match &completion {
            Completion::Eval { token, generation, .. } => (*token, *generation),
            Completion::App { token, generation, .. } => (*token, *generation),
        };
        let Some(conn) = self.conns.get(&token) else { return };
        if conn.generation != generation || conn.state != ConnState::InFlight {
            return; // stale: the connection moved on (timeout/close path)
        }
        let ready = match completion {
            Completion::Eval { entries, timing, posted_at, .. } => {
                let codes = self
                    .conns
                    .get_mut(&token)
                    .map(|c| {
                        c.timeline.queue_us = timing.queue_us;
                        c.timeline.coalesce_us = timing.coalesce_us;
                        c.timeline.exec_us = timing.exec_us;
                        c.timeline.resp_ready = Some(posted_at);
                        std::mem::take(&mut c.pending_codes)
                    })
                    .unwrap_or_default();
                let serialize_start = Instant::now();
                let (status, body, content_type) = self.engine.render_eval(&codes, entries);
                if let Some(conn) = self.conns.get_mut(&token) {
                    conn.timeline.serialize_us = serialize_start.elapsed().as_micros() as u64;
                }
                self.finish_and_respond(token, status, &body, content_type)
            }
            Completion::App { status, body, content_type, timing, posted_at, .. } => {
                if let Some(conn) = self.conns.get_mut(&token) {
                    conn.timeline.queue_us = timing.queue_us;
                    conn.timeline.exec_us = timing.exec_us;
                    conn.timeline.resp_ready = Some(posted_at);
                }
                self.finish_and_respond(token, status, &body, content_type)
            }
        };
        if ready {
            // The response flushed inline and the connection is reading
            // again — service any pipelined input that is already buffered.
            self.pump(token, false);
        }
    }

    fn on_deadline(&mut self, token: u64, generation: u64) {
        let Some(conn) = self.conns.get_mut(&token) else { return };
        if conn.generation != generation {
            return; // stale deadline from an earlier phase
        }
        match conn.state {
            ConnState::Reading => {
                if conn.got_bytes {
                    // Slow-loris: a partial request dribbled past the read
                    // deadline gets a 408 and the door.
                    let metrics = self.engine.metrics();
                    metrics.errors.inc();
                    metrics.response("unparsed", 408).inc();
                    conn.keep_alive_after = false;
                    self.respond(token, 408, &error_body("request timed out"), CT_JSON, false);
                } else {
                    // Idle keep-alive / never-spoke connection: quiet close.
                    self.engine.metrics().conns_reaped.inc();
                    self.close_conn(token);
                }
            }
            ConnState::Writing => self.close_conn(token), // write deadline
            ConnState::InFlight | ConnState::Closed => {}
        }
    }

    fn close_conn(&mut self, token: u64) {
        if let Some(mut conn) = self.conns.remove(&token) {
            conn.state = ConnState::Closed;
            let _ = self.poller.deregister(conn.stream.as_raw_fd());
            self.engine.metrics().connections_open.set(self.conns.len() as f64);
        }
    }
}
