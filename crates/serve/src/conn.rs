//! Per-connection state machine driven by the reactor.
//!
//! Each accepted socket becomes one [`Conn`]: a nonblocking `TcpStream`, a
//! resumable [`RequestParser`], and an outgoing byte buffer. The reactor
//! feeds it readiness events; the connection never blocks and never owns a
//! thread. States:
//!
//! ```text
//!            ┌──────────── keep-alive / pipelined ───────────┐
//!            ▼                                               │
//!   Reading ──(request parsed)──▶ InFlight ──(completion)──▶ Writing ──▶ Closed
//!      │                            (parked: interest None,       (partial writes,
//!      │  (parse error/timeout)      waiting on coalescer          write deadline)
//!      └──────────────────────▶      or app pool)
//! ```
//!
//! Timers use a per-connection `generation`: every phase change bumps it, so
//! a deadline armed for an earlier phase is recognisably stale when it pops
//! out of the timer wheel.

use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::time::Instant;

use crate::http::{Parsed, RequestParser};

/// Read chunk size; also bounds how much one readable event consumes.
const READ_CHUNK: usize = 16 * 1024;

/// Connection phase, as seen by the reactor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ConnState {
    /// Accumulating request bytes (read deadline armed).
    Reading,
    /// A complete request was dispatched; waiting for its completion
    /// (interest `None`, no deadline — the pipeline always replies).
    InFlight,
    /// Flushing the response (write deadline armed).
    Writing,
    /// Finished; the reactor removes and drops the connection.
    Closed,
}

/// What a read pass produced, for the reactor to act on.
#[derive(Debug)]
pub(crate) enum ReadEvent {
    /// No complete request yet; stay in `Reading`.
    More,
    /// A complete request is ready (returned to the reactor for dispatch).
    Request(crate::http::Request),
    /// Protocol error: respond with this status/reason, then close.
    Bad(crate::http::BadRequest),
    /// Peer is gone / stream unusable with nothing to answer.
    Close,
}

pub(crate) struct Conn {
    pub stream: TcpStream,
    /// Phase-change counter guarding timers and completions.
    pub generation: u64,
    pub state: ConnState,
    parser: RequestParser,
    /// Pending response bytes and the write cursor into them.
    out: Vec<u8>,
    out_pos: usize,
    /// Whether the connection survives the current response.
    pub keep_alive_after: bool,
    /// Any request bytes seen since the last response (408 vs quiet close
    /// when the read deadline fires).
    pub got_bytes: bool,
    /// Request start (first complete parse), for the latency histogram.
    pub started: Option<Instant>,
    /// Low-cardinality endpoint label of the in-flight request.
    pub endpoint: &'static str,
    /// Encoded design points of an in-flight `/v1/evaluate` (local mode),
    /// kept for rendering the reply when the completion arrives.
    pub pending_codes: Vec<u64>,
    /// The peer's read half hit EOF.
    read_closed: bool,
}

impl Conn {
    pub fn new(stream: TcpStream, max_body_bytes: usize) -> Conn {
        Conn {
            stream,
            generation: 0,
            state: ConnState::Reading,
            parser: RequestParser::new(max_body_bytes),
            out: Vec::new(),
            out_pos: 0,
            keep_alive_after: false,
            got_bytes: false,
            started: None,
            endpoint: "other",
            pending_codes: Vec::new(),
            read_closed: false,
        }
    }

    /// Marks a phase change; stale timers/completions carry the old value.
    pub fn bump_generation(&mut self) -> u64 {
        self.generation += 1;
        self.generation
    }

    /// Drains the socket into the parser and steps the parser once.
    /// Call only in `Reading`.
    pub fn on_readable(&mut self) -> ReadEvent {
        let mut buf = [0u8; READ_CHUNK];
        loop {
            match self.stream.read(&mut buf) {
                Ok(0) => {
                    self.read_closed = true;
                    self.parser.eof();
                    break;
                }
                Ok(n) => {
                    self.got_bytes = true;
                    self.parser.feed(&buf[..n]);
                    if n < buf.len() {
                        break;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return ReadEvent::Close,
            }
        }
        self.step_parser()
    }

    /// Advances the parser without reading (used right after a response
    /// completes, when a pipelined request may already be buffered).
    pub fn step_parser(&mut self) -> ReadEvent {
        match self.parser.next_request() {
            Parsed::Incomplete => {
                if self.read_closed {
                    // EOF declared and the parser still wants more: it has
                    // already emitted its verdict (or will return Closed);
                    // an Incomplete here means the stream is spent.
                    ReadEvent::Close
                } else {
                    ReadEvent::More
                }
            }
            Parsed::Request(request) => ReadEvent::Request(request),
            Parsed::Closed => ReadEvent::Close,
            Parsed::Bad(bad) => ReadEvent::Bad(bad),
        }
    }

    /// Loads a rendered response for writing. Returns `false` when the
    /// socket already failed and the connection should just close.
    pub fn set_response(&mut self, bytes: Vec<u8>) {
        self.out = bytes;
        self.out_pos = 0;
        self.state = ConnState::Writing;
    }

    /// Writes as much of the pending response as the socket accepts.
    /// `Ok(true)` means fully flushed.
    pub fn try_flush(&mut self) -> io::Result<bool> {
        while self.out_pos < self.out.len() {
            match self.stream.write(&self.out[self.out_pos..]) {
                Ok(0) => return Err(io::ErrorKind::WriteZero.into()),
                Ok(n) => self.out_pos += n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(false),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        Ok(true)
    }

    /// Resets per-request state after a fully flushed keep-alive response.
    /// Returns `false` if the connection cannot take another request (peer
    /// half closed and nothing buffered).
    pub fn reset_for_next_request(&mut self) -> bool {
        self.out = Vec::new();
        self.out_pos = 0;
        self.started = None;
        self.endpoint = "other";
        self.pending_codes = Vec::new();
        self.keep_alive_after = false;
        self.got_bytes = self.parser.buffered() > 0;
        self.state = ConnState::Reading;
        !(self.read_closed && self.parser.buffered() == 0)
    }
}
