//! Per-connection state machine driven by the reactor.
//!
//! Each accepted socket becomes one [`Conn`]: a nonblocking `TcpStream`, a
//! resumable [`RequestParser`], and an outgoing byte buffer. The reactor
//! feeds it readiness events; the connection never blocks and never owns a
//! thread. States:
//!
//! ```text
//!            ┌──────────── keep-alive / pipelined ───────────┐
//!            ▼                                               │
//!   Reading ──(request parsed)──▶ InFlight ──(completion)──▶ Writing ──▶ Closed
//!      │                            (parked: interest None,       (partial writes,
//!      │  (parse error/timeout)      waiting on coalescer          write deadline)
//!      └──────────────────────▶      or app pool)
//! ```
//!
//! Timers use a per-connection `generation`: every phase change bumps it, so
//! a deadline armed for an earlier phase is recognisably stale when it pops
//! out of the timer wheel.

use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::time::Instant;

use crate::http::{Parsed, RequestParser};

/// Read chunk size; also bounds how much one readable event consumes.
const READ_CHUNK: usize = 16 * 1024;

/// The named request phases, in pipeline order. Every timeline renders
/// all six (zeros included) so records have one fixed shape.
pub(crate) const PHASES: [&str; 6] = ["parse", "queue", "coalesce", "exec", "serialize", "write"];

/// FNV-1a over a trace id, feeding the tracer's deterministic request
/// sampler (string ids need a stable u64 before the splitmix hash).
pub(crate) fn trace_id_hash(id: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in id.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    hash
}

/// Per-request phase timeline, filled in as the request crosses the
/// reactor, the queues and the coalescer:
///
/// * `parse` — first byte seen → complete request parsed (includes
///   inter-packet waits; loopback requests arrive in one packet).
/// * `queue` — dispatched → picked up (coalescer or app pool).
/// * `coalesce` — picked up → batch submitted (the gather delay).
/// * `exec` — ledger batch execution / handler / upstream round-trip.
/// * `serialize` — response rendering.
/// * `write` — completion posted → response fully flushed (includes
///   the reactor wake-up, so the phases tile the request wall time).
#[derive(Debug, Default, Clone)]
pub(crate) struct Timeline {
    /// The request's trace id: the client's `X-ArchDSE-Trace`, or a
    /// server-assigned one.
    pub trace: Option<String>,
    /// Whether this request is traced (deterministic id-hash sampling).
    pub sampled: bool,
    /// When the first byte of this request was seen.
    pub read_started: Option<Instant>,
    /// When the completion was posted (write-phase anchor).
    pub resp_ready: Option<Instant>,
    /// Phase durations, µs, in [`PHASES`] order minus `write`.
    pub parse_us: u64,
    /// Queue wait, µs.
    pub queue_us: u64,
    /// Coalescer gather delay, µs.
    pub coalesce_us: u64,
    /// Execution share, µs.
    pub exec_us: u64,
    /// Response rendering, µs.
    pub serialize_us: u64,
    /// Response flush, µs (filled when the write completes).
    pub write_us: u64,
}

impl Timeline {
    /// The phase durations in [`PHASES`] order.
    pub fn phase_values(&self) -> [u64; 6] {
        [
            self.parse_us,
            self.queue_us,
            self.coalesce_us,
            self.exec_us,
            self.serialize_us,
            self.write_us,
        ]
    }

    /// Renders the `Server-Timing` response header value for the
    /// phases known before the write begins (everything but `write`,
    /// plus `app;dur=` total server time so clients can compute the
    /// network/queue gap). Durations are milliseconds per the spec.
    pub fn server_timing_value(&self) -> String {
        let ms = |us: u64| us as f64 / 1000.0;
        let server_us =
            self.parse_us + self.queue_us + self.coalesce_us + self.exec_us + self.serialize_us;
        format!(
            "parse;dur={:.3}, queue;dur={:.3}, coalesce;dur={:.3}, exec;dur={:.3}, \
             serialize;dur={:.3}, app;dur={:.3}",
            ms(self.parse_us),
            ms(self.queue_us),
            ms(self.coalesce_us),
            ms(self.exec_us),
            ms(self.serialize_us),
            ms(server_us),
        )
    }
}

/// Connection phase, as seen by the reactor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ConnState {
    /// Accumulating request bytes (read deadline armed).
    Reading,
    /// A complete request was dispatched; waiting for its completion
    /// (interest `None`, no deadline — the pipeline always replies).
    InFlight,
    /// Flushing the response (write deadline armed).
    Writing,
    /// Finished; the reactor removes and drops the connection.
    Closed,
}

/// What a read pass produced, for the reactor to act on.
#[derive(Debug)]
pub(crate) enum ReadEvent {
    /// No complete request yet; stay in `Reading`.
    More,
    /// A complete request is ready (returned to the reactor for dispatch).
    Request(crate::http::Request),
    /// Protocol error: respond with this status/reason, then close.
    Bad(crate::http::BadRequest),
    /// Peer is gone / stream unusable with nothing to answer.
    Close,
}

pub(crate) struct Conn {
    pub stream: TcpStream,
    /// Phase-change counter guarding timers and completions.
    pub generation: u64,
    pub state: ConnState,
    parser: RequestParser,
    /// Pending response bytes and the write cursor into them.
    out: Vec<u8>,
    out_pos: usize,
    /// Whether the connection survives the current response.
    pub keep_alive_after: bool,
    /// Any request bytes seen since the last response (408 vs quiet close
    /// when the read deadline fires).
    pub got_bytes: bool,
    /// Request start (first complete parse), for the latency histogram.
    pub started: Option<Instant>,
    /// Low-cardinality endpoint label of the in-flight request.
    pub endpoint: &'static str,
    /// Status of the response currently being written (flight record).
    pub status: u16,
    /// Encoded design points of an in-flight `/v1/evaluate` (local mode),
    /// kept for rendering the reply when the completion arrives.
    pub pending_codes: Vec<u64>,
    /// Phase timeline of the in-flight request.
    pub timeline: Timeline,
    /// The peer's read half hit EOF.
    read_closed: bool,
}

impl Conn {
    pub fn new(stream: TcpStream, max_body_bytes: usize) -> Conn {
        Conn {
            stream,
            generation: 0,
            state: ConnState::Reading,
            parser: RequestParser::new(max_body_bytes),
            out: Vec::new(),
            out_pos: 0,
            keep_alive_after: false,
            got_bytes: false,
            started: None,
            endpoint: "other",
            status: 0,
            pending_codes: Vec::new(),
            timeline: Timeline::default(),
            read_closed: false,
        }
    }

    /// Marks a phase change; stale timers/completions carry the old value.
    pub fn bump_generation(&mut self) -> u64 {
        self.generation += 1;
        self.generation
    }

    /// Drains the socket into the parser and steps the parser once.
    /// Call only in `Reading`.
    pub fn on_readable(&mut self) -> ReadEvent {
        let mut buf = [0u8; READ_CHUNK];
        loop {
            match self.stream.read(&mut buf) {
                Ok(0) => {
                    self.read_closed = true;
                    self.parser.eof();
                    break;
                }
                Ok(n) => {
                    self.got_bytes = true;
                    if self.timeline.read_started.is_none() {
                        self.timeline.read_started = Some(Instant::now());
                    }
                    self.parser.feed(&buf[..n]);
                    if n < buf.len() {
                        break;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return ReadEvent::Close,
            }
        }
        self.step_parser()
    }

    /// Advances the parser without reading (used right after a response
    /// completes, when a pipelined request may already be buffered).
    pub fn step_parser(&mut self) -> ReadEvent {
        match self.parser.next_request() {
            Parsed::Incomplete => {
                if self.read_closed {
                    // EOF declared and the parser still wants more: it has
                    // already emitted its verdict (or will return Closed);
                    // an Incomplete here means the stream is spent.
                    ReadEvent::Close
                } else {
                    ReadEvent::More
                }
            }
            Parsed::Request(request) => ReadEvent::Request(request),
            Parsed::Closed => ReadEvent::Close,
            Parsed::Bad(bad) => ReadEvent::Bad(bad),
        }
    }

    /// Loads a rendered response for writing. Returns `false` when the
    /// socket already failed and the connection should just close.
    pub fn set_response(&mut self, bytes: Vec<u8>) {
        self.out = bytes;
        self.out_pos = 0;
        self.state = ConnState::Writing;
    }

    /// Writes as much of the pending response as the socket accepts.
    /// `Ok(true)` means fully flushed.
    pub fn try_flush(&mut self) -> io::Result<bool> {
        while self.out_pos < self.out.len() {
            match self.stream.write(&self.out[self.out_pos..]) {
                Ok(0) => return Err(io::ErrorKind::WriteZero.into()),
                Ok(n) => self.out_pos += n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(false),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        Ok(true)
    }

    /// Resets per-request state after a fully flushed keep-alive response.
    /// Returns `false` if the connection cannot take another request (peer
    /// half closed and nothing buffered).
    pub fn reset_for_next_request(&mut self) -> bool {
        self.out = Vec::new();
        self.out_pos = 0;
        self.started = None;
        self.endpoint = "other";
        self.status = 0;
        self.pending_codes = Vec::new();
        self.timeline = Timeline::default();
        self.keep_alive_after = false;
        self.got_bytes = self.parser.buffered() > 0;
        if self.got_bytes {
            // Pipelined bytes of the next request are already here.
            self.timeline.read_started = Some(Instant::now());
        }
        self.state = ConnState::Reading;
        !(self.read_closed && self.parser.buffered() == 0)
    }
}
