//! The cross-request micro-batcher.
//!
//! Concurrent `/v1/evaluate` requests do not each pay for their own
//! trip through the evaluation stack. Connection workers enqueue an
//! [`EvalJob`] per request and block on its reply; a single coalescer
//! thread gathers jobs up to a points budget ([`max_batch_points`]) or
//! a delay window ([`max_delay`]), then submits **one**
//! [`CostLedger::evaluate_batch`] per fidelity tier present in the
//! window (auto-routed jobs form their own group, split per tier by the
//! router). The batch inherits `exec::par_map` parallelism inside the
//! simulator while the ledger keeps the accounting counter-exact with a
//! sequential walk, so coalescing changes throughput — never results.
//! Every HF charge trains the server's learned tier at the window
//! boundary, on the coalescer thread holding the core lock, so training
//! order is the ledger's commit order regardless of client concurrency.
//!
//! [`max_batch_points`]: BatcherConfig::max_batch_points
//! [`max_delay`]: BatcherConfig::max_delay
//! [`CostLedger::evaluate_batch`]: dse_exec::CostLedger::evaluate_batch

use std::sync::mpsc::{Receiver, RecvTimeoutError};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use archdse::eval::{AnalyticalLf, SimulatorHf};
use dse_exec::{
    CostLedger, CpiModel, Evaluation, Fidelity, LearnedTier, LedgerEntry, TierGate, TieredEvaluator,
};
use dse_mfrl::LowFidelity;
use dse_obs::trace;
use dse_space::{DesignPoint, DesignSpace};
use serde::{Deserialize, Serialize};

/// Coalescing policy of the micro-batcher.
#[derive(Debug, Clone, Copy)]
pub struct BatcherConfig {
    /// Most design points gathered into one submitted batch.
    pub max_batch_points: usize,
    /// Longest a request waits for companions before the window closes.
    pub max_delay: Duration,
    /// Pending-request capacity; a full queue answers 503.
    pub queue_capacity: usize,
}

impl Default for BatcherConfig {
    fn default() -> Self {
        Self { max_batch_points: 64, max_delay: Duration::from_millis(2), queue_capacity: 128 }
    }
}

/// Lifetime counters of the coalescer, surfaced by `/metrics`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CoalescerStats {
    /// Evaluate requests that entered the coalescer.
    pub requests: u64,
    /// `evaluate_batch` submissions made on their behalf.
    pub batches: u64,
    /// Design points carried by those submissions.
    pub points: u64,
}

impl CoalescerStats {
    /// Mean requests amortized per submitted batch (0 when idle).
    pub fn amortization(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.requests as f64 / self.batches as f64
        }
    }
}

/// The owned low-fidelity cost model behind the service (the borrowing
/// `dse_mfrl::LfEvaluator` adapter cannot live in long-lived state).
#[derive(Debug)]
pub(crate) struct LfCostModel(pub AnalyticalLf);

impl CpiModel for LfCostModel {
    fn fidelity(&self) -> Fidelity {
        Fidelity::Low
    }

    fn evaluations(&mut self, space: &DesignSpace, points: &[DesignPoint]) -> Vec<Evaluation> {
        Evaluation::batch(self.0.cpi_batch(space, points), Fidelity::Low)
    }

    fn cost_per_eval(&self) -> f64 {
        LowFidelity::cost_per_eval(&self.0)
    }
}

/// One registered ingested workload's private evaluation stack.
///
/// Each upload gets its own LF model (built from the *ingested*
/// profile), its own HF simulator (replaying the *ingested* trace) and
/// its own ledger, so synthetic-benchmark accounting and memoization
/// never mix with real-binary results. The learned tier and the auto
/// router stay synthetic-only: they are trained on the server's
/// template workload, and answering a different binary from that
/// training set would silently misroute — ingested workloads therefore
/// only accept the `"lf"` and `"hf"` tiers (enforced at parse time).
#[derive(Debug)]
pub(crate) struct IngestedCore {
    /// The registered workload id.
    pub name: String,
    /// The characterized profile (kept for `/v1/explore` jobs).
    pub profile: dse_workloads::WorkloadProfile,
    /// The full dynamic trace (kept for `/v1/explore` jobs).
    pub trace: Arc<dse_workloads::Trace>,
    pub hf: SimulatorHf,
    pub lf: LfCostModel,
    /// Per-workload ledger: replay/charge accounting scoped to this
    /// binary alone.
    pub ledger: CostLedger,
}

/// The shared evaluation stack: the full fidelity tier stack (analytical
/// LF, the server-lifetime learned tier, the simulator) plus the
/// server-lifetime ledger, locked as one unit so ledger state, evaluator
/// memos and the learned tier's training set can never drift apart.
/// Ingested workloads ride in the same lock with their own
/// [`IngestedCore`] stacks.
#[derive(Debug)]
pub(crate) struct EvalCore {
    pub space: DesignSpace,
    pub hf: SimulatorHf,
    pub lf: LfCostModel,
    /// The online mid tier, trained from every HF charge the ledger
    /// commits through this core.
    pub learned: LearnedTier,
    /// Gate for `"auto"` routing.
    pub gate: TierGate,
    pub ledger: CostLedger,
    /// Uploaded workloads, in registration order; an [`EvalJob`]'s
    /// `workload` index points into this list.
    pub ingested: Vec<IngestedCore>,
}

impl EvalCore {
    /// Routes one batch to the evaluator of the *requested* tier through
    /// the ledger.
    fn evaluate(&mut self, fidelity: Fidelity, points: &[DesignPoint]) -> Vec<LedgerEntry> {
        if fidelity == Fidelity::Low {
            return self.ledger.evaluate_batch(&mut self.lf, &self.space, points);
        }
        if fidelity == Fidelity::Learned {
            // Fold any pending HF observations in before answering.
            self.learned.refit();
            return self.ledger.evaluate_batch(&mut self.learned, &self.space, points);
        }
        let entries = self.ledger.evaluate_batch(&mut self.hf, &self.space, points);
        // Window-boundary training: fresh simulator charges become
        // learned-tier observations (deferred to the next refit).
        for (point, entry) in points.iter().zip(&entries) {
            if let LedgerEntry::Charged(ev) = entry {
                self.learned.observe(&self.space, point, ev.cpi);
            }
        }
        entries
    }

    /// Routes one batch through the uncertainty gate: each point is
    /// answered at the cheapest tier whose conformal bound clears the
    /// gate, escalating to the simulator otherwise. Returns the entries
    /// plus the tier that answered each point.
    fn evaluate_auto(&mut self, points: &[DesignPoint]) -> (Vec<LedgerEntry>, Vec<Fidelity>) {
        TieredEvaluator::new(&mut self.learned, &mut self.hf, self.gate).evaluate_batch_routed(
            &mut self.ledger,
            &self.space,
            points,
        )
    }

    /// Routes one batch to a registered ingested workload's private
    /// stack. Only the analytical LF and the trace-replaying HF exist
    /// there — the learned/auto tiers are synthetic-only (see
    /// [`IngestedCore`]) and requests naming them are rejected before
    /// they can reach the queue.
    fn evaluate_ingested(
        &mut self,
        workload: usize,
        fidelity: Fidelity,
        points: &[DesignPoint],
    ) -> Vec<LedgerEntry> {
        let w = &mut self.ingested[workload];
        if fidelity == Fidelity::Low {
            w.ledger.evaluate_batch(&mut w.lf, &self.space, points)
        } else if fidelity == Fidelity::High {
            w.ledger.evaluate_batch(&mut w.hf, &self.space, points)
        } else {
            unreachable!("learned tier requests on ingested workloads are rejected at parse")
        }
    }
}

/// What tier an evaluate request asked for: a fixed tier by name, or
/// `"auto"` — let the gate route each point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum TierRequest {
    Fixed(Fidelity),
    Auto,
}

/// Phase durations the coalescer measured for one job, handed back
/// through its [`ReplyFn`] so the request timeline can be completed.
#[derive(Debug, Default, Clone, Copy)]
pub(crate) struct EvalTiming {
    /// Enqueue → this job's window opening (queueing behind earlier
    /// windows), µs.
    pub queue_us: u64,
    /// Window opening → this job's batch starting to execute (the
    /// coalescer's gather delay, plus earlier groups in the window), µs.
    pub coalesce_us: u64,
    /// The ledger batch execution this job rode, µs (shared by every
    /// member of the batch — the batch ran once for all of them).
    pub exec_us: u64,
}

/// How a finished evaluation gets back to whoever is waiting: the
/// reactor posts a completion (and wakes its poller), tests hand in a
/// plain channel sender. Either way it is a one-shot callback.
pub(crate) type ReplyFn = Box<dyn FnOnce(Vec<(LedgerEntry, Fidelity)>, EvalTiming) + Send>;

/// One evaluate request, queued for the coalescer.
pub(crate) struct EvalJob {
    pub tier: TierRequest,
    /// `None` evaluates the server's synthetic template workload;
    /// `Some(i)` evaluates registered ingested workload `i`.
    pub workload: Option<usize>,
    pub points: Vec<DesignPoint>,
    /// When the job entered the queue; the coalescer observes the queue
    /// wait (enqueue → window submit) per request.
    pub enqueued_at: Instant,
    /// The request's trace id, when it has one — batch span links.
    pub trace: Option<String>,
    /// Rendezvous back to the parked connection; each entry carries the
    /// tier that actually answered it.
    pub reply: ReplyFn,
}

/// The coalescer thread body: gather → submit → reply, until every
/// sender is gone and the queue is drained (graceful shutdown therefore
/// finishes all accepted work).
pub(crate) fn run_coalescer(
    rx: Receiver<EvalJob>,
    core: Arc<Mutex<EvalCore>>,
    stats: Arc<Mutex<CoalescerStats>>,
    config: BatcherConfig,
    batch_points: dse_obs::Histogram,
    queue_wait: dse_obs::Histogram,
) {
    loop {
        // Block until a window opens; a disconnect here means every
        // worker is gone and the queue is empty — time to exit.
        let first = match rx.recv() {
            Ok(job) => job,
            Err(_) => return,
        };
        let window_opened = Instant::now();
        let mut window = vec![first];
        let mut gathered = window[0].points.len();
        let deadline = window_opened + config.max_delay;
        while gathered < config.max_batch_points {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            match rx.recv_timeout(deadline - now) {
                Ok(job) => {
                    gathered += job.points.len();
                    window.push(job);
                }
                Err(RecvTimeoutError::Timeout) | Err(RecvTimeoutError::Disconnected) => break,
            }
        }
        submit_window(window, window_opened, &core, &stats, &batch_points, &queue_wait);
    }
}

/// Submits one gathered window: one ledger batch per (tier, workload)
/// group present — the fixed tiers and the `"auto"` group of the
/// synthetic template workload first, then each ingested workload in
/// registration order — results split back to each waiting request in
/// arrival order.
fn submit_window(
    window: Vec<EvalJob>,
    window_opened: Instant,
    core: &Mutex<EvalCore>,
    stats: &Mutex<CoalescerStats>,
    batch_points: &dse_obs::Histogram,
    queue_wait: &dse_obs::Histogram,
) {
    let jobs = window;
    let now = Instant::now();
    for job in &jobs {
        queue_wait.observe_duration(now.saturating_duration_since(job.enqueued_at));
    }
    let mut jobs = jobs;
    let tier_rank = |tier: TierRequest| match tier {
        TierRequest::Fixed(f) => Fidelity::STACK.iter().position(|&s| s == f).unwrap_or(0),
        TierRequest::Auto => Fidelity::STACK.len(),
    };
    let mut groups: Vec<(Option<usize>, TierRequest)> =
        jobs.iter().map(|j| (j.workload, j.tier)).collect();
    groups.sort_by_key(|&(workload, tier)| (workload.map_or(0, |i| i + 1), tier_rank(tier)));
    groups.dedup();
    // Account the window before any reply leaves: a client that reads
    // `/metrics` right after its response must see itself counted.
    {
        let mut stats = stats.lock().expect("coalescer stats poisoned");
        stats.requests += jobs.len() as u64;
        stats.batches += groups.len() as u64;
        stats.points += jobs.iter().map(|j| j.points.len() as u64).sum::<u64>();
    }
    for (workload, tier) in groups {
        let group: Vec<usize> = (0..jobs.len())
            .filter(|&i| jobs[i].tier == tier && jobs[i].workload == workload)
            .collect();
        let merged: Vec<DesignPoint> =
            group.iter().flat_map(|&i| jobs[i].points.iter().cloned()).collect();
        batch_points.observe(merged.len() as f64);
        if trace::enabled() {
            // Hand the member request ids to the exec layer: the
            // `ledger_batch` event this group produces carries span
            // links back to every request that rode the batch.
            let links: Vec<String> = group.iter().filter_map(|&i| jobs[i].trace.clone()).collect();
            if !links.is_empty() {
                trace::set_batch_links(links);
            }
        }
        let exec_start = Instant::now();
        let answered: Vec<(LedgerEntry, Fidelity)> = {
            let mut core = core.lock().expect("evaluation core poisoned");
            match (workload, tier) {
                (None, TierRequest::Fixed(fidelity)) => core
                    .evaluate(fidelity, &merged)
                    .into_iter()
                    .map(|entry| (entry, fidelity))
                    .collect(),
                (None, TierRequest::Auto) => {
                    let (entries, routes) = core.evaluate_auto(&merged);
                    entries.into_iter().zip(routes).collect()
                }
                (Some(idx), TierRequest::Fixed(fidelity)) => core
                    .evaluate_ingested(idx, fidelity, &merged)
                    .into_iter()
                    .map(|entry| (entry, fidelity))
                    .collect(),
                (Some(_), TierRequest::Auto) => {
                    unreachable!("auto routing on ingested workloads is rejected at parse")
                }
            }
        };
        // Drain any links the exec layer did not consume (tracing may
        // have been toggled mid-window) so they cannot leak into the
        // next group's batch event.
        let _ = trace::take_batch_links();
        let exec_us = exec_start.elapsed().as_micros() as u64;
        let mut cursor = 0usize;
        for &i in &group {
            let take = jobs[i].points.len();
            let slice = answered[cursor..cursor + take].to_vec();
            cursor += take;
            let enqueued = jobs[i].enqueued_at;
            let timing = EvalTiming {
                queue_us: window_opened.saturating_duration_since(enqueued).as_micros() as u64,
                coalesce_us: exec_start
                    .saturating_duration_since(window_opened.max(enqueued))
                    .as_micros() as u64,
                exec_us,
            };
            // Each job sits in exactly one group, so its one-shot reply
            // is consumed exactly once. If the connection died in the
            // meantime the completion is simply dropped on the reactor
            // floor — the evaluation is already accounted.
            let reply: ReplyFn = std::mem::replace(&mut jobs[i].reply, Box::new(|_, _| {}));
            reply(slice, timing);
        }
    }
}
