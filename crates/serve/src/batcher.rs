//! The cross-request micro-batcher.
//!
//! Concurrent `/v1/evaluate` requests do not each pay for their own
//! trip through the evaluation stack. Connection workers enqueue an
//! [`EvalJob`] per request and block on its reply; a single coalescer
//! thread gathers jobs up to a points budget ([`max_batch_points`]) or
//! a delay window ([`max_delay`]), then submits **one**
//! [`CostLedger::evaluate_batch`] per fidelity present in the window.
//! The batch inherits `exec::par_map` parallelism inside the simulator
//! while the ledger keeps the accounting counter-exact with a
//! sequential walk, so coalescing changes throughput — never results.
//!
//! [`max_batch_points`]: BatcherConfig::max_batch_points
//! [`max_delay`]: BatcherConfig::max_delay
//! [`CostLedger::evaluate_batch`]: dse_exec::CostLedger::evaluate_batch

use std::sync::mpsc::{Receiver, RecvTimeoutError, SyncSender};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use archdse::eval::{AnalyticalLf, SimulatorHf};
use dse_exec::{CostLedger, Evaluation, Evaluator, Fidelity, LedgerEntry};
use dse_mfrl::LowFidelity;
use dse_space::{DesignPoint, DesignSpace};
use serde::{Deserialize, Serialize};

/// Coalescing policy of the micro-batcher.
#[derive(Debug, Clone, Copy)]
pub struct BatcherConfig {
    /// Most design points gathered into one submitted batch.
    pub max_batch_points: usize,
    /// Longest a request waits for companions before the window closes.
    pub max_delay: Duration,
    /// Pending-request capacity; a full queue answers 503.
    pub queue_capacity: usize,
}

impl Default for BatcherConfig {
    fn default() -> Self {
        Self { max_batch_points: 64, max_delay: Duration::from_millis(2), queue_capacity: 128 }
    }
}

/// Lifetime counters of the coalescer, surfaced by `/metrics`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CoalescerStats {
    /// Evaluate requests that entered the coalescer.
    pub requests: u64,
    /// `evaluate_batch` submissions made on their behalf.
    pub batches: u64,
    /// Design points carried by those submissions.
    pub points: u64,
}

impl CoalescerStats {
    /// Mean requests amortized per submitted batch (0 when idle).
    pub fn amortization(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.requests as f64 / self.batches as f64
        }
    }
}

/// The owned low-fidelity cost model behind the service (the borrowing
/// `dse_mfrl::LfEvaluator` adapter cannot live in long-lived state).
#[derive(Debug)]
pub(crate) struct LfCostModel(pub AnalyticalLf);

impl Evaluator for LfCostModel {
    fn fidelity(&self) -> Fidelity {
        Fidelity::Low
    }

    fn evaluate_batch(&mut self, space: &DesignSpace, points: &[DesignPoint]) -> Vec<Evaluation> {
        self.0
            .cpi_batch(space, points)
            .into_iter()
            .map(|cpi| Evaluation::new(cpi, Fidelity::Low))
            .collect()
    }

    fn cost_per_eval(&self) -> f64 {
        LowFidelity::cost_per_eval(&self.0)
    }
}

/// The shared evaluation stack: both cost models and the server-lifetime
/// ledger, locked as one unit so ledger state and evaluator memos can
/// never drift apart.
#[derive(Debug)]
pub(crate) struct EvalCore {
    pub space: DesignSpace,
    pub hf: SimulatorHf,
    pub lf: LfCostModel,
    pub ledger: CostLedger,
}

impl EvalCore {
    /// Routes one batch to the evaluator of `fidelity` through the
    /// ledger.
    fn evaluate(&mut self, fidelity: Fidelity, points: &[DesignPoint]) -> Vec<LedgerEntry> {
        match fidelity {
            Fidelity::High => self.ledger.evaluate_batch(&mut self.hf, &self.space, points),
            Fidelity::Low => self.ledger.evaluate_batch(&mut self.lf, &self.space, points),
        }
    }
}

/// One evaluate request, queued for the coalescer.
pub(crate) struct EvalJob {
    pub fidelity: Fidelity,
    pub points: Vec<DesignPoint>,
    /// Rendezvous back to the connection worker holding the socket.
    pub reply: SyncSender<Vec<LedgerEntry>>,
}

/// The coalescer thread body: gather → submit → reply, until every
/// sender is gone and the queue is drained (graceful shutdown therefore
/// finishes all accepted work).
pub(crate) fn run_coalescer(
    rx: Receiver<EvalJob>,
    core: Arc<Mutex<EvalCore>>,
    stats: Arc<Mutex<CoalescerStats>>,
    config: BatcherConfig,
    batch_points: dse_obs::Histogram,
) {
    loop {
        // Block until a window opens; a disconnect here means every
        // worker is gone and the queue is empty — time to exit.
        let first = match rx.recv() {
            Ok(job) => job,
            Err(_) => return,
        };
        let mut window = vec![first];
        let mut gathered = window[0].points.len();
        let deadline = Instant::now() + config.max_delay;
        while gathered < config.max_batch_points {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            match rx.recv_timeout(deadline - now) {
                Ok(job) => {
                    gathered += job.points.len();
                    window.push(job);
                }
                Err(RecvTimeoutError::Timeout) | Err(RecvTimeoutError::Disconnected) => break,
            }
        }
        submit_window(window, &core, &stats, &batch_points);
    }
}

/// Submits one gathered window: one ledger batch per fidelity present,
/// results split back to each waiting request in arrival order.
fn submit_window(
    window: Vec<EvalJob>,
    core: &Mutex<EvalCore>,
    stats: &Mutex<CoalescerStats>,
    batch_points: &dse_obs::Histogram,
) {
    let jobs = window;
    // Account the window before any reply leaves: a client that reads
    // `/metrics` right after its response must see itself counted.
    {
        let mut stats = stats.lock().expect("coalescer stats poisoned");
        stats.requests += jobs.len() as u64;
        for fidelity in [Fidelity::Low, Fidelity::High] {
            if jobs.iter().any(|j| j.fidelity == fidelity) {
                stats.batches += 1;
            }
        }
        stats.points += jobs.iter().map(|j| j.points.len() as u64).sum::<u64>();
    }
    for fidelity in [Fidelity::Low, Fidelity::High] {
        let group: Vec<usize> = (0..jobs.len()).filter(|&i| jobs[i].fidelity == fidelity).collect();
        if group.is_empty() {
            continue;
        }
        let merged: Vec<DesignPoint> =
            group.iter().flat_map(|&i| jobs[i].points.iter().cloned()).collect();
        batch_points.observe(merged.len() as f64);
        let entries = {
            let mut core = core.lock().expect("evaluation core poisoned");
            core.evaluate(fidelity, &merged)
        };
        let mut cursor = 0usize;
        for &i in &group {
            let take = jobs[i].points.len();
            let slice = entries[cursor..cursor + take].to_vec();
            cursor += take;
            // A dropped receiver means the worker gave up (socket
            // died); the evaluation is already accounted — ignore it.
            let _ = jobs[i].reply.send(slice);
        }
    }
}
