//! End-to-end service tests over real sockets: every endpoint, the
//! error paths, and graceful shutdown draining.

use std::time::Duration;

use archdse::Explorer;
use archdse_serve::{client, spawn, EvaluateResponse, ExplainResponse, ServeConfig};
use dse_workloads::Benchmark;
use serde_json::Value;

fn quick_config() -> ServeConfig {
    let explorer =
        Explorer::for_benchmark(Benchmark::StringSearch).trace_len(2_000).seed(7).threads(2);
    let mut config = ServeConfig::new(explorer);
    config.workers = 3;
    config.max_body_bytes = 16 * 1024;
    config
}

#[test]
fn the_four_core_endpoints_answer() {
    let server = spawn(quick_config()).expect("bind");
    let addr = server.addr().to_string();

    // /healthz
    let health = client::get(&addr, "/healthz").unwrap();
    assert_eq!(health.status, 200);
    let health: Value = serde_json::from_str(&health.body).unwrap();
    assert_eq!(health.get("status").and_then(Value::as_str), Some("ok"));
    let space_size = health.get("space_size").and_then(Value::as_u64).unwrap();
    assert!(space_size > 1_000_000);

    // /v1/evaluate at LF, then the same points again: answers must be
    // identical and the repeats served from the ledger replay.
    let body = r#"{"points": [0, 12345, 0], "fidelity": "lf"}"#;
    let first = client::post(&addr, "/v1/evaluate", body).unwrap();
    assert_eq!(first.status, 200, "{}", first.body);
    let first: EvaluateResponse = serde_json::from_str(&first.body).unwrap();
    assert_eq!(first.results.len(), 3);
    assert_eq!(first.results[0].point, 0);
    assert!(first.results.iter().all(|r| r.cpi > 0.0 && r.fidelity == "LF"));
    assert_eq!(first.results[0].cpi, first.results[2].cpi, "duplicate point, same CPI");
    let again: EvaluateResponse =
        serde_json::from_str(&client::post(&addr, "/v1/evaluate", body).unwrap().body).unwrap();
    assert_eq!(again.results[1].cpi, first.results[1].cpi);
    assert!(again.results.iter().all(|r| r.cached), "second pass replays from the ledger");

    // /v1/evaluate at HF carries provenance and constraint stamps.
    let hf = client::post(&addr, "/v1/evaluate", r#"{"points": [7], "fidelity": "hf"}"#).unwrap();
    assert_eq!(hf.status, 200, "{}", hf.body);
    let hf: EvaluateResponse = serde_json::from_str(&hf.body).unwrap();
    assert_eq!(hf.results[0].fidelity, "HF");
    assert!(hf.results[0].area_mm2 > 0.0 && hf.results[0].leakage_mw > 0.0);

    // /v1/explain decomposes a decision into rule contributions.
    let explain = client::post(&addr, "/v1/explain", r#"{"point": 12345, "k": 4}"#).unwrap();
    assert_eq!(explain.status, 200, "{}", explain.body);
    let explain: ExplainResponse = serde_json::from_str(&explain.body).unwrap();
    assert_eq!(explain.point, 12345);
    assert!(explain.cpi > 0.0);
    assert!(!explain.explanation.contributions.is_empty());
    assert!(!explain.design.is_empty());

    // /metrics reflects all of the above.
    let metrics = client::get(&addr, "/metrics").unwrap();
    assert_eq!(metrics.status, 200);
    let metrics: archdse_serve::MetricsResponse = serde_json::from_str(&metrics.body).unwrap();
    assert_eq!(metrics.requests.healthz, 1);
    assert_eq!(metrics.requests.evaluate, 3);
    assert_eq!(metrics.requests.explain, 1);
    assert!(metrics.coalescer.requests >= 3);
    assert!(metrics.ledger.low.evaluations >= 2);
    assert_eq!(metrics.ledger.high.evaluations, 1);
    assert!(metrics.hf_cache.entries >= 1);

    server.shutdown();
    server.join();
    assert!(client::get(&addr, "/healthz").is_err(), "server must be gone after join");
}

#[test]
fn error_paths_answer_structured_json() {
    let server = spawn(quick_config()).expect("bind");
    let addr = server.addr().to_string();

    let cases = [
        ("POST", "/v1/evaluate", Some("not json"), 400),
        ("POST", "/v1/evaluate", Some(r#"{"points": []}"#), 400),
        ("POST", "/v1/evaluate", Some(r#"{"points": [99999999999999]}"#), 400),
        ("POST", "/v1/evaluate", Some(r#"{"points": [1], "fidelity": "mid"}"#), 400),
        ("POST", "/v1/explain", Some(r#"{"k": 3}"#), 400),
        ("POST", "/v1/explain", Some(r#"{"point": 1, "output": "nosuch"}"#), 400),
        ("POST", "/v1/explore", Some(r#"{"general": true, "benchmark": "mm"}"#), 400),
        ("GET", "/nope", None, 404),
        ("GET", "/v1/jobs/999", None, 404),
        ("GET", "/v1/jobs/xyz", None, 400),
        ("DELETE", "/v1/evaluate", None, 405),
    ];
    for (method, path, body, expected) in cases {
        let response = client::request(&addr, method, path, body).unwrap();
        assert_eq!(response.status, expected, "{method} {path}: {}", response.body);
        let parsed: Value = serde_json::from_str(&response.body).expect("errors are JSON");
        assert!(parsed.get("error").is_some(), "{method} {path} lacks an error field");
    }

    // An oversize body is rejected with 413 before any parsing.
    let huge = format!(r#"{{"points": [{}]}}"#, "1,".repeat(20_000) + "1");
    let response = client::post(&addr, "/v1/evaluate", &huge).unwrap();
    assert_eq!(response.status, 413, "{}", response.body);

    server.shutdown();
    server.join();
}

#[test]
fn explore_jobs_run_in_the_background_and_complete() {
    let server = spawn(quick_config()).expect("bind");
    let addr = server.addr().to_string();

    let spec =
        r#"{"benchmark": "ss", "lf_episodes": 10, "hf_budget": 2, "trace_len": 500, "seed": 3}"#;
    let started = client::post(&addr, "/v1/explore", spec).unwrap();
    assert_eq!(started.status, 200, "{}", started.body);
    let started: archdse_serve::JobStatus = serde_json::from_str(&started.body).unwrap();
    assert_eq!(started.state, "running");

    let path = format!("/v1/jobs/{}", started.job);
    let mut last = String::new();
    for _ in 0..600 {
        let polled = client::get(&addr, &path).unwrap();
        assert_eq!(polled.status, 200);
        let status: archdse_serve::JobStatus = serde_json::from_str(&polled.body).unwrap();
        last = status.state.clone();
        if status.state == "done" {
            let result = status.result.expect("done jobs carry a result");
            assert!(result.best_cpi > 0.0);
            assert!(result.hf_evaluations <= 2);
            assert!(!result.best_design.is_empty());
            assert!(result.ledger.high.evaluations <= 2);
            server.shutdown();
            server.join();
            return;
        }
        assert_ne!(status.state, "failed", "job failed: {:?}", status.error);
        std::thread::sleep(Duration::from_millis(100));
    }
    panic!("job never finished (last state {last:?})");
}

#[test]
fn prometheus_exposition_is_valid_and_agrees_with_json() {
    let server = spawn(quick_config()).expect("bind");
    let addr = server.addr().to_string();

    client::get(&addr, "/healthz").unwrap();
    let body = r#"{"points": [0, 42], "fidelity": "lf"}"#;
    assert_eq!(client::post(&addr, "/v1/evaluate", body).unwrap().status, 200);

    // The text form must satisfy the Prometheus grammar and histogram
    // invariants (checked by the in-repo promtool-style validator).
    let prom = client::get(&addr, "/metrics?format=prometheus").unwrap();
    assert_eq!(prom.status, 200);
    let summary = dse_obs::check_text(&prom.body)
        .unwrap_or_else(|errors| panic!("invalid exposition: {errors:?}"));
    assert!(summary.samples > 0);
    assert!(summary.histograms >= 1, "request latency histograms must be exposed");

    // Read-your-own-request consistency: the JSON snapshot (taken after
    // the text one) must agree with what the text form already showed.
    let metrics = client::get(&addr, "/metrics").unwrap();
    assert_eq!(metrics.status, 200);
    let metrics: archdse_serve::MetricsResponse = serde_json::from_str(&metrics.body).unwrap();
    assert_eq!(metrics.requests.healthz, 1);
    assert_eq!(metrics.requests.evaluate, 1);
    assert_eq!(metrics.requests.metrics, 2, "both /metrics hits are counted");
    let healthz_line = prom
        .body
        .lines()
        .find(|l| l.starts_with("serve_requests_total{endpoint=\"healthz\"}"))
        .expect("healthz counter series");
    assert!(healthz_line.ends_with(" 1"), "unexpected sample: {healthz_line}");

    // An unknown format is a client error, not a silent default.
    let bad = client::get(&addr, "/metrics?format=xml").unwrap();
    assert_eq!(bad.status, 400);

    server.shutdown();
    server.join();
}

#[test]
fn post_shutdown_drains_and_exits() {
    let server = spawn(quick_config()).expect("bind");
    let addr = server.addr().to_string();
    let response = client::post(&addr, "/v1/shutdown", "").unwrap();
    assert_eq!(response.status, 200);
    server.join();
    assert!(client::get(&addr, "/healthz").is_err());
}
