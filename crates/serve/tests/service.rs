//! End-to-end service tests over real sockets: every endpoint, the
//! error paths, and graceful shutdown draining.

use std::time::Duration;

use archdse::Explorer;
use archdse_serve::{client, spawn, EvaluateResponse, ExplainResponse, ServeConfig};
use dse_workloads::Benchmark;
use serde_json::Value;

fn quick_config() -> ServeConfig {
    let explorer =
        Explorer::for_benchmark(Benchmark::StringSearch).trace_len(2_000).seed(7).threads(2);
    let mut config = ServeConfig::new(explorer);
    config.workers = 3;
    config.max_body_bytes = 16 * 1024;
    config
}

#[test]
fn the_four_core_endpoints_answer() {
    let server = spawn(quick_config()).expect("bind");
    let addr = server.addr().to_string();

    // /healthz
    let health = client::get(&addr, "/healthz").unwrap();
    assert_eq!(health.status, 200);
    let health: Value = serde_json::from_str(&health.body).unwrap();
    assert_eq!(health.get("status").and_then(Value::as_str), Some("ok"));
    let space_size = health.get("space_size").and_then(Value::as_u64).unwrap();
    assert!(space_size > 1_000_000);

    // /v1/evaluate at LF, then the same points again: answers must be
    // identical and the repeats served from the ledger replay.
    let body = r#"{"points": [0, 12345, 0], "fidelity": "lf"}"#;
    let first = client::post(&addr, "/v1/evaluate", body).unwrap();
    assert_eq!(first.status, 200, "{}", first.body);
    let first: EvaluateResponse = serde_json::from_str(&first.body).unwrap();
    assert_eq!(first.results.len(), 3);
    assert_eq!(first.results[0].point, 0);
    assert!(first.results.iter().all(|r| r.cpi > 0.0 && r.fidelity == "LF"));
    assert_eq!(first.results[0].cpi, first.results[2].cpi, "duplicate point, same CPI");
    let again: EvaluateResponse =
        serde_json::from_str(&client::post(&addr, "/v1/evaluate", body).unwrap().body).unwrap();
    assert_eq!(again.results[1].cpi, first.results[1].cpi);
    assert!(again.results.iter().all(|r| r.cached), "second pass replays from the ledger");

    // /v1/evaluate at HF carries provenance and constraint stamps.
    let hf = client::post(&addr, "/v1/evaluate", r#"{"points": [7], "fidelity": "hf"}"#).unwrap();
    assert_eq!(hf.status, 200, "{}", hf.body);
    let hf: EvaluateResponse = serde_json::from_str(&hf.body).unwrap();
    assert_eq!(hf.results[0].fidelity, "HF");
    assert!(hf.results[0].area_mm2 > 0.0 && hf.results[0].leakage_mw > 0.0);

    // /v1/explain decomposes a decision into rule contributions.
    let explain = client::post(&addr, "/v1/explain", r#"{"point": 12345, "k": 4}"#).unwrap();
    assert_eq!(explain.status, 200, "{}", explain.body);
    let explain: ExplainResponse = serde_json::from_str(&explain.body).unwrap();
    assert_eq!(explain.point, 12345);
    assert!(explain.cpi > 0.0);
    assert!(!explain.explanation.contributions.is_empty());
    assert!(!explain.design.is_empty());

    // /metrics reflects all of the above.
    let metrics = client::get(&addr, "/metrics").unwrap();
    assert_eq!(metrics.status, 200);
    let metrics: archdse_serve::MetricsResponse = serde_json::from_str(&metrics.body).unwrap();
    assert_eq!(metrics.requests.healthz, 1);
    assert_eq!(metrics.requests.evaluate, 3);
    assert_eq!(metrics.requests.explain, 1);
    assert!(metrics.coalescer.requests >= 3);
    assert!(metrics.ledger.low.evaluations >= 2);
    assert_eq!(metrics.ledger.high.evaluations, 1);
    assert!(metrics.hf_cache.entries >= 1);

    server.shutdown();
    server.join();
    assert!(client::get(&addr, "/healthz").is_err(), "server must be gone after join");
}

#[test]
fn error_paths_answer_structured_json() {
    let server = spawn(quick_config()).expect("bind");
    let addr = server.addr().to_string();

    let cases = [
        ("POST", "/v1/evaluate", Some("not json"), 400),
        ("POST", "/v1/evaluate", Some(r#"{"points": []}"#), 400),
        ("POST", "/v1/evaluate", Some(r#"{"points": [99999999999999]}"#), 400),
        ("POST", "/v1/evaluate", Some(r#"{"points": [1], "fidelity": "mid"}"#), 400),
        ("POST", "/v1/explain", Some(r#"{"k": 3}"#), 400),
        ("POST", "/v1/explain", Some(r#"{"point": 1, "output": "nosuch"}"#), 400),
        ("POST", "/v1/explore", Some(r#"{"general": true, "benchmark": "mm"}"#), 400),
        ("GET", "/nope", None, 404),
        ("GET", "/v1/jobs/999", None, 404),
        ("GET", "/v1/jobs/xyz", None, 400),
        ("DELETE", "/v1/evaluate", None, 405),
    ];
    for (method, path, body, expected) in cases {
        let response = client::request(&addr, method, path, body).unwrap();
        assert_eq!(response.status, expected, "{method} {path}: {}", response.body);
        let parsed: Value = serde_json::from_str(&response.body).expect("errors are JSON");
        assert!(parsed.get("error").is_some(), "{method} {path} lacks an error field");
    }

    // An oversize body is rejected with 413 before any parsing.
    let huge = format!(r#"{{"points": [{}]}}"#, "1,".repeat(20_000) + "1");
    let response = client::post(&addr, "/v1/evaluate", &huge).unwrap();
    assert_eq!(response.status, 413, "{}", response.body);

    server.shutdown();
    server.join();
}

#[test]
fn explore_jobs_run_in_the_background_and_complete() {
    let server = spawn(quick_config()).expect("bind");
    let addr = server.addr().to_string();

    let spec =
        r#"{"benchmark": "ss", "lf_episodes": 10, "hf_budget": 2, "trace_len": 500, "seed": 3}"#;
    let started = client::post(&addr, "/v1/explore", spec).unwrap();
    assert_eq!(started.status, 200, "{}", started.body);
    let started: archdse_serve::JobStatus = serde_json::from_str(&started.body).unwrap();
    assert_eq!(started.state, "running");

    let path = format!("/v1/jobs/{}", started.job);
    let mut last = String::new();
    for _ in 0..600 {
        let polled = client::get(&addr, &path).unwrap();
        assert_eq!(polled.status, 200);
        let status: archdse_serve::JobStatus = serde_json::from_str(&polled.body).unwrap();
        last = status.state.clone();
        if status.state == "done" {
            let result = status.result.expect("done jobs carry a result");
            assert!(result.best_cpi > 0.0);
            assert!(result.hf_evaluations <= 2);
            assert!(!result.best_design.is_empty());
            assert!(result.ledger.high.evaluations <= 2);
            server.shutdown();
            server.join();
            return;
        }
        assert_ne!(status.state, "failed", "job failed: {:?}", status.error);
        std::thread::sleep(Duration::from_millis(100));
    }
    panic!("job never finished (last state {last:?})");
}

#[test]
fn prometheus_exposition_is_valid_and_agrees_with_json() {
    let server = spawn(quick_config()).expect("bind");
    let addr = server.addr().to_string();

    client::get(&addr, "/healthz").unwrap();
    let body = r#"{"points": [0, 42], "fidelity": "lf"}"#;
    assert_eq!(client::post(&addr, "/v1/evaluate", body).unwrap().status, 200);

    // The text form must satisfy the Prometheus grammar and histogram
    // invariants (checked by the in-repo promtool-style validator).
    let prom = client::get(&addr, "/metrics?format=prometheus").unwrap();
    assert_eq!(prom.status, 200);
    let summary = dse_obs::check_text(&prom.body)
        .unwrap_or_else(|errors| panic!("invalid exposition: {errors:?}"));
    assert!(summary.samples > 0);
    assert!(summary.histograms >= 1, "request latency histograms must be exposed");

    // Read-your-own-request consistency: the JSON snapshot (taken after
    // the text one) must agree with what the text form already showed.
    let metrics = client::get(&addr, "/metrics").unwrap();
    assert_eq!(metrics.status, 200);
    let metrics: archdse_serve::MetricsResponse = serde_json::from_str(&metrics.body).unwrap();
    assert_eq!(metrics.requests.healthz, 1);
    assert_eq!(metrics.requests.evaluate, 1);
    assert_eq!(metrics.requests.metrics, 2, "both /metrics hits are counted");
    let healthz_line = prom
        .body
        .lines()
        .find(|l| l.starts_with("serve_requests_total{endpoint=\"healthz\"}"))
        .expect("healthz counter series");
    assert!(healthz_line.ends_with(" 1"), "unexpected sample: {healthz_line}");

    // An unknown format is a client error, not a silent default.
    let bad = client::get(&addr, "/metrics?format=xml").unwrap();
    assert_eq!(bad.status, 400);

    server.shutdown();
    server.join();
}

#[test]
fn post_shutdown_drains_and_exits() {
    let server = spawn(quick_config()).expect("bind");
    let addr = server.addr().to_string();
    let response = client::post(&addr, "/v1/shutdown", "").unwrap();
    assert_eq!(response.status, 200);
    server.join();
    assert!(client::get(&addr, "/healthz").is_err());
}

/// The committed ingest fixture, base64-encoded for upload.
fn fixture_elf_base64(stem: &str) -> String {
    let path = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../ingest/tests/fixtures")
        .join(format!("{stem}.elf"));
    dse_ingest::base64::encode(&std::fs::read(path).expect("fixture elf"))
}

#[test]
fn uploaded_workloads_register_and_answer_lf_and_hf() {
    let server = spawn(quick_config()).expect("bind");
    let addr = server.addr().to_string();

    // Upload the fixture; it is ingested and registered.
    let upload =
        format!(r#"{{"name": "loop-sum", "elf_base64": "{}"}}"#, fixture_elf_base64("loop_sum"));
    let response = client::post(&addr, "/v1/workloads", &upload).unwrap();
    assert_eq!(response.status, 200, "{}", response.body);
    let registered: archdse_serve::WorkloadUploadResponse =
        serde_json::from_str(&response.body).unwrap();
    assert_eq!(registered.workload, "loop-sum");
    assert_eq!(registered.exit_code, 128);
    assert_eq!(registered.instructions, 2823);
    assert_eq!(registered.registered, vec!["loop-sum".to_string()]);

    // The health report now lists it.
    let health: Value =
        serde_json::from_str(&client::get(&addr, "/healthz").unwrap().body).unwrap();
    let listed = health.get("workloads").and_then(Value::as_array).unwrap();
    assert_eq!(listed.len(), 1);

    // Evaluate it at both supported tiers; HF twice replays the second
    // answer from the workload's own ledger.
    for fidelity in ["lf", "hf"] {
        let body =
            format!(r#"{{"points": [0, 777], "fidelity": "{fidelity}", "workload": "loop-sum"}}"#);
        let first = client::post(&addr, "/v1/evaluate", &body).unwrap();
        assert_eq!(first.status, 200, "{}", first.body);
        let first: EvaluateResponse = serde_json::from_str(&first.body).unwrap();
        assert_eq!(first.results.len(), 2);
        assert!(first.results.iter().all(|r| r.cpi > 0.0));
        let again = client::post(&addr, "/v1/evaluate", &body).unwrap();
        let again: EvaluateResponse = serde_json::from_str(&again.body).unwrap();
        assert_eq!(again.results[0].cpi, first.results[0].cpi);
        assert!(again.results.iter().all(|r| r.cached), "repeat must replay");
    }

    // Same design point, synthetic vs ingested: the answers are
    // independent stacks and need not agree, but both are finite CPIs.
    let synth =
        client::post(&addr, "/v1/evaluate", r#"{"points": [777], "fidelity": "hf"}"#).unwrap();
    assert_eq!(synth.status, 200, "{}", synth.body);

    // Re-registering the same name is rejected.
    let dup = client::post(&addr, "/v1/workloads", &upload).unwrap();
    assert_eq!(dup.status, 400, "{}", dup.body);
    assert!(dup.body.contains("already registered"), "{}", dup.body);

    // The registration counter is exposed.
    let prom = client::get(&addr, "/metrics?format=prometheus").unwrap();
    let line = prom
        .body
        .lines()
        .find(|l| l.starts_with("workloads_registered"))
        .expect("workloads_registered series");
    assert!(line.ends_with(" 1"), "unexpected sample: {line}");

    server.shutdown();
    server.join();
}

#[test]
fn unknown_workload_ids_are_a_400_naming_the_registered_ones() {
    let server = spawn(quick_config()).expect("bind");
    let addr = server.addr().to_string();

    // Before anything is registered, the error points at the upload
    // endpoint.
    let body = r#"{"points": [1], "fidelity": "lf", "workload": "nope"}"#;
    let response = client::post(&addr, "/v1/evaluate", body).unwrap();
    assert_eq!(response.status, 400, "{}", response.body);
    assert!(response.body.contains("POST /v1/workloads"), "{}", response.body);

    // With a workload registered, the error names it.
    let upload =
        format!(r#"{{"name": "stride-c", "elf_base64": "{}"}}"#, fixture_elf_base64("stride_c"));
    assert_eq!(client::post(&addr, "/v1/workloads", &upload).unwrap().status, 200);
    let response = client::post(&addr, "/v1/evaluate", body).unwrap();
    assert_eq!(response.status, 400, "{}", response.body);
    assert!(
        response.body.contains("unknown workload \\\"nope\\\"")
            && response.body.contains("stride-c"),
        "{}",
        response.body
    );

    // /v1/explore resolves ids through the same registry.
    let explore = client::post(&addr, "/v1/explore", r#"{"workload": "nope"}"#).unwrap();
    assert_eq!(explore.status, 400, "{}", explore.body);
    assert!(explore.body.contains("stride-c"), "{}", explore.body);

    // Learned/auto tiers on an ingested workload are rejected at parse.
    for tier in ["learned", "auto"] {
        let body = format!(r#"{{"points": [1], "fidelity": "{tier}", "workload": "stride-c"}}"#);
        let response = client::post(&addr, "/v1/evaluate", &body).unwrap();
        assert_eq!(response.status, 400, "{}", response.body);
    }

    // Bad uploads are structured 400s, not panics: junk base64, a
    // non-ELF payload, and a name collision with a benchmark.
    let cases = [
        r#"{"name": "x", "elf_base64": "!!!"}"#.to_string(),
        format!(r#"{{"name": "x", "elf_base64": "{}"}}"#, dse_ingest::base64::encode(b"hello")),
        format!(r#"{{"name": "mm", "elf_base64": "{}"}}"#, fixture_elf_base64("loop_sum")),
    ];
    for body in &cases {
        let response = client::post(&addr, "/v1/workloads", body).unwrap();
        assert_eq!(response.status, 400, "{}", response.body);
        let parsed: Value = serde_json::from_str(&response.body).unwrap();
        assert!(parsed.get("error").is_some());
    }

    server.shutdown();
    server.join();
}

#[test]
fn workload_free_requests_keep_the_legacy_wire_format() {
    // The six synthetic benchmarks and the pre-ingestion request shapes
    // must be answered exactly as before the workloads endpoint landed.
    let server = spawn(quick_config()).expect("bind");
    let addr = server.addr().to_string();

    let health: Value =
        serde_json::from_str(&client::get(&addr, "/healthz").unwrap().body).unwrap();
    let benchmarks = health.get("benchmarks").and_then(Value::as_array).unwrap();
    assert!(!benchmarks.is_empty(), "benchmark list must survive");
    assert_eq!(
        health.get("workloads").and_then(Value::as_array).map(Vec::len),
        Some(0),
        "no workloads registered at boot"
    );

    // A legacy evaluate body (no workload field) answers with the same
    // response schema: every legacy field present, point order kept.
    let body = r#"{"points": [3, 1], "fidelity": "lf"}"#;
    let response = client::post(&addr, "/v1/evaluate", body).unwrap();
    assert_eq!(response.status, 200, "{}", response.body);
    let parsed: Value = serde_json::from_str(&response.body).unwrap();
    let results = parsed.get("results").and_then(Value::as_array).unwrap();
    assert_eq!(results.len(), 2);
    for (row, expected_point) in results.iter().zip([3u64, 1]) {
        for field in ["point", "cpi", "fidelity", "cached", "area_mm2", "leakage_mw", "feasible"] {
            assert!(row.get(field).is_some(), "legacy field {field} missing");
        }
        assert_eq!(row.get("point").and_then(Value::as_u64), Some(expected_point));
    }

    server.shutdown();
    server.join();
}
