//! Regression tests for the hand-rolled HTTP/1.1 framing, driven over
//! raw sockets so malformed and truncated requests — which the [`client`]
//! helpers cannot produce — reach the parser byte-for-byte as written.
//!
//! Each test pins down one front-door bug:
//! * a connection dropped mid-request-line used to be answered
//!   431 "request line too long" instead of being treated as closed;
//! * the header cap used to charge the blank terminator line against the
//!   header budget, rejecting a legal request with exactly 64 headers;
//! * `Content-Length` used to be last-wins on duplicates and accept a
//!   leading `+` (request-smuggling hygiene).

use std::io::{Read, Write};
use std::net::{Shutdown, TcpStream};
use std::time::Duration;

use archdse::Explorer;
use archdse_serve::{spawn, ServeConfig, ServerHandle};
use dse_workloads::Benchmark;

fn quick_server() -> ServerHandle {
    let explorer =
        Explorer::for_benchmark(Benchmark::StringSearch).trace_len(2_000).seed(7).threads(2);
    let mut config = ServeConfig::new(explorer);
    config.workers = 2;
    config.max_body_bytes = 16 * 1024;
    spawn(config).expect("bind")
}

/// Sends `head` (and optionally half-closes the write side), then reads
/// whatever the server answers until EOF.
fn raw_exchange(addr: &str, bytes: &str, half_close: bool) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    stream.set_write_timeout(Some(Duration::from_secs(30))).unwrap();
    stream.write_all(bytes.as_bytes()).expect("send");
    stream.flush().expect("flush");
    if half_close {
        // FIN without closing the read side: the server sees EOF but
        // can still answer if it (wrongly) wants to.
        stream.shutdown(Shutdown::Write).expect("half-close");
    }
    let mut response = String::new();
    let _ = stream.read_to_string(&mut response);
    response
}

fn status_of(response: &str) -> Option<u16> {
    response.strip_prefix("HTTP/1.1 ")?.get(..3)?.parse().ok()
}

#[test]
fn connection_dropped_mid_request_line_gets_no_response() {
    let server = quick_server();
    let addr = server.addr().to_string();

    // A peer that gives up halfway through the request line never sent
    // a request; answering anything (the old 431) is wrong.
    let response = raw_exchange(&addr, "GET /healthz HT", true);
    assert_eq!(response, "", "truncated request line must be treated as closed, not answered");

    // An actually-oversize request line still draws the 431.
    let long = format!("GET /{} HTTP/1.1\r\n\r\n", "x".repeat(9 * 1024));
    let response = raw_exchange(&addr, &long, false);
    assert_eq!(status_of(&response), Some(431), "{response}");

    server.shutdown();
    server.join();
}

#[test]
fn connection_dropped_mid_headers_is_a_bad_request() {
    let server = quick_server();
    let addr = server.addr().to_string();

    // The request line made it through, so there is a request to
    // reject — but as truncated (400), not as oversize (431).
    let response = raw_exchange(&addr, "GET /healthz HTTP/1.1\r\nHost: trun", true);
    assert_eq!(status_of(&response), Some(400), "{response}");
    assert!(response.contains("truncated"), "{response}");

    let response = raw_exchange(&addr, "GET /healthz HTTP/1.1\r\nHost: a\r\n", true);
    assert_eq!(status_of(&response), Some(400), "{response}");

    server.shutdown();
    server.join();
}

#[test]
fn exactly_the_header_cap_is_accepted_and_one_more_is_not() {
    let server = quick_server();
    let addr = server.addr().to_string();

    let with_headers = |n: usize| {
        let mut request = String::from("GET /healthz HTTP/1.1\r\n");
        for i in 0..n {
            request.push_str(&format!("X-Pad-{i}: {i}\r\n"));
        }
        request.push_str("\r\n");
        request
    };

    // MAX_HEADERS is 64; the blank terminator must not count against it.
    let response = raw_exchange(&addr, &with_headers(64), false);
    assert_eq!(status_of(&response), Some(200), "64 headers are legal: {response}");

    let response = raw_exchange(&addr, &with_headers(65), false);
    assert_eq!(status_of(&response), Some(431), "{response}");

    server.shutdown();
    server.join();
}

#[test]
fn content_length_rejects_smuggling_shapes() {
    let server = quick_server();
    let addr = server.addr().to_string();

    let post = |headers: &str, body: &str| {
        let request = format!("POST /v1/explain HTTP/1.1\r\n{headers}\r\n{body}");
        raw_exchange(&addr, &request, false)
    };
    let body = r#"{"point": 0, "k": 2}"#;

    // A leading `+` parses under usize::from_str but is not a valid
    // HTTP Content-Length; another parser in the chain may read 0.
    let response = post(&format!("Content-Length: +{}\r\n", body.len()), body);
    assert_eq!(status_of(&response), Some(400), "{response}");
    assert!(response.contains("bad Content-Length"), "{response}");

    for bad in ["-1", "1e2", " ", "0x10"] {
        let response = post(&format!("Content-Length: {bad}\r\n"), body);
        assert_eq!(status_of(&response), Some(400), "Content-Length {bad:?}: {response}");
    }

    // Mismatched duplicates could frame two different bodies.
    let response = post(&format!("Content-Length: {}\r\nContent-Length: 2\r\n", body.len()), body);
    assert_eq!(status_of(&response), Some(400), "{response}");
    assert!(response.contains("conflicting Content-Length"), "{response}");

    // Duplicates that agree are ugly but unambiguous — RFC 9110 lets a
    // recipient accept them.
    let cl = format!("Content-Length: {0}\r\nContent-Length: {0}\r\n", body.len());
    let response = post(&cl, body);
    assert_eq!(status_of(&response), Some(200), "{response}");

    // And the plain form still works.
    let response = post(&format!("Content-Length: {}\r\n", body.len()), body);
    assert_eq!(status_of(&response), Some(200), "{response}");

    server.shutdown();
    server.join();
}
