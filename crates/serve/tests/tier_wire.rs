//! Wire-compatibility regression tests for the fidelity field of
//! `/v1/evaluate`: the pre-tier-stack names `"lf"` / `"hf"` must keep
//! working exactly as before (request *and* response), the new
//! `"learned"` / `"auto"` names must be accepted, and anything else
//! must come back as a 400 whose message names the valid tiers.

use archdse::Explorer;
use archdse_serve::{client, spawn, EvaluateResponse, ServeConfig};
use dse_workloads::Benchmark;
use serde_json::Value;

fn quick_server() -> archdse_serve::ServerHandle {
    let explorer =
        Explorer::for_benchmark(Benchmark::StringSearch).trace_len(1_500).seed(11).threads(2);
    spawn(ServeConfig::new(explorer)).expect("bind")
}

#[test]
fn legacy_lf_and_hf_names_round_trip_unchanged() {
    let server = quick_server();
    let addr = server.addr().to_string();

    // Old clients send "lf" and read back the label "LF".
    let lf =
        client::post(&addr, "/v1/evaluate", r#"{"points": [3, 99], "fidelity": "lf"}"#).unwrap();
    assert_eq!(lf.status, 200, "{}", lf.body);
    let lf: EvaluateResponse = serde_json::from_str(&lf.body).unwrap();
    assert!(lf.results.iter().all(|r| r.fidelity == "LF"), "{lf:?}");

    // Omitting the field still defaults to HF, and the label is "HF".
    let hf = client::post(&addr, "/v1/evaluate", r#"{"points": [3]}"#).unwrap();
    assert_eq!(hf.status, 200, "{}", hf.body);
    let hf: EvaluateResponse = serde_json::from_str(&hf.body).unwrap();
    assert_eq!(hf.results[0].fidelity, "HF");

    // Explicit "hf" matches the default.
    let explicit =
        client::post(&addr, "/v1/evaluate", r#"{"points": [3], "fidelity": "hf"}"#).unwrap();
    assert_eq!(explicit.status, 200, "{}", explicit.body);
    let explicit: EvaluateResponse = serde_json::from_str(&explicit.body).unwrap();
    assert_eq!(explicit.results[0].fidelity, "HF");
    assert_eq!(explicit.results[0].cpi, hf.results[0].cpi, "same tier, same answer");

    server.shutdown();
}

#[test]
fn learned_and_auto_are_accepted_and_stamp_the_answering_tier() {
    let server = quick_server();
    let addr = server.addr().to_string();

    // The learned tier answers even before any HF observation exists —
    // it falls back to its prior rather than erroring.
    let mid =
        client::post(&addr, "/v1/evaluate", r#"{"points": [5], "fidelity": "learned"}"#).unwrap();
    assert_eq!(mid.status, 200, "{}", mid.body);
    let mid: EvaluateResponse = serde_json::from_str(&mid.body).unwrap();
    assert_eq!(mid.results[0].fidelity, "learned");
    assert!(mid.results[0].cpi > 0.0);

    // "auto" routes through the gate; with an uncalibrated gate every
    // point escalates to HF, so the stamped tier is "HF".
    let auto =
        client::post(&addr, "/v1/evaluate", r#"{"points": [5], "fidelity": "auto"}"#).unwrap();
    assert_eq!(auto.status, 200, "{}", auto.body);
    let auto: EvaluateResponse = serde_json::from_str(&auto.body).unwrap();
    assert_eq!(auto.results.len(), 1);
    assert!(
        auto.results.iter().all(|r| ["LF", "learned", "HF"].contains(&r.fidelity.as_str())),
        "auto must stamp a real tier label: {auto:?}"
    );

    // Tier names are case-insensitive, as "LF"/"HF" always were.
    let upper =
        client::post(&addr, "/v1/evaluate", r#"{"points": [5], "fidelity": "LEARNED"}"#).unwrap();
    assert_eq!(upper.status, 200, "{}", upper.body);

    server.shutdown();
}

#[test]
fn unknown_tier_names_are_a_400_naming_the_valid_ones() {
    let server = quick_server();
    let addr = server.addr().to_string();

    for bad in ["mid", "medium", "lo-fi", "ultra"] {
        let body = format!("{{\"points\": [1], \"fidelity\": {bad:?}}}");
        let resp = client::post(&addr, "/v1/evaluate", &body).unwrap();
        assert_eq!(resp.status, 400, "{bad}: {}", resp.body);
        let err: Value = serde_json::from_str(&resp.body).unwrap();
        let message = err.get("error").and_then(Value::as_str).unwrap_or_default();
        assert!(message.contains(bad), "message should echo the bad name: {message}");
        for tier in ["lf", "learned", "hf", "auto"] {
            assert!(message.contains(tier), "message should offer {tier:?}: {message}");
        }
    }

    server.shutdown();
}
