//! Sharded serving over real sockets: a front router proxying to two
//! in-process shard servers. Checks the load-bearing invariants —
//! sharded answers bit-identical to a single server's, order-stable
//! merges, global job ids, aggregated metrics, graceful fan-out
//! shutdown.

use std::time::Duration;

use archdse::Explorer;
use archdse_serve::{
    client, spawn, spawn_router, EvaluateResponse, RouterConfig, ServeConfig, ServerHandle,
};
use dse_workloads::Benchmark;
use serde_json::Value;

fn quick_config() -> ServeConfig {
    let explorer =
        Explorer::for_benchmark(Benchmark::StringSearch).trace_len(2_000).seed(7).threads(2);
    let mut config = ServeConfig::new(explorer);
    config.workers = 3;
    config
}

/// Two identically configured shards behind a router.
fn boot_stack() -> (Vec<ServerHandle>, archdse_serve::RouterHandle) {
    let shards: Vec<ServerHandle> =
        (0..2).map(|_| spawn(quick_config()).expect("bind shard")).collect();
    let addrs = shards.iter().map(|s| s.addr().to_string()).collect();
    let router = spawn_router(RouterConfig::new(addrs)).expect("bind router");
    (shards, router)
}

#[test]
fn sharded_answers_are_bit_identical_to_a_single_server() {
    // The reference: one plain server evaluating a mixed batch.
    let single = spawn(quick_config()).expect("bind");
    let single_addr = single.addr().to_string();
    let body = r#"{"points": [0, 12345, 999983, 31, 500000, 31], "fidelity": "lf"}"#;
    let reference = client::post(&single_addr, "/v1/evaluate", body).unwrap();
    assert_eq!(reference.status, 200, "{}", reference.body);
    let reference: EvaluateResponse = serde_json::from_str(&reference.body).unwrap();
    single.shutdown();
    single.join();

    // The same batch through the router must merge back in the caller's
    // point order with bit-identical CPIs, even though the points split
    // across two shard caches.
    let (shards, router) = boot_stack();
    let addr = router.addr().to_string();
    let routed = client::post(&addr, "/v1/evaluate", body).unwrap();
    assert_eq!(routed.status, 200, "{}", routed.body);
    let routed: EvaluateResponse = serde_json::from_str(&routed.body).unwrap();
    assert_eq!(routed.results.len(), reference.results.len());
    for (r, e) in routed.results.iter().zip(&reference.results) {
        assert_eq!(r.point, e.point, "merge must preserve request order");
        assert_eq!(r.cpi.to_bits(), e.cpi.to_bits(), "point {}: sharded CPI differs", r.point);
    }

    // HF answers carry the same provenance stamps through the proxy.
    let hf = client::post(&addr, "/v1/evaluate", r#"{"points": [7], "fidelity": "hf"}"#).unwrap();
    assert_eq!(hf.status, 200, "{}", hf.body);
    let hf: EvaluateResponse = serde_json::from_str(&hf.body).unwrap();
    assert_eq!(hf.results[0].fidelity, "HF");
    assert!(hf.results[0].area_mm2 > 0.0);

    router.shutdown();
    router.join();
    for shard in shards {
        shard.shutdown();
        shard.join();
    }
}

#[test]
fn concurrent_routed_clients_match_a_sequential_walk() {
    let (shards, router) = boot_stack();
    let addr = router.addr().to_string();

    // Eight concurrent clients, overlapping point sets.
    let cpi_of = |addr: &str, chunk: usize| -> Vec<(u64, u64)> {
        let points: Vec<u64> = (0..6).map(|i| (chunk as u64 * 7 + i) % 64).collect();
        let body = format!(
            r#"{{"points": [{}], "fidelity": "lf"}}"#,
            points.iter().map(u64::to_string).collect::<Vec<_>>().join(",")
        );
        let response = client::post(addr, "/v1/evaluate", &body).unwrap();
        assert_eq!(response.status, 200, "{}", response.body);
        let parsed: EvaluateResponse = serde_json::from_str(&response.body).unwrap();
        parsed.results.iter().map(|r| (r.point, r.cpi.to_bits())).collect()
    };
    let concurrent: Vec<Vec<(u64, u64)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..8)
            .map(|chunk| {
                scope.spawn({
                    let addr = &addr;
                    move || cpi_of(addr, chunk)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    router.shutdown();
    router.join();
    for shard in shards {
        shard.shutdown();
        shard.join();
    }

    // A fresh stack walked sequentially must produce the same bits.
    let (shards, router) = boot_stack();
    let addr = router.addr().to_string();
    for (chunk, observed) in concurrent.iter().enumerate() {
        assert_eq!(&cpi_of(&addr, chunk), observed, "chunk {chunk} diverged under concurrency");
    }
    router.shutdown();
    router.join();
    for shard in shards {
        shard.shutdown();
        shard.join();
    }
}

#[test]
fn explore_jobs_get_global_ids_and_finish() {
    let (shards, router) = boot_stack();
    let addr = router.addr().to_string();

    // Two jobs round-robin onto different shards; the global ids the
    // router hands out are distinct and resolvable.
    let spec =
        r#"{"benchmark": "ss", "lf_episodes": 10, "hf_budget": 1, "trace_len": 500, "seed": 3}"#;
    let mut jobs = Vec::new();
    for _ in 0..2 {
        let started = client::post(&addr, "/v1/explore", spec).unwrap();
        assert_eq!(started.status, 200, "{}", started.body);
        let started: archdse_serve::JobStatus = serde_json::from_str(&started.body).unwrap();
        jobs.push(started.job);
    }
    assert_ne!(jobs[0], jobs[1]);

    for job in jobs {
        let path = format!("/v1/jobs/{job}");
        let mut done = false;
        for _ in 0..600 {
            let polled = client::get(&addr, &path).unwrap();
            assert_eq!(polled.status, 200, "{}", polled.body);
            let status: archdse_serve::JobStatus = serde_json::from_str(&polled.body).unwrap();
            assert_ne!(status.state, "failed", "job failed: {:?}", status.error);
            if status.state == "done" {
                assert!(status.result.expect("done jobs carry a result").best_cpi > 0.0);
                done = true;
                break;
            }
            std::thread::sleep(Duration::from_millis(100));
        }
        assert!(done, "job {job} never finished");
    }

    // Unknown global ids 404 through the proxy, junk ids 400.
    assert_eq!(client::get(&addr, "/v1/jobs/9999").unwrap().status, 404);
    assert_eq!(client::get(&addr, "/v1/jobs/xyz").unwrap().status, 400);

    router.shutdown();
    router.join();
    for shard in shards {
        shard.shutdown();
        shard.join();
    }
}

#[test]
fn metrics_aggregate_across_shards_in_both_forms() {
    let (shards, router) = boot_stack();
    let addr = router.addr().to_string();

    // Enough distinct points that both shards see traffic.
    let body = format!(
        r#"{{"points": [{}], "fidelity": "lf"}}"#,
        (0..32).map(|i| i.to_string()).collect::<Vec<_>>().join(",")
    );
    assert_eq!(client::post(&addr, "/v1/evaluate", &body).unwrap().status, 200);
    assert_eq!(client::get(&addr, "/healthz").unwrap().status, 200);

    // JSON: the router overlays its own request counters on the
    // field-wise shard sum and reports the shard count.
    let json = client::get(&addr, "/metrics").unwrap();
    assert_eq!(json.status, 200);
    let parsed: Value = serde_json::from_str(&json.body).unwrap();
    assert_eq!(parsed.get("shards").and_then(Value::as_u64), Some(2));
    let requests = parsed.get("requests").expect("requests overlay");
    assert_eq!(requests.get("evaluate").and_then(Value::as_u64), Some(1));
    assert_eq!(requests.get("healthz").and_then(Value::as_u64), Some(1));
    // The summed ledger accounts for each distinct point exactly once
    // across the two shard caches.
    let low = parsed.get("ledger").and_then(|l| l.get("low")).expect("summed ledger");
    assert_eq!(low.get("evaluations").and_then(Value::as_u64), Some(32));

    // Prometheus: the merged exposition is grammatical and carries the
    // per-shard routing series.
    let prom = client::get(&addr, "/metrics?format=prometheus").unwrap();
    assert_eq!(prom.status, 200);
    let summary = dse_obs::check_text(&prom.body)
        .unwrap_or_else(|errors| panic!("invalid merged exposition: {errors:?}"));
    assert!(summary.samples > 0);
    for shard in 0..2 {
        let prefix = format!("serve_shard_requests_total{{shard=\"{shard}\"}}");
        assert!(
            prom.body.lines().any(|l| l.starts_with(&prefix)),
            "missing series {prefix} in:\n{}",
            prom.body
        );
    }

    router.shutdown();
    router.join();
    for shard in shards {
        shard.shutdown();
        shard.join();
    }
}

#[test]
fn shutdown_fans_out_to_every_shard() {
    let (shards, router) = boot_stack();
    let addr = router.addr().to_string();
    let shard_addrs: Vec<String> = shards.iter().map(|s| s.addr().to_string()).collect();

    let response = client::post(&addr, "/v1/shutdown", "").unwrap();
    assert_eq!(response.status, 200, "{}", response.body);
    router.join();
    for (shard, shard_addr) in shards.into_iter().zip(shard_addrs) {
        shard.join();
        assert!(client::get(&shard_addr, "/healthz").is_err(), "shard must be gone after join");
    }
    assert!(client::get(&addr, "/healthz").is_err(), "router must be gone after join");
}
