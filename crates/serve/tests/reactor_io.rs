//! Slow-client and raw-socket behavior of the readiness-loop I/O layer:
//! read deadlines (slow-loris gets a 408, idle sockets a quiet close),
//! dribbled-but-timely requests still served, and keep-alive reuse.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use archdse::Explorer;
use archdse_serve::{spawn, ServeConfig, ServerHandle};
use dse_workloads::Benchmark;

fn server_with_read_timeout(read_timeout: Duration) -> ServerHandle {
    let explorer = Explorer::for_benchmark(Benchmark::StringSearch).trace_len(1_000).seed(7);
    let mut config = ServeConfig::new(explorer);
    config.workers = 2;
    config.read_timeout = read_timeout;
    spawn(config).expect("bind")
}

/// Reads the socket to EOF (bounded by the client-side read timeout)
/// and returns everything the server sent.
fn drain(stream: &mut TcpStream) -> String {
    stream.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let mut out = Vec::new();
    let mut buf = [0u8; 4096];
    loop {
        match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => out.extend_from_slice(&buf[..n]),
            Err(e) => {
                panic!("read failed before EOF: {e} (got {:?})", String::from_utf8_lossy(&out))
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

#[test]
fn slow_loris_partial_request_gets_408_then_the_door() {
    let server = server_with_read_timeout(Duration::from_millis(300));
    let mut stream = TcpStream::connect(server.addr()).unwrap();

    // Dribble a request line one byte per tick, slower than the read
    // deadline allows the whole request to take.
    for byte in b"POST /v1/evaluate HT" {
        if stream.write_all(&[*byte]).is_err() {
            break; // server already gave up on us — fine
        }
        std::thread::sleep(Duration::from_millis(40));
    }

    let response = drain(&mut stream);
    assert!(response.starts_with("HTTP/1.1 408"), "expected 408, got: {response:?}");
    assert!(response.contains("timed out"), "{response:?}");
    // The 408 is terminal: the server closed after it (drain hit EOF),
    // and a fresh connection still works.
    let health = archdse_serve::client::get(&server.addr().to_string(), "/healthz").unwrap();
    assert_eq!(health.status, 200);

    server.shutdown();
    server.join();
}

#[test]
fn idle_connection_is_reaped_silently() {
    let server = server_with_read_timeout(Duration::from_millis(300));
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    // Say nothing at all: no request bytes means no 408 — just EOF.
    let response = drain(&mut stream);
    assert!(response.is_empty(), "idle close must not send bytes, got: {response:?}");
    server.shutdown();
    server.join();
}

#[test]
fn dribbled_request_inside_the_deadline_is_served() {
    let server = server_with_read_timeout(Duration::from_secs(5));
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    // One byte per write, with real pauses: dozens of partial reads on
    // the server side, but well inside the deadline.
    for byte in b"GET /healthz HTTP/1.1\r\nhost: x\r\n\r\n" {
        stream.write_all(&[*byte]).unwrap();
        std::thread::sleep(Duration::from_millis(5));
    }
    let response = drain(&mut stream);
    assert!(response.starts_with("HTTP/1.1 200"), "got: {response:?}");
    assert!(response.contains("\"status\""), "{response:?}");
    server.shutdown();
    server.join();
}

#[test]
fn timeout_and_reap_paths_are_observable_in_metrics() {
    let server = server_with_read_timeout(Duration::from_millis(300));
    let addr = server.addr().to_string();

    // An idle connection (no bytes) is reaped silently…
    {
        let mut idle = TcpStream::connect(server.addr()).unwrap();
        let silence = drain(&mut idle);
        assert!(silence.is_empty(), "{silence:?}");
    }
    // …while a byte-at-a-time dribble that outlives the read deadline
    // gets an observable 408.
    let mut loris = TcpStream::connect(server.addr()).unwrap();
    for byte in b"POST /v1/evaluate HT" {
        if loris.write_all(&[*byte]).is_err() {
            break;
        }
        std::thread::sleep(Duration::from_millis(40));
    }
    let response = drain(&mut loris);
    assert!(response.starts_with("HTTP/1.1 408"), "{response:?}");

    // Both reap paths must show up in the exposition: the quiet close
    // as serve_conns_reaped_total, the noisy one as a counted 408.
    let expo = archdse_serve::client::get(&addr, "/metrics?format=prometheus").unwrap().body;
    let reaped = expo
        .lines()
        .find_map(|l| l.strip_prefix("serve_conns_reaped_total "))
        .and_then(|v| v.trim().parse::<f64>().ok())
        .unwrap_or(0.0);
    assert!(reaped >= 1.0, "quiet reap not counted:\n{expo}");
    let timed_out = expo
        .lines()
        .any(|l| l.starts_with("serve_responses_total{") && l.contains("status=\"408\""));
    assert!(timed_out, "408 response not counted:\n{expo}");

    server.shutdown();
    server.join();
}

#[test]
fn keep_alive_serves_back_to_back_requests_then_reaps_idle() {
    let server = server_with_read_timeout(Duration::from_millis(500));
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    stream.set_read_timeout(Some(Duration::from_secs(5))).unwrap();

    let request = b"GET /healthz HTTP/1.1\r\nhost: x\r\nconnection: keep-alive\r\n\r\n";
    let read_one_response = |stream: &mut TcpStream| -> String {
        // Headers first, then exactly content-length body bytes.
        let mut raw = Vec::new();
        let mut buf = [0u8; 1];
        while !raw.ends_with(b"\r\n\r\n") {
            stream.read_exact(&mut buf).unwrap();
            raw.push(buf[0]);
        }
        let head = String::from_utf8_lossy(&raw).into_owned();
        let length: usize = head
            .lines()
            .find_map(|l| l.to_ascii_lowercase().strip_prefix("content-length:").map(str::to_owned))
            .and_then(|v| v.trim().parse().ok())
            .expect("content-length header");
        let mut body = vec![0u8; length];
        stream.read_exact(&mut body).unwrap();
        head
    };

    for _ in 0..3 {
        stream.write_all(request).unwrap();
        let head = read_one_response(&mut stream);
        assert!(head.starts_with("HTTP/1.1 200"), "got: {head:?}");
    }

    // After the last response the connection idles with no request
    // bytes outstanding, so the read deadline reaps it without a 408.
    let leftovers = drain(&mut stream);
    assert!(leftovers.is_empty(), "idle keep-alive close must be silent, got: {leftovers:?}");
    server.shutdown();
    server.join();
}
