//! Component microbenchmarks: the cost claims behind the paper's
//! multi-fidelity premise.
//!
//! * the analytical model should evaluate in ~microseconds (the paper
//!   quotes "about 0.1 ms per design");
//! * the cycle-level simulator is the expensive proxy (milliseconds);
//! * FNN forward+backward and GP fit/predict set the per-episode and
//!   per-acquisition costs of our method and the BO baselines.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use archdse::{AnalyticalModel, CoreConfig, DesignSpace, FnnBuilder, Simulator};
use dse_baselines::GaussianProcess;
use dse_sim::Cache;
use dse_workloads::Benchmark;

fn bench_analytical(c: &mut Criterion) {
    let space = DesignSpace::boom();
    let model = AnalyticalModel::new(&space, Benchmark::Mm.profile());
    let point = space.decode(1_234_567);
    let mut group = c.benchmark_group("analytical");
    group.bench_function("cpi", |b| b.iter(|| std::hint::black_box(model.cpi_in(&space, &point))));
    group.bench_function("cpi_with_gradient", |b| {
        b.iter(|| std::hint::black_box(model.cpi_with_gradient(&space, &point)))
    });
    group.finish();
}

fn bench_simulator(c: &mut Criterion) {
    let space = DesignSpace::boom();
    let trace = Benchmark::Quicksort.trace(10_000, 1);
    let config = CoreConfig::from_point(&space, &space.decode(1_999_999));
    let mut group = c.benchmark_group("simulator");
    group.sample_size(20);
    group.bench_function("quicksort_10k_instructions", |b| {
        b.iter_batched(
            || Simulator::new(config.clone()),
            |mut sim| std::hint::black_box(sim.run(&trace).cpi()),
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

fn bench_fnn(c: &mut Criterion) {
    let space = DesignSpace::boom();
    let fnn = FnnBuilder::for_space(&space).build();
    let obs = fnn.observation(&space, &space.decode(777_777), 1.4);
    let mut group = c.benchmark_group("fnn");
    group.bench_function("forward_192_rules", |b| {
        b.iter(|| std::hint::black_box(fnn.forward(&obs).scores[0]))
    });
    let pass = fnn.forward(&obs);
    let d_scores = vec![0.1; fnn.output_count()];
    group.bench_function("backward_192_rules", |b| {
        b.iter(|| std::hint::black_box(fnn.backward(&pass, &d_scores).consequents[0][0]))
    });
    group.finish();
}

fn bench_gp(c: &mut Criterion) {
    let x: Vec<Vec<f64>> = (0..12)
        .map(|i| (0..11).map(|d| ((i * 11 + d) as f64 * 0.37).sin().abs()).collect())
        .collect();
    let y: Vec<f64> = x.iter().map(|p| p.iter().sum::<f64>()).collect();
    let mut group = c.benchmark_group("gp");
    group.bench_function("fit_12_points", |b| {
        b.iter(|| {
            std::hint::black_box(GaussianProcess::fit(&x, &y, true, 0).unwrap().lengthscale())
        })
    });
    let gp = GaussianProcess::fit(&x, &y, true, 0).unwrap();
    group.bench_function("predict", |b| b.iter(|| std::hint::black_box(gp.predict(&x[5]))));
    group.finish();
}

fn bench_cache(c: &mut Criterion) {
    let mut group = c.benchmark_group("cache");
    group.bench_function("access_64x8", |b| {
        b.iter_batched(
            || Cache::new(64, 8),
            |mut cache| {
                let mut h = 0u64;
                for i in 0..1_000u64 {
                    h += cache.access(i.wrapping_mul(0x9E3779B97F4A7C15) % (1 << 18)) as u64;
                }
                std::hint::black_box(h)
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

criterion_group!(benches, bench_analytical, bench_simulator, bench_fnn, bench_gp, bench_cache);
criterion_main!(benches);
