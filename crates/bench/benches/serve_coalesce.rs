//! Service-layer round-trip throughput with the cross-request
//! micro-batcher on vs. effectively off: the same concurrent loadgen
//! round against one server with a wide coalescing window and one whose
//! window admits a single request per batch.
//!
//! Both configurations must answer every request (and, per
//! `tests/serve_determinism.rs`, answer it identically); the artifact
//! contrasts their requests-per-batch amortization.

use archdse::Explorer;
use archdse_serve::{run_loadgen, spawn, BatcherConfig, LoadgenConfig, ServeConfig};
use criterion::{criterion_group, criterion_main, Criterion};
use dse_bench::print_artifact;
use dse_workloads::Benchmark;

const CLIENTS: usize = 4;
const REQUESTS_PER_CLIENT: usize = 6;
const POINTS_PER_REQUEST: usize = 4;

fn server_config(coalesce: bool) -> ServeConfig {
    let explorer = Explorer::for_benchmark(Benchmark::StringSearch).trace_len(2_000);
    let mut config = ServeConfig::new(explorer);
    config.workers = CLIENTS + 1;
    config.batcher = if coalesce {
        BatcherConfig {
            max_batch_points: 64,
            max_delay: std::time::Duration::from_millis(2),
            queue_capacity: 128,
        }
    } else {
        // A zero-width window: every request becomes its own batch.
        BatcherConfig {
            max_batch_points: POINTS_PER_REQUEST,
            max_delay: std::time::Duration::ZERO,
            queue_capacity: 128,
        }
    };
    config
}

fn loadgen_round(addr: &str) -> archdse_serve::LoadgenReport {
    let mut config = LoadgenConfig::new(addr);
    config.clients = CLIENTS;
    config.requests_per_client = REQUESTS_PER_CLIENT;
    config.points_per_request = POINTS_PER_REQUEST;
    let report = run_loadgen(&config).expect("loadgen round");
    assert_eq!(report.failed, 0, "loadgen round dropped requests");
    report
}

fn bench_serve_coalesce(c: &mut Criterion) {
    let mut group = c.benchmark_group("serve_coalesce");
    group.sample_size(10);

    let mut artifact = String::new();
    for (label, coalesce) in [("coalesced", true), ("single-request-batches", false)] {
        let server = spawn(server_config(coalesce)).expect("bind");
        let addr = server.addr().to_string();

        // One warm round for the artifact (and the CPI cache, so both
        // configurations time the service layer, not the simulator).
        let report = loadgen_round(&addr);
        if coalesce {
            assert!(
                report.coalescer.batches < report.coalescer.requests,
                "wide window must amortize: {} batches for {} requests",
                report.coalescer.batches,
                report.coalescer.requests
            );
        }
        artifact.push_str(&format!("--- {label} ---\n{}", report.render()));

        group.bench_function(label, |b| b.iter(|| loadgen_round(&addr)));

        server.shutdown();
        server.join();
    }
    group.finish();

    print_artifact(
        &format!("serve: {CLIENTS} clients x {REQUESTS_PER_CLIENT} requests x {POINTS_PER_REQUEST} points"),
        &artifact,
    );
}

criterion_group!(benches, bench_serve_coalesce);
criterion_main!(benches);
