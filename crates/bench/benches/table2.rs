//! Table 2 regeneration + timing of the application-specific flow.
//!
//! Prints the reproduced Table 2 rows (LF regret, HF regret, improvement
//! ratio per benchmark), then times one full LF→HF exploration as the
//! representative kernel.

use criterion::{criterion_group, criterion_main, Criterion};

use archdse::experiments::{table2, Table2Config};
use archdse::Explorer;
use dse_workloads::Benchmark;

fn bench_table2(c: &mut Criterion) {
    // Regenerate the table once at bench-quick scale.
    let result = table2(&Table2Config::quick());
    dse_bench::print_artifact(
        "Table 2: application-specific DSE (quick scale)",
        &result.to_markdown(),
    );

    // Representative kernel: one benchmark's full flow.
    let mut group = c.benchmark_group("table2");
    group.sample_size(10);
    group.bench_function("explore_ss_full_flow", |b| {
        b.iter(|| {
            let report = Explorer::for_benchmark(Benchmark::StringSearch)
                .area_limit_mm2(6.0)
                .lf_episodes(20)
                .hf_budget(3)
                .trace_len(2_000)
                .seed(1)
                .run();
            std::hint::black_box(report.best_cpi)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_table2);
criterion_main!(benches);
