//! Ablation-study regeneration + timing of the knocked-out variants.

use criterion::{criterion_group, criterion_main, Criterion};

use archdse::experiments::{ablations, AblationConfig};
use archdse::Explorer;
use dse_mfrl::RewardKind;
use dse_workloads::Benchmark;

fn bench_ablations(c: &mut Criterion) {
    let result = ablations(&AblationConfig::quick());
    dse_bench::print_artifact(
        "Ablations: design-choice knock-outs (quick scale)",
        &result.to_markdown(),
    );

    let mut group = c.benchmark_group("ablations");
    group.sample_size(10);
    type Tweak = fn(Explorer) -> Explorer;
    let variants: [(&str, Tweak); 3] = [
        ("full", |e| e),
        ("no_mask", |e| e.gradient_mask(false)),
        ("plain_reward", |e| e.reward(RewardKind::PlainIpc)),
    ];
    for (name, tweak) in variants {
        group.bench_function(name, |b| {
            b.iter(|| {
                let explorer = tweak(
                    Explorer::for_benchmark(Benchmark::Quicksort)
                        .area_limit_mm2(7.5)
                        .lf_episodes(15)
                        .hf_budget(2)
                        .trace_len(1_000)
                        .seed(1),
                );
                std::hint::black_box(explorer.run().best_cpi)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ablations);
criterion_main!(benches);
