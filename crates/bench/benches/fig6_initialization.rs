//! Fig. 6 regeneration + timing of the LF training phase.
//!
//! Prints the reproduced initialization study (convergence speed per
//! membership-center setting), then times a block of LF episodes — the
//! dominant cost of the initialization experiments.

use criterion::{criterion_group, criterion_main, Criterion};

use archdse::eval::{AnalyticalLf, AreaLimit};
use archdse::experiments::{fig6, Fig6Config};
use archdse::{DesignSpace, FnnBuilder};
use dse_mfrl::{LfPhase, LfPhaseConfig};
use dse_workloads::Benchmark;

fn bench_fig6(c: &mut Criterion) {
    let result = fig6(&Fig6Config::quick());
    dse_bench::print_artifact("Fig. 6: initialization study (quick scale)", &result.to_markdown());

    let space = DesignSpace::boom();
    let lf = AnalyticalLf::for_benchmark(&space, Benchmark::Dijkstra, 8.0);
    let area = AreaLimit::new(10.0);
    let mut group = c.benchmark_group("fig6");
    group.sample_size(10);
    group.bench_function("lf_phase_20_episodes", |b| {
        b.iter(|| {
            let mut fnn = FnnBuilder::for_space(&space).build();
            let mut ledger = archdse::CostLedger::new();
            let outcome =
                LfPhase::new(LfPhaseConfig { episodes: 20, seed: 3, ..Default::default() }).run(
                    &mut fnn,
                    &space,
                    &lf,
                    &area,
                    &mut ledger,
                );
            std::hint::black_box(outcome.converged_cpi)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_fig6);
criterion_main!(benches);
