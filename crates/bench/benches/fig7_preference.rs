//! Fig. 7 regeneration + timing of preference-seeded training.
//!
//! Prints the reproduced preference-embedding outcome (converged decode
//! width with and without the preference), then times the embedding +
//! a short training run.

use criterion::{criterion_group, criterion_main, Criterion};

use archdse::eval::{AnalyticalLf, AreaLimit};
use archdse::experiments::{fig7, Fig7Config};
use archdse::{DesignSpace, FnnBuilder, MergedParam, Param};
use dse_mfrl::{LfPhase, LfPhaseConfig};
use dse_workloads::Benchmark;

fn bench_fig7(c: &mut Criterion) {
    let result = fig7(&Fig7Config::quick());
    dse_bench::print_artifact(
        "Fig. 7: embedding preference into FNN (quick scale)",
        &result.to_markdown(),
    );

    let space = DesignSpace::boom();
    let lf = AnalyticalLf::for_benchmark(&space, Benchmark::FpVvadd, 1.0);
    let area = AreaLimit::new(6.0);
    let mut group = c.benchmark_group("fig7");
    group.sample_size(10);
    group.bench_function("preference_training_20_episodes", |b| {
        b.iter(|| {
            let mut fnn = FnnBuilder::for_space(&space).build();
            fnn.embed_preference(
                1 + MergedParam::Decode.index(),
                3.5,
                Param::DecodeWidth.index(),
                2.0,
            );
            let mut ledger = archdse::CostLedger::new();
            let outcome =
                LfPhase::new(LfPhaseConfig { episodes: 20, seed: 5, ..Default::default() }).run(
                    &mut fnn,
                    &space,
                    &lf,
                    &area,
                    &mut ledger,
                );
            std::hint::black_box(outcome.converged.value(&space, Param::DecodeWidth))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_fig7);
criterion_main!(benches);
