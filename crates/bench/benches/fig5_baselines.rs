//! Fig. 5 regeneration + per-optimizer timing.
//!
//! Prints the reproduced baseline comparison (mean best CPI per method),
//! then times each baseline optimizer for one budgeted run against the
//! real simulator objective.

use criterion::{criterion_group, criterion_main, Criterion};

use archdse::eval::{AreaLimit, HfObjective, SimulatorHf};
use archdse::experiments::{fig5, Fig5Config};
use archdse::DesignSpace;
use dse_baselines::{
    ActBoostOptimizer, BagGbrtOptimizer, BoomExplorerOptimizer, Optimizer, RandomForestOptimizer,
    RandomSearchOptimizer, ScboOptimizer,
};
use dse_workloads::Benchmark;

fn bench_fig5(c: &mut Criterion) {
    let result = fig5(&Fig5Config::quick());
    dse_bench::print_artifact(
        "Fig. 5: comparison with baselines (quick scale)",
        &result.to_markdown(),
    );

    let space = DesignSpace::boom();
    let mut group = c.benchmark_group("fig5");
    group.sample_size(10);
    let mut optimizers: Vec<Box<dyn Optimizer>> = vec![
        Box::new(RandomSearchOptimizer),
        Box::new(RandomForestOptimizer),
        Box::new(ActBoostOptimizer),
        Box::new(BagGbrtOptimizer),
        Box::new(BoomExplorerOptimizer),
        Box::new(ScboOptimizer::default()),
    ];
    for opt in &mut optimizers {
        let name = opt.name().replace(' ', "_").to_lowercase();
        group.bench_function(format!("{name}_budget4"), |b| {
            b.iter(|| {
                let mut obj = HfObjective::new(
                    SimulatorHf::for_benchmark(Benchmark::Quicksort, 1_000, 3, 1.0),
                    AreaLimit::new(8.0),
                );
                std::hint::black_box(opt.optimize(&space, &mut obj, 4, 1).best_value)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig5);
criterion_main!(benches);
