//! Design-sweep throughput of the deterministic parallel evaluation
//! backend: 24 evenly spaced designs × 6 benchmark traces pushed through
//! `SimulatorHf::cpi_batch` at 1 worker and at every available core.
//!
//! The two configurations must produce bit-identical CPIs (asserted
//! here on every run), so the timing difference is pure backend
//! speedup.

use archdse::eval::SimulatorHf;
use archdse::DesignSpace;
use criterion::{criterion_group, criterion_main, Criterion};
use dse_bench::print_artifact;
use dse_space::DesignPoint;
use dse_workloads::Benchmark;

const DESIGNS: u64 = 24;
const TRACE_LEN: usize = 10_000;

fn sweep_points(space: &DesignSpace) -> Vec<DesignPoint> {
    (0..DESIGNS).map(|i| space.decode(i * (space.size() - 1) / (DESIGNS - 1))).collect()
}

fn evaluator(threads: usize) -> SimulatorHf {
    SimulatorHf::for_benchmarks(&Benchmark::ALL, TRACE_LEN, 7, 1.0).with_threads(threads)
}

fn bench_sweep(c: &mut Criterion) {
    let space = DesignSpace::boom();
    let points = sweep_points(&space);
    let all_cores = dse_exec::default_threads();

    let sequential = evaluator(1).cpi_batch(&space, &points);
    let parallel = evaluator(all_cores).cpi_batch(&space, &points);
    assert!(
        sequential.iter().zip(&parallel).all(|(a, b)| a.to_bits() == b.to_bits()),
        "parallel sweep diverged from the sequential walk"
    );
    let rows: Vec<String> = points
        .iter()
        .zip(&sequential)
        .map(|(p, cpi)| format!("{:<12} {cpi:.4}", space.encode(p)))
        .collect();
    print_artifact(
        &format!("sweep: {DESIGNS} designs x {} traces, {all_cores} core(s)", Benchmark::ALL.len()),
        &rows.join("\n"),
    );

    let mut group = c.benchmark_group("sweep");
    group.sample_size(10);
    for threads in [1, all_cores] {
        group.bench_function(format!("cpi_batch/{threads}-thread"), |b| {
            b.iter(|| evaluator(threads).cpi_batch(&space, &points))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sweep);
criterion_main!(benches);
