//! Event-driven kernel vs the retained cycle-by-cycle reference walk:
//! single-thread simulation throughput on all six benchmarks.
//!
//! Every run first asserts full `SimResult` bit-equality between the
//! two engines on every benchmark (so CI's quick mode catches
//! divergence without timing anything), then measures instructions per
//! second of each engine and records the series in
//! `results/BENCH_sim_kernel.json` — the perf trajectory later PRs
//! compare against.
//!
//! Each engine is measured as the batch path uses it: the kernel on a
//! reused [`Simulator`] instance (the `evaluate_batch` worker pattern),
//! the reference as the old per-evaluation cold construction.
//!
//! A second section measures design-batched lockstep execution: a
//! [`BatchSimulator`] advancing K designs over one shared
//! [`ExpandedTrace`] versus the same K designs swept per-run on a
//! reused `Simulator`. Lockstep results are asserted bit-identical to
//! the per-run sweep before any timing, and the `batch` series lands in
//! the same JSON artifact.

use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};
use dse_bench::{print_artifact, write_results_artifact};
use dse_sim::{BatchSimulator, CoreConfig, ExpandedTrace, ReferenceSimulator, Simulator};
use dse_space::DesignSpace;
use dse_workloads::{Benchmark, Trace};

const TRACE_LEN: usize = 30_000;
const TRACE_SEED: u64 = 7;
/// Per-engine measurement floor: repeat until this much time is spent.
const MIN_MEASURE: std::time::Duration = std::time::Duration::from_millis(300);
const MIN_REPS: u32 = 3;
/// Lockstep pack sizes measured against the per-run design sweep.
const BATCH_SIZES: [usize; 3] = [4, 16, 64];

/// Instructions per second of `run`, which simulates `instructions`.
fn throughput(instructions: u64, mut run: impl FnMut() -> u64) -> f64 {
    let start = Instant::now();
    let mut reps = 0u32;
    let mut checksum = 0u64;
    while reps < MIN_REPS || start.elapsed() < MIN_MEASURE {
        checksum = checksum.wrapping_add(run());
        reps += 1;
    }
    std::hint::black_box(checksum);
    (instructions * reps as u64) as f64 / start.elapsed().as_secs_f64()
}

fn bench_sim_kernel(c: &mut Criterion) {
    let space = DesignSpace::boom();
    let config = CoreConfig::from_point(&space, &space.largest());
    let traces: Vec<(Benchmark, Trace)> =
        Benchmark::ALL.iter().map(|&b| (b, b.trace(TRACE_LEN, TRACE_SEED))).collect();

    // Bit-identity first: the whole point of the kernel is being a
    // faster implementation of the *same* function.
    let mut reused = Simulator::new(config.clone());
    for (b, trace) in &traces {
        assert_eq!(
            reused.run(trace),
            ReferenceSimulator::new(config.clone()).run(trace),
            "kernel diverged from reference on {b}"
        );
    }

    let mut rows = Vec::new();
    let mut json_rows = Vec::new();
    let mut log_speedup_sum = 0.0;
    for (b, trace) in &traces {
        let kernel_ips = throughput(TRACE_LEN as u64, || reused.run(trace).cycles);
        let reference_ips = throughput(TRACE_LEN as u64, || {
            ReferenceSimulator::new(config.clone()).run(trace).cycles
        });
        let speedup = kernel_ips / reference_ips;
        log_speedup_sum += speedup.ln();
        rows.push(format!(
            "{:<14} kernel {:>8.2} Minstr/s   reference {:>7.2} Minstr/s   speedup {speedup:>5.2}x",
            b.to_string(),
            kernel_ips / 1e6,
            reference_ips / 1e6
        ));
        json_rows.push(format!(
            "    {{\"benchmark\": \"{b}\", \"kernel_ips\": {kernel_ips:.0}, \
             \"reference_ips\": {reference_ips:.0}, \"speedup\": {speedup:.3}}}"
        ));
    }
    let geomean = (log_speedup_sum / traces.len() as f64).exp();
    rows.push(format!("{:<14} geomean speedup {geomean:>5.2}x", ""));

    // --- Design-batched lockstep vs per-run design sweeps -----------
    // K designs spread across the space over one trace: the per-run
    // sweep re-streams the trace K times through a reused Simulator
    // (the old evaluate_batch worker pattern); the lockstep pack
    // streams the shared expansion once.
    let batch_bench = Benchmark::Dijkstra;
    let batch_trace = batch_bench.trace(TRACE_LEN, TRACE_SEED);
    let expanded = ExpandedTrace::expand(&batch_trace);
    let designs_at = |k: usize| -> Vec<CoreConfig> {
        (0..k as u64)
            .map(|i| {
                let code = i * (space.size() - 1) / (k as u64 - 1).max(1);
                CoreConfig::from_point(&space, &space.decode(code))
            })
            .collect()
    };

    // Bit-identity first, at every measured pack size: lockstep is
    // only a faster schedule for the *same* per-design function.
    let mut batch_sim = BatchSimulator::new();
    for k in BATCH_SIZES {
        let pack = designs_at(k);
        let lockstep = batch_sim.run_pack(&pack, &expanded);
        for (lane, cfg) in pack.iter().enumerate() {
            assert_eq!(
                lockstep[lane],
                Simulator::new(cfg.clone()).run(&batch_trace),
                "lockstep diverged from per-run at K={k}, lane {lane}"
            );
        }
    }

    let mut batch_json_rows = Vec::new();
    for k in BATCH_SIZES {
        let pack = designs_at(k);
        let swept = (k * TRACE_LEN) as u64;
        // Paired rounds — alternate the two engines so slow clock
        // drift (thermal, noisy neighbours) biases both sides equally
        // instead of whichever happened to run second.
        let mut batch_secs = 0.0;
        let mut per_run_secs = 0.0;
        let mut reps = 0u32;
        let floor = 2.0 * MIN_MEASURE.as_secs_f64();
        while reps < MIN_REPS || batch_secs + per_run_secs < floor {
            let start = Instant::now();
            std::hint::black_box(batch_sim.run_pack(&pack, &expanded).last().unwrap().cycles);
            batch_secs += start.elapsed().as_secs_f64();
            let start = Instant::now();
            let mut cycles = 0;
            for cfg in &pack {
                reused.reconfigure(cfg);
                cycles += reused.run(&batch_trace).cycles;
            }
            std::hint::black_box(cycles);
            per_run_secs += start.elapsed().as_secs_f64();
            reps += 1;
        }
        let batch_ips = (swept * reps as u64) as f64 / batch_secs;
        let per_run_ips = (swept * reps as u64) as f64 / per_run_secs;
        let speedup = batch_ips / per_run_ips;
        rows.push(format!(
            "batch K={k:<3}    lockstep {:>7.2} Minstr/s   per-run {:>9.2} Minstr/s   speedup {speedup:>5.2}x",
            batch_ips / 1e6,
            per_run_ips / 1e6
        ));
        batch_json_rows.push(format!(
            "    {{\"k\": {k}, \"benchmark\": \"{batch_bench}\", \"batch_ips\": {batch_ips:.0}, \
             \"per_run_ips\": {per_run_ips:.0}, \"speedup\": {speedup:.3}}}"
        ));
    }

    print_artifact(
        &format!("sim_kernel: {TRACE_LEN} instr x {} benchmarks, largest design", traces.len()),
        &rows.join("\n"),
    );
    write_results_artifact(
        "BENCH_sim_kernel.json",
        &format!(
            "{{\n  \"bench\": \"sim_kernel\",\n  \"trace_len\": {TRACE_LEN},\n  \
             \"trace_seed\": {TRACE_SEED},\n  \"design\": \"largest\",\n  \
             \"benchmarks\": [\n{}\n  ],\n  \"geomean_speedup\": {geomean:.3},\n  \
             \"batch\": [\n{}\n  ]\n}}\n",
            json_rows.join(",\n"),
            batch_json_rows.join(",\n")
        ),
    );

    let mut group = c.benchmark_group("sim_kernel");
    group.sample_size(10);
    for (b, trace) in &traces {
        group.bench_function(format!("kernel/{b}"), |bench| {
            bench.iter(|| std::hint::black_box(reused.run(trace).cycles))
        });
        group.bench_function(format!("reference/{b}"), |bench| {
            bench.iter(|| {
                std::hint::black_box(ReferenceSimulator::new(config.clone()).run(trace).cycles)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sim_kernel);
criterion_main!(benches);
