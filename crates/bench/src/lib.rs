//! Shared helpers for the benchmark harness.
//!
//! Each Criterion bench target regenerates one of the paper's evaluation
//! artifacts (printing the same rows/series the paper reports) and then
//! times a representative kernel of that experiment, so `cargo bench`
//! doubles as both the reproduction driver and a performance regression
//! net.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Prints a titled experiment artifact to stderr (Criterion owns
/// stdout), so bench logs contain the regenerated tables.
pub fn print_artifact(title: &str, body: &str) {
    eprintln!("\n================ {title} ================");
    eprintln!("{body}");
    eprintln!("==========================================\n");
}
