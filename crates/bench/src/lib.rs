//! Shared helpers for the benchmark harness.
//!
//! Each Criterion bench target regenerates one of the paper's evaluation
//! artifacts (printing the same rows/series the paper reports) and then
//! times a representative kernel of that experiment, so `cargo bench`
//! doubles as both the reproduction driver and a performance regression
//! net.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Prints a titled experiment artifact to stderr (Criterion owns
/// stdout), so bench logs contain the regenerated tables.
pub fn print_artifact(title: &str, body: &str) {
    eprintln!("\n================ {title} ================");
    eprintln!("{body}");
    eprintln!("==========================================\n");
}

/// Writes a machine-readable artifact into the repository's `results/`
/// directory (creating it if needed) and returns the path written.
///
/// Bench targets use this for the JSON series later PRs compare against
/// (e.g. `results/BENCH_sim_kernel.json`), alongside the human-readable
/// [`print_artifact`] tables on stderr.
///
/// # Panics
///
/// Panics if the directory or file cannot be written — a bench artifact
/// silently going missing would defeat its purpose as a perf record.
pub fn write_results_artifact(file_name: &str, contents: &str) -> std::path::PathBuf {
    let results = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results");
    std::fs::create_dir_all(&results)
        .unwrap_or_else(|e| panic!("cannot create {}: {e}", results.display()));
    let path = results.join(file_name);
    std::fs::write(&path, contents)
        .unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
    eprintln!("wrote {}", path.display());
    path
}
