//! Forward-mode automatic differentiation for the analytical CPI model.
//!
//! The paper's low-fidelity phase exploits the fact that an analytical
//! processor model "mainly consists of mathematical calculations" and is
//! therefore differentiable: the sign of ∂CPI/∂parameter gates which
//! design parameters the RL policy is allowed to increase. This crate
//! provides that machinery:
//!
//! * [`Dual`] — a dual number carrying a value plus a dense gradient
//!   vector (one slot per design parameter);
//! * [`Scalar`] — the abstraction the analytical model is written
//!   against, implemented by both `f64` (fast evaluation) and [`Dual`]
//!   (evaluation with gradients);
//! * [`PiecewiseLinear`] — differentiable fits for table lookups, exactly
//!   the "fit linear functions that strictly follow the trend of the
//!   table" trick described in §3.1 of the paper.
//!
//! # Examples
//!
//! ```
//! use dse_autodiff::{Dual, Scalar};
//!
//! // f(x, y) = x² · y at (3, 2): value 18, ∂x = 12, ∂y = 9.
//! let x = Dual::variable(3.0, 0, 2);
//! let y = Dual::variable(2.0, 1, 2);
//! let f = x.clone() * x * y;
//! assert_eq!(f.value(), 18.0);
//! assert_eq!(f.gradient(), &[12.0, 9.0]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dual;
mod pwl;
mod scalar;

pub use dual::Dual;
pub use pwl::{BuildPwlError, PiecewiseLinear};
pub use scalar::Scalar;
