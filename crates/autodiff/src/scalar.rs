//! The [`Scalar`] abstraction shared by `f64` and [`Dual`].

use std::ops::{Add, Div, Mul, Neg, Sub};

use crate::Dual;

/// A differentiable-or-plain scalar.
///
/// The analytical CPI model in `dse-analytical` is generic over this
/// trait, so a single implementation serves both the fast `f64` path
/// (bulk evaluation during episodes) and the [`Dual`] path (gradient
/// extraction that gates low-fidelity actions).
///
/// Smooth `max`/`min` use the log-sum-exp softening with sharpness
/// `beta`; as `beta → ∞` they converge to the hard operators while
/// remaining differentiable everywhere.
///
/// # Examples
///
/// ```
/// use dse_autodiff::Scalar;
///
/// fn relu_ish<S: Scalar>(x: S) -> S {
///     x.smooth_max(&S::constant(0.0), 20.0)
/// }
/// assert!(relu_ish(3.0_f64) > 2.9);
/// assert!(relu_ish(-3.0_f64) < 0.1);
/// ```
pub trait Scalar:
    Clone
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
{
    /// Lifts a plain constant (zero derivative) into the scalar type.
    fn constant(v: f64) -> Self;

    /// The underlying numeric value.
    fn value(&self) -> f64;

    /// Natural exponential.
    fn exp(&self) -> Self;

    /// Natural logarithm.
    ///
    /// The derivative is undefined at 0; callers are expected to keep
    /// arguments strictly positive (the analytical model only takes logs
    /// of sizes and latencies, which are ≥ 1).
    fn ln(&self) -> Self;

    /// Square root.
    fn sqrt(&self) -> Self;

    /// Raises to a constant power.
    fn powf(&self, p: f64) -> Self;

    /// Multiplicative inverse.
    fn recip(&self) -> Self {
        Self::constant(1.0) / self.clone()
    }

    /// Smooth maximum via log-sum-exp with sharpness `beta`.
    fn smooth_max(&self, other: &Self, beta: f64) -> Self {
        // max(a,b) ≈ (1/β)·ln(e^{βa} + e^{βb}); shift by the hard max for
        // numerical stability.
        let shift = self.value().max(other.value());
        let ea = ((self.clone() - Self::constant(shift)) * Self::constant(beta)).exp();
        let eb = ((other.clone() - Self::constant(shift)) * Self::constant(beta)).exp();
        (ea + eb).ln() * Self::constant(1.0 / beta) + Self::constant(shift)
    }

    /// Smooth minimum via log-sum-exp with sharpness `beta`.
    fn smooth_min(&self, other: &Self, beta: f64) -> Self {
        -((-self.clone()).smooth_max(&(-other.clone()), beta))
    }

    /// Logistic sigmoid `1 / (1 + e^{-x})`.
    fn sigmoid(&self) -> Self {
        (Self::constant(1.0) + (-self.clone()).exp()).recip()
    }
}

impl Scalar for f64 {
    fn constant(v: f64) -> Self {
        v
    }

    fn value(&self) -> f64 {
        *self
    }

    fn exp(&self) -> Self {
        f64::exp(*self)
    }

    fn ln(&self) -> Self {
        f64::ln(*self)
    }

    fn sqrt(&self) -> Self {
        f64::sqrt(*self)
    }

    fn powf(&self, p: f64) -> Self {
        f64::powf(*self, p)
    }
}

impl Scalar for Dual {
    fn constant(v: f64) -> Self {
        Dual::constant_with_len(v, 0)
    }

    fn value(&self) -> f64 {
        Dual::value(self)
    }

    fn exp(&self) -> Self {
        self.map(f64::exp, |v| v.exp())
    }

    fn ln(&self) -> Self {
        self.map(f64::ln, |v| 1.0 / v)
    }

    fn sqrt(&self) -> Self {
        self.map(f64::sqrt, |v| 0.5 / v.sqrt())
    }

    fn powf(&self, p: f64) -> Self {
        self.map(|v| v.powf(p), |v| p * v.powf(p - 1.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smooth_max_close_to_hard_max() {
        let m = 3.0_f64.smooth_max(&7.0, 50.0);
        assert!((m - 7.0).abs() < 1e-6, "{m}");
    }

    #[test]
    fn smooth_min_close_to_hard_min() {
        let m = 3.0_f64.smooth_min(&7.0, 50.0);
        assert!((m - 3.0).abs() < 1e-6, "{m}");
    }

    #[test]
    fn smooth_max_is_stable_for_large_inputs() {
        let m = 1000.0_f64.smooth_max(&999.0, 10.0);
        assert!(m.is_finite());
        assert!((m - 1000.0).abs() < 1e-3);
    }

    #[test]
    fn sigmoid_midpoint() {
        assert!((0.0_f64.sigmoid() - 0.5).abs() < 1e-12);
        assert!(10.0_f64.sigmoid() > 0.9999);
    }

    #[test]
    fn dual_smooth_max_gradient_selects_winner() {
        let a = Dual::variable(5.0, 0, 2);
        let b = Dual::variable(1.0, 1, 2);
        let m = a.smooth_max(&b, 30.0);
        // Gradient should be ≈ (1, 0): the max tracks `a`.
        assert!((m.gradient()[0] - 1.0).abs() < 1e-3);
        assert!(m.gradient()[1].abs() < 1e-3);
    }
}
