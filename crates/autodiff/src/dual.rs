//! Dense forward-mode dual numbers.

use std::fmt;
use std::ops::{Add, Div, Mul, Neg, Sub};

/// A forward-mode dual number: a value plus a dense gradient vector.
///
/// Each [`Dual::variable`] seeds one slot of an `n_vars`-long gradient;
/// arithmetic then propagates all partial derivatives simultaneously.
/// With the 11 design parameters of the paper's Table 1 a dense vector is
/// both simpler and faster than taping.
///
/// Constants may carry an empty gradient (`n_vars = 0`); binary
/// operations broadcast the empty gradient against any length, so
/// `Scalar::constant` does not need to know the variable count.
///
/// # Examples
///
/// ```
/// use dse_autodiff::Dual;
///
/// let x = Dual::variable(2.0, 0, 1);
/// let y = (x.clone() * x).recip_dual(); // 1/x²
/// assert_eq!(y.value(), 0.25);
/// assert!((y.gradient()[0] - (-0.25)).abs() < 1e-12); // d(1/x²)/dx = -2/x³
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Dual {
    v: f64,
    d: Vec<f64>,
}

impl Dual {
    /// Creates the `index`-th of `n_vars` independent variables with the
    /// given value.
    ///
    /// # Panics
    ///
    /// Panics if `index >= n_vars`.
    pub fn variable(value: f64, index: usize, n_vars: usize) -> Self {
        assert!(index < n_vars, "variable index {index} out of range {n_vars}");
        let mut d = vec![0.0; n_vars];
        d[index] = 1.0;
        Self { v: value, d }
    }

    /// Creates a constant with an explicit gradient length (all zeros).
    pub fn constant_with_len(value: f64, n_vars: usize) -> Self {
        Self { v: value, d: vec![0.0; n_vars] }
    }

    /// The numeric value.
    pub fn value(&self) -> f64 {
        self.v
    }

    /// The gradient vector (may be empty for constants).
    pub fn gradient(&self) -> &[f64] {
        &self.d
    }

    /// Applies a unary differentiable function given its value map and
    /// derivative at the current value (chain rule).
    pub(crate) fn map(&self, f: impl Fn(f64) -> f64, df: impl Fn(f64) -> f64) -> Self {
        let scale = df(self.v);
        Self { v: f(self.v), d: self.d.iter().map(|g| g * scale).collect() }
    }

    /// Multiplicative inverse, provided inherently so doc examples don't
    /// need the [`Scalar`](crate::Scalar) trait in scope.
    pub fn recip_dual(&self) -> Self {
        self.map(|v| 1.0 / v, |v| -1.0 / (v * v))
    }

    fn zip(&self, rhs: &Dual, v: f64, df: impl Fn(f64, f64) -> (f64, f64)) -> Dual {
        let (da, db) = df(self.v, rhs.v);
        let d = match (self.d.is_empty(), rhs.d.is_empty()) {
            (true, true) => Vec::new(),
            (false, true) => self.d.iter().map(|g| g * da).collect(),
            (true, false) => rhs.d.iter().map(|g| g * db).collect(),
            (false, false) => {
                assert_eq!(
                    self.d.len(),
                    rhs.d.len(),
                    "dual numbers with {} and {} variables mixed",
                    self.d.len(),
                    rhs.d.len()
                );
                self.d.iter().zip(&rhs.d).map(|(a, b)| a * da + b * db).collect()
            }
        };
        Dual { v, d }
    }
}

impl Add for Dual {
    type Output = Dual;

    fn add(self, rhs: Dual) -> Dual {
        self.zip(&rhs, self.v + rhs.v, |_, _| (1.0, 1.0))
    }
}

impl Sub for Dual {
    type Output = Dual;

    fn sub(self, rhs: Dual) -> Dual {
        self.zip(&rhs, self.v - rhs.v, |_, _| (1.0, -1.0))
    }
}

impl Mul for Dual {
    type Output = Dual;

    fn mul(self, rhs: Dual) -> Dual {
        self.zip(&rhs, self.v * rhs.v, |a, b| (b, a))
    }
}

impl Div for Dual {
    type Output = Dual;

    // The quotient rule genuinely multiplies inside a Div impl.
    #[allow(clippy::suspicious_arithmetic_impl)]
    fn div(self, rhs: Dual) -> Dual {
        self.zip(&rhs, self.v / rhs.v, |a, b| (1.0 / b, -a / (b * b)))
    }
}

impl Neg for Dual {
    type Output = Dual;

    fn neg(self) -> Dual {
        Dual { v: -self.v, d: self.d.into_iter().map(|g| -g).collect() }
    }
}

impl fmt::Display for Dual {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.v)?;
        if !self.d.is_empty() {
            write!(f, " + {:?}ε", self.d)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Scalar;
    use proptest::prelude::*;

    #[test]
    fn product_rule() {
        let x = Dual::variable(3.0, 0, 2);
        let y = Dual::variable(4.0, 1, 2);
        let p = x * y;
        assert_eq!(p.value(), 12.0);
        assert_eq!(p.gradient(), &[4.0, 3.0]);
    }

    #[test]
    fn quotient_rule() {
        let x = Dual::variable(6.0, 0, 1);
        let q = x / Dual::constant_with_len(2.0, 1);
        assert_eq!(q.value(), 3.0);
        assert_eq!(q.gradient(), &[0.5]);
    }

    #[test]
    fn chain_rule_through_exp_ln() {
        // f(x) = ln(exp(x)) = x → derivative exactly 1 for all x.
        let x = Dual::variable(1.7, 0, 1);
        let f = Scalar::ln(&Scalar::exp(&x));
        assert!((f.value() - 1.7).abs() < 1e-12);
        assert!((f.gradient()[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn constants_broadcast_against_variables() {
        let x = Dual::variable(2.0, 0, 3);
        let c = <Dual as Scalar>::constant(5.0);
        let s = c + x;
        assert_eq!(s.value(), 7.0);
        assert_eq!(s.gradient(), &[1.0, 0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "variables mixed")]
    fn mismatched_lengths_panic() {
        let x = Dual::variable(1.0, 0, 2);
        let y = Dual::variable(1.0, 0, 3);
        let _ = x + y;
    }

    proptest! {
        #[test]
        fn derivative_matches_finite_difference(v in 0.3_f64..4.0) {
            // f(x) = x·exp(-x) + sqrt(x)
            let f = |x: f64| x * (-x).exp() + x.sqrt();
            let x = Dual::variable(v, 0, 1);
            let y = x.clone() * Scalar::exp(&-x.clone()) + Scalar::sqrt(&x);
            let h = 1e-6;
            let fd = (f(v + h) - f(v - h)) / (2.0 * h);
            prop_assert!((y.gradient()[0] - fd).abs() < 1e-5);
            prop_assert!((y.value() - f(v)).abs() < 1e-12);
        }

        #[test]
        fn addition_is_commutative(a in -10.0_f64..10.0, b in -10.0_f64..10.0) {
            let x = Dual::variable(a, 0, 2);
            let y = Dual::variable(b, 1, 2);
            prop_assert_eq!(x.clone() + y.clone(), y + x);
        }
    }
}
