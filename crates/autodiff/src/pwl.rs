//! Differentiable piecewise-linear fits for table lookups.

use std::error::Error;
use std::fmt;

use crate::Scalar;

/// Error returned by [`PiecewiseLinear::new`] for malformed breakpoints.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildPwlError {
    /// Fewer than two breakpoints were supplied.
    TooFewPoints,
    /// Breakpoint x-coordinates were not strictly increasing at the
    /// reported index.
    NotIncreasing {
        /// Index of the offending breakpoint.
        index: usize,
    },
}

impl fmt::Display for BuildPwlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildPwlError::TooFewPoints => write!(f, "need at least two breakpoints"),
            BuildPwlError::NotIncreasing { index } => {
                write!(f, "breakpoint x values not strictly increasing at index {index}")
            }
        }
    }
}

impl Error for BuildPwlError {}

/// A piecewise-linear function over sorted breakpoints.
///
/// §3.1 of the paper: *"For non-differentiable operations like the lookup
/// table, we can fit linear functions that strictly follow the trend of
/// the table to acquire the gradients."* The analytical model uses these
/// for e.g. latency tables keyed by structure size. Evaluation is generic
/// over [`Scalar`], so the same fit yields plain values on `f64` and
/// slopes on [`Dual`](crate::Dual) inputs.
///
/// Outside the breakpoint range the function extrapolates with the
/// nearest segment's slope, which keeps gradients meaningful at the
/// design-space boundary.
///
/// # Examples
///
/// ```
/// use dse_autodiff::{Dual, PiecewiseLinear, Scalar};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let table = PiecewiseLinear::new(vec![(1.0, 10.0), (2.0, 14.0), (4.0, 15.0)])?;
/// assert_eq!(table.eval(&1.5_f64), 12.0);
/// let x = Dual::variable(3.0, 0, 1);
/// assert_eq!(table.eval(&x).gradient()[0], 0.5); // slope of the 2→4 segment
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PiecewiseLinear {
    points: Vec<(f64, f64)>,
}

impl PiecewiseLinear {
    /// Builds a piecewise-linear function from `(x, y)` breakpoints.
    ///
    /// # Errors
    ///
    /// Returns [`BuildPwlError`] if fewer than two points are given or
    /// the x-coordinates are not strictly increasing.
    pub fn new(points: Vec<(f64, f64)>) -> Result<Self, BuildPwlError> {
        if points.len() < 2 {
            return Err(BuildPwlError::TooFewPoints);
        }
        for i in 1..points.len() {
            if points[i].0 <= points[i - 1].0 {
                return Err(BuildPwlError::NotIncreasing { index: i });
            }
        }
        Ok(Self { points })
    }

    /// The breakpoints this function interpolates.
    pub fn points(&self) -> &[(f64, f64)] {
        &self.points
    }

    /// Evaluates the function at `x`, propagating gradients when `S` is a
    /// dual number.
    pub fn eval<S: Scalar>(&self, x: &S) -> S {
        let xv = x.value();
        // Select the active segment by value; clamp to the outermost
        // segments for extrapolation.
        let seg = match self.points.iter().position(|&(px, _)| xv < px) {
            Some(0) => 0,
            Some(i) => i - 1,
            None => self.points.len() - 2,
        };
        let (x0, y0) = self.points[seg];
        let (x1, y1) = self.points[seg + 1];
        let slope = (y1 - y0) / (x1 - x0);
        (x.clone() - S::constant(x0)) * S::constant(slope) + S::constant(y0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Dual;
    use proptest::prelude::*;

    fn table() -> PiecewiseLinear {
        PiecewiseLinear::new(vec![(0.0, 0.0), (1.0, 2.0), (3.0, 3.0)]).unwrap()
    }

    #[test]
    fn interpolates_exactly_at_breakpoints() {
        let t = table();
        assert_eq!(t.eval(&0.0_f64), 0.0);
        assert_eq!(t.eval(&1.0_f64), 2.0);
        assert_eq!(t.eval(&3.0_f64), 3.0);
    }

    #[test]
    fn extrapolates_with_edge_slopes() {
        let t = table();
        assert_eq!(t.eval(&-1.0_f64), -2.0); // first segment slope 2
        assert_eq!(t.eval(&5.0_f64), 4.0); // last segment slope 0.5
    }

    #[test]
    fn gradient_matches_segment_slope() {
        let t = table();
        let x = Dual::variable(0.5, 0, 1);
        assert_eq!(t.eval(&x).gradient()[0], 2.0);
        let x = Dual::variable(2.0, 0, 1);
        assert_eq!(t.eval(&x).gradient()[0], 0.5);
    }

    #[test]
    fn rejects_bad_breakpoints() {
        assert_eq!(
            PiecewiseLinear::new(vec![(0.0, 0.0)]).unwrap_err(),
            BuildPwlError::TooFewPoints
        );
        assert_eq!(
            PiecewiseLinear::new(vec![(0.0, 0.0), (0.0, 1.0)]).unwrap_err(),
            BuildPwlError::NotIncreasing { index: 1 }
        );
    }

    proptest! {
        #[test]
        fn monotone_table_gives_monotone_function(x1 in -2.0_f64..5.0, x2 in -2.0_f64..5.0) {
            // `table()` is non-decreasing, so eval must preserve order.
            let t = table();
            let (lo, hi) = if x1 <= x2 { (x1, x2) } else { (x2, x1) };
            prop_assert!(t.eval(&lo) <= t.eval(&hi) + 1e-12);
        }
    }
}
