//! Regenerates the committed test fixtures under `tests/fixtures/`.
//!
//! The container has no RISC-V toolchain, so the fixtures are
//! assembled here with the same bit-level encoders the decoder is
//! tested against (`dse_ingest::rv64`), wrapped in a minimal ELF64
//! image. Run from the crate root:
//!
//! ```text
//! cargo run -p dse-ingest --example make_fixtures
//! ```
//!
//! Each fixture gets two files: `<name>.elf` (the binary) and
//! `<name>.profile.json` (the golden characterization the ingest
//! pipeline must keep reproducing). The matching `<name>.s` listings
//! are maintained by hand next to them as human-readable references.

use std::collections::HashMap;
use std::fs;
use std::path::Path;

use dse_ingest::rv64::{enc_b, enc_i, enc_r, enc_u};
use dse_ingest::{ingest_elf, ExecConfig};

/// One emitted parcel: a full word or a compressed half.
#[derive(Clone, Copy)]
enum Parcel {
    W(u32),
    H(u16),
}

/// A branch whose offset is resolved once all labels are placed.
struct Fixup {
    parcel_index: usize,
    funct3: u32,
    rs1: u32,
    rs2: u32,
    label: &'static str,
}

/// Minimal two-pass assembler: emit parcels, mark labels, patch
/// 32-bit conditional branches at the end.
struct Asm {
    parcels: Vec<Parcel>,
    pc: u64,
    pcs: Vec<u64>,
    labels: HashMap<&'static str, u64>,
    fixups: Vec<Fixup>,
}

impl Asm {
    fn new(base: u64) -> Self {
        Asm {
            parcels: Vec::new(),
            pc: base,
            pcs: Vec::new(),
            labels: HashMap::new(),
            fixups: Vec::new(),
        }
    }

    fn word(&mut self, w: u32) {
        self.pcs.push(self.pc);
        self.pc += 4;
        self.parcels.push(Parcel::W(w));
    }

    fn half(&mut self, h: u16) {
        self.pcs.push(self.pc);
        self.pc += 2;
        self.parcels.push(Parcel::H(h));
    }

    fn label(&mut self, name: &'static str) {
        self.labels.insert(name, self.pc);
    }

    fn branch(&mut self, funct3: u32, rs1: u32, rs2: u32, label: &'static str) {
        self.fixups.push(Fixup { parcel_index: self.parcels.len(), funct3, rs1, rs2, label });
        self.word(0); // patched later
    }

    fn assemble(mut self) -> Vec<u8> {
        for f in &self.fixups {
            let target = self.labels[f.label];
            let offset = target as i64 - self.pcs[f.parcel_index] as i64;
            self.parcels[f.parcel_index] =
                Parcel::W(enc_b(0x63, f.funct3, f.rs1, f.rs2, offset as i32));
        }
        let mut bytes = Vec::new();
        for p in self.parcels {
            match p {
                Parcel::W(w) => bytes.extend_from_slice(&w.to_le_bytes()),
                Parcel::H(h) => bytes.extend_from_slice(&h.to_le_bytes()),
            }
        }
        bytes
    }
}

/// Wraps raw text bytes in a minimal static ELF64: one `PT_LOAD` at
/// file offset 0x78 / vaddr `base + 0x78` (congruent mod 4096), entry
/// at the text start.
fn wrap_elf(base: u64, text: &[u8]) -> Vec<u8> {
    let entry = base + 0x78;
    let mut f = vec![0u8; 0x78];
    f[..4].copy_from_slice(&[0x7f, b'E', b'L', b'F']);
    f[4] = 2; // ELFCLASS64
    f[5] = 1; // ELFDATA2LSB
    f[6] = 1; // EV_CURRENT
    f[16..18].copy_from_slice(&2u16.to_le_bytes()); // ET_EXEC
    f[18..20].copy_from_slice(&243u16.to_le_bytes()); // EM_RISCV
    f[24..32].copy_from_slice(&entry.to_le_bytes());
    f[32..40].copy_from_slice(&64u64.to_le_bytes()); // e_phoff
    f[52..54].copy_from_slice(&64u16.to_le_bytes()); // e_ehsize
    f[54..56].copy_from_slice(&56u16.to_le_bytes()); // e_phentsize
    f[56..58].copy_from_slice(&1u16.to_le_bytes()); // e_phnum
    let ph = 64;
    f[ph..ph + 4].copy_from_slice(&1u32.to_le_bytes()); // PT_LOAD
    f[ph + 4..ph + 8].copy_from_slice(&5u32.to_le_bytes()); // R+X
    f[ph + 8..ph + 16].copy_from_slice(&0x78u64.to_le_bytes()); // p_offset
    f[ph + 16..ph + 24].copy_from_slice(&entry.to_le_bytes()); // p_vaddr
    f[ph + 24..ph + 32].copy_from_slice(&entry.to_le_bytes()); // p_paddr
    f[ph + 32..ph + 40].copy_from_slice(&(text.len() as u64).to_le_bytes()); // p_filesz
    f[ph + 40..ph + 48].copy_from_slice(&(text.len() as u64).to_le_bytes()); // p_memsz
    f[ph + 48..ph + 56].copy_from_slice(&2u64.to_le_bytes()); // p_align (min)
    f.extend_from_slice(text);
    f
}

const T0: u32 = 5;
const T1: u32 = 6;
const T2: u32 = 7;
const T3: u32 = 28;
const T4: u32 = 29;
const S0: u32 = 8;
const A0: u32 = 10;
const A1: u32 = 11;
const A2: u32 = 12;
const A3: u32 = 13;
const A4: u32 = 14;
const A5: u32 = 15;
const A7: u32 = 17;
const ECALL: u32 = 0x0000_0073;

/// RV64I-only fixture: fill a 256-element array, then sum it back.
/// Mirrors `loop_sum.s`.
fn loop_sum() -> Vec<u8> {
    let mut a = Asm::new(0x1_0000);
    a.word(enc_u(0x37, T0, 0x2_0000)); // lui  t0, 0x20    (buffer 0x20000)
    a.word(enc_i(0x13, T1, 0, 0, 0)); // li   t1, 0       (i)
    a.word(enc_i(0x13, T2, 0, 0, 256)); // li   t2, 256   (N)
    a.label("init");
    a.word(enc_i(0x13, T3, 1, T1, 3)); // slli t3, t1, 3
    a.word(enc_r(0x33, T3, 0, T3, T0, 0)); // add  t3, t3, t0
    a.word(dse_ingest::rv64::enc_s(0x23, 3, T3, T1, 0)); // sd t1, 0(t3)
    a.word(enc_i(0x13, T1, 0, T1, 1)); // addi t1, t1, 1
    a.branch(4, T1, T2, "init"); // blt  t1, t2, init
    a.word(enc_i(0x13, T1, 0, 0, 0)); // li   t1, 0
    a.word(enc_i(0x13, A0, 0, 0, 0)); // li   a0, 0       (sum)
    a.label("sum");
    a.word(enc_i(0x13, T3, 1, T1, 3)); // slli t3, t1, 3
    a.word(enc_r(0x33, T3, 0, T3, T0, 0)); // add  t3, t3, t0
    a.word(enc_i(0x03, T4, 3, T3, 0)); // ld   t4, 0(t3)
    a.word(enc_r(0x33, A0, 0, A0, T4, 0)); // add  a0, a0, t4
    a.word(enc_i(0x13, T1, 0, T1, 1)); // addi t1, t1, 1
    a.branch(4, T1, T2, "sum"); // blt  t1, t2, sum
    a.word(enc_i(0x13, A0, 7, A0, 0xff)); // andi a0, a0, 0xff
    a.word(enc_i(0x13, A7, 0, 0, 93)); // li   a7, 93     (exit)
    a.word(ECALL);
    wrap_elf(0x1_0000, &a.assemble())
}

/// RV64IMC fixture: strided store/load loops built from compressed
/// parcels plus an M-extension multiply. Mirrors `stride_c.s`.
fn stride_c() -> Vec<u8> {
    // Compressed encoders for the handful of forms this fixture uses.
    let c_li = |rd: u32, imm: i32| -> u16 {
        let imm = imm as u32;
        ((0b010u16) << 13)
            | (((imm >> 5) & 1) as u16) << 12
            | (rd as u16) << 7
            | ((imm & 0x1f) as u16) << 2
            | 0b01
    };
    // funct3 = 000, so no term at bits 15:13.
    let c_addi = |rd: u32, imm: i32| -> u16 {
        let imm = imm as u32;
        (((imm >> 5) & 1) as u16) << 12 | (rd as u16) << 7 | ((imm & 0x1f) as u16) << 2 | 0b01
    };
    let c_mv = |rd: u32, rs2: u32| -> u16 {
        ((0b100u16) << 13) | (rd as u16) << 7 | (rs2 as u16) << 2 | 0b10
    };
    let c_add = |rd: u32, rs2: u32| -> u16 {
        ((0b100u16) << 13) | (1u16 << 12) | (rd as u16) << 7 | (rs2 as u16) << 2 | 0b10
    };
    // funct3 = 000, so no term at bits 15:13.
    let c_slli = |rd: u32, shamt: u32| -> u16 {
        (((shamt >> 5) & 1) as u16) << 12 | (rd as u16) << 7 | ((shamt & 0x1f) as u16) << 2 | 0b10
    };
    let creg = |r: u32| -> u16 { (r - 8) as u16 };
    let c_sd = |rs2: u32, uimm: u32, rs1: u32| -> u16 {
        ((0b111u16) << 13)
            | (((uimm >> 3) & 0x7) as u16) << 10
            | creg(rs1) << 7
            | (((uimm >> 6) & 0x3) as u16) << 5
            | creg(rs2) << 2
    };
    let c_ld = |rd: u32, uimm: u32, rs1: u32| -> u16 {
        ((0b011u16) << 13)
            | (((uimm >> 3) & 0x7) as u16) << 10
            | creg(rs1) << 7
            | (((uimm >> 6) & 0x3) as u16) << 5
            | creg(rd) << 2
    };

    let mut a = Asm::new(0x1_0000);
    a.word(enc_u(0x37, A2, 0x3_0000)); // lui    a2, 0x30  (buffer)
    a.half(c_li(A3, 0)); //              c.li   a3, 0     (i)
    a.word(enc_i(0x13, A4, 0, 0, 128)); // li   a4, 128   (N)
    a.half(c_li(A5, 3)); //              c.li   a5, 3
    a.label("fill");
    a.word(enc_r(0x33, A1, 0, A3, A5, 1)); // mul a1, a3, a5
    a.half(c_mv(A0, A3)); //             c.mv   a0, a3
    a.half(c_slli(A0, 4)); //            c.slli a0, 4     (i*16)
    a.half(c_add(A0, A2)); //            c.add  a0, a2
    a.half(c_sd(A1, 0, A0)); //          c.sd   a1, 0(a0)
    a.half(c_ld(A1, 0, A0)); //          c.ld   a1, 0(a0)
    a.half(c_addi(A3, 1)); //            c.addi a3, 1
    a.branch(1, A3, A4, "fill"); //      bne    a3, a4, fill
    a.half(c_li(A3, 0)); //              c.li   a3, 0
    a.half(c_li(A1, 0)); //              c.li   a1, 0     (sum)
    a.word(enc_i(0x13, S0, 0, 0, 64)); // li    s0, 64
    a.label("gather");
    a.half(c_mv(A0, A3)); //             c.mv   a0, a3
    a.half(c_slli(A0, 5)); //            c.slli a0, 5     (every other)
    a.half(c_add(A0, A2)); //            c.add  a0, a2
    a.half(c_ld(A5, 0, A0)); //          c.ld   a5, 0(a0)
    a.half(c_add(A1, A5)); //            c.add  a1, a5
    a.half(c_addi(A3, 1)); //            c.addi a3, 1
    a.branch(1, A3, S0, "gather"); //    bne    a3, s0, gather
    a.word(enc_i(0x13, A0, 7, A1, 0xff)); // andi a0, a1, 0xff
    a.word(enc_i(0x13, A7, 0, 0, 93)); // li    a7, 93
    a.word(ECALL);
    wrap_elf(0x1_0000, &a.assemble())
}

fn main() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    fs::create_dir_all(&dir).expect("create fixtures dir");
    for (name, bytes, expected_exit) in
        [("loop_sum", loop_sum(), 128u64), ("stride_c", stride_c(), 64u64)]
    {
        let ingested = ingest_elf(name, &bytes, ExecConfig::default())
            .unwrap_or_else(|e| panic!("{name} does not ingest: {e}"));
        assert_eq!(
            ingested.exit_code, expected_exit,
            "{name}: wrong exit code — the program logic is broken"
        );
        let profile_json =
            serde_json::to_string_pretty(&ingested.profile).expect("serialize profile");
        fs::write(dir.join(format!("{name}.elf")), &bytes).expect("write elf");
        fs::write(dir.join(format!("{name}.profile.json")), profile_json + "\n")
            .expect("write profile");
        println!(
            "{name}: {} bytes, {} dynamic instructions, exit {}",
            bytes.len(),
            ingested.trace.len(),
            ingested.exit_code
        );
    }
}
