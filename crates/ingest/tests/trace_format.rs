//! Property tests for the on-disk trace format: round-trip identity,
//! byte-stable re-encode, and named failures on damaged input.

use dse_ingest::trace_file::{self, TRACE_MAGIC, TRACE_VERSION};
use dse_ingest::TraceFileError;
use dse_workloads::{BranchInfo, Instr, Op};
use proptest::prelude::*;

/// Strategy over well-formed instruction records: the op class decides
/// which optional fields are populated, mirroring what the executor
/// actually emits.
fn arb_instr() -> impl Strategy<Value = Instr> {
    proptest::strategy_fn(|rng| {
        let op = match rng.below(6) {
            0 => Op::IntAlu,
            1 => Op::IntMul,
            2 => Op::Load,
            3 => Op::Store,
            4 => Op::FpAlu,
            _ => Op::Branch,
        };
        let mut dep = || (rng.unit() < 0.75).then(|| rng.below(100_000) as u32 + 1);
        let deps = [dep(), dep()];
        // Stress both ends of the varint/zigzag range: small local
        // deltas and full-width 64-bit addresses.
        let addr = matches!(op, Op::Load | Op::Store).then(|| {
            if rng.unit() < 0.5 {
                0x4000_0000 + rng.below(1 << 20)
            } else {
                rng.below(u64::MAX)
            }
        });
        let branch = (op == Op::Branch).then(|| BranchInfo {
            site: rng.below(u64::from(u16::MAX) + 1) as u16,
            taken: rng.unit() < 0.5,
            mispredicted: rng.unit() < 0.5,
        });
        Instr { op, deps, addr, branch }
    })
}

fn arb_trace() -> impl Strategy<Value = Vec<Instr>> {
    proptest::collection::vec(arb_instr(), 0..300)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn encode_then_decode_is_identity(trace in arb_trace()) {
        let bytes = trace_file::encode_trace(&trace).unwrap();
        let decoded = trace_file::decode_trace(&bytes).unwrap();
        prop_assert_eq!(decoded, trace);
    }

    #[test]
    fn re_encode_is_byte_identical(trace in arb_trace()) {
        let bytes = trace_file::encode_trace(&trace).unwrap();
        let decoded = trace_file::decode_trace(&bytes).unwrap();
        let again = trace_file::encode_trace(&decoded).unwrap();
        prop_assert_eq!(again, bytes);
    }

    #[test]
    fn any_truncation_is_a_named_error(trace in arb_trace(), frac in 0.0f64..1.0) {
        let bytes = trace_file::encode_trace(&trace).unwrap();
        // Cut strictly inside the stream (the trailing end marker is 8
        // bytes, so any cut before the end loses something).
        let cut = ((bytes.len() - 1) as f64 * frac) as usize;
        let err = trace_file::decode_trace(&bytes[..cut]).unwrap_err();
        prop_assert!(
            matches!(err, TraceFileError::Truncated(_) | TraceFileError::Corrupt(_)),
            "cut at {} of {} gave {:?}", cut, bytes.len(), err
        );
    }

    #[test]
    fn flipped_magic_is_bad_magic(byte in 0usize..4, trace in arb_trace()) {
        let mut bytes = trace_file::encode_trace(&trace).unwrap();
        bytes[byte] ^= 0xff;
        prop_assert!(matches!(
            trace_file::decode_trace(&bytes).unwrap_err(),
            TraceFileError::BadMagic
        ));
    }

    #[test]
    fn corrupting_a_payload_never_panics(trace in arb_trace(), pos in 16usize..4096, bit in 0u8..8) {
        let bytes = trace_file::encode_trace(&trace).unwrap();
        prop_assume!(pos < bytes.len());
        let mut damaged = bytes.clone();
        damaged[pos] ^= 1 << bit;
        // Damage may decode to a different valid trace (flipped value
        // bits) or fail with a named error — but it must never panic
        // and never round-trip to the original bytes while claiming a
        // different payload.
        match trace_file::decode_trace(&damaged) {
            Ok(decoded) => {
                let re = trace_file::encode_trace(&decoded);
                if let Ok(re) = re {
                    // Whatever decoded must re-encode stably.
                    prop_assert_eq!(trace_file::decode_trace(&re).unwrap(), decoded);
                }
            }
            Err(
                TraceFileError::Truncated(_)
                | TraceFileError::Corrupt(_)
                | TraceFileError::BadMagic
                | TraceFileError::FutureVersion(_),
            ) => {}
            Err(other) => prop_assert!(false, "unexpected error class: {:?}", other),
        }
    }
}

#[test]
fn future_version_is_rejected_by_name() {
    let mut bytes = trace_file::encode_trace(&[Instr::nop()]).unwrap();
    assert_eq!(&bytes[..4], &TRACE_MAGIC);
    let future = TRACE_VERSION + 1;
    bytes[4..6].copy_from_slice(&future.to_le_bytes());
    match trace_file::decode_trace(&bytes).unwrap_err() {
        TraceFileError::FutureVersion(v) => assert_eq!(v, future),
        other => panic!("expected FutureVersion, got {other:?}"),
    }
}

#[test]
fn error_messages_name_the_failure() {
    let text = TraceFileError::BadMagic.to_string();
    assert!(text.contains("ADTF"), "{text}");
    let text = TraceFileError::FutureVersion(7).to_string();
    assert!(text.contains('7') && text.contains("version"), "{text}");
}
