//! Streaming at scale: a multi-million-record trace flows through the
//! writer and back through the reader with memory bounded by the chunk
//! size — the full `Vec<Instr>` never exists on the read side.

use dse_ingest::trace_file::{TraceReader, TraceWriter, MAX_CHUNK_PAYLOAD_BYTES};
use dse_workloads::{Instr, Op};

/// Deterministic synthetic instruction stream, generated on the fly so
/// the test itself never materializes the trace either.
fn nth_instr(i: u64) -> Instr {
    match i % 5 {
        0 => Instr {
            op: Op::Load,
            deps: [Some((i % 97 + 1) as u32), None],
            addr: Some(0x4000_0000 + (i % 4096) * 64),
            branch: None,
        },
        1 => Instr {
            op: Op::Store,
            deps: [Some(1), Some((i % 13 + 1) as u32)],
            addr: Some(0x8000_0000 + i * 8),
            branch: None,
        },
        2 => Instr::branch((i % 512) as u16, i.is_multiple_of(3), i.is_multiple_of(17)),
        3 => Instr { op: Op::IntMul, deps: [Some(2), None], addr: None, branch: None },
        _ => Instr::nop(),
    }
}

#[test]
fn a_million_instruction_trace_streams_with_chunk_bounded_memory() {
    const N: u64 = 1_200_000;

    let mut writer = TraceWriter::new(Vec::new()).unwrap();
    for i in 0..N {
        writer.write(&nth_instr(i)).unwrap();
    }
    assert_eq!(writer.records_written(), N);
    let bytes = writer.finish().unwrap();

    // The format must actually be compact: well under the ~40 B/record
    // an in-memory `Instr` costs.
    assert!(
        bytes.len() < N as usize * 8,
        "trace file is {} bytes for {} records — not compact",
        bytes.len(),
        N
    );

    // Stream it back record by record. The reader's only growable
    // allocation is its reused chunk payload buffer, whose capacity is
    // bounded by construction — assert that bound holds at the start,
    // mid-stream and at the end, which pins peak resident memory to
    // O(chunk), independent of N.
    let mut reader = TraceReader::new(&bytes[..]).unwrap();
    assert!(reader.buffer_capacity() <= MAX_CHUNK_PAYLOAD_BYTES);
    let mut count = 0u64;
    while let Some(item) = reader.next() {
        let instr = item.unwrap();
        assert_eq!(instr, nth_instr(count), "record {count} corrupted in flight");
        count += 1;
        if count.is_multiple_of(300_000) {
            assert!(reader.buffer_capacity() <= MAX_CHUNK_PAYLOAD_BYTES);
        }
    }
    assert_eq!(count, N);
    assert!(reader.buffer_capacity() <= MAX_CHUNK_PAYLOAD_BYTES);
}
