# stride_c — RV64IMC fixture: strided store/load loops built from
# compressed parcels plus an M-extension multiply.
#
# This listing is a human-readable reference. The committed
# `stride_c.elf` is NOT built with a RISC-V toolchain (the CI image
# has none); it is assembled bit-for-bit by the in-tree generator:
#
#     cargo run -p dse-ingest --example make_fixtures
#
# which uses the same instruction encoders the decoder tests verify.
# An equivalent external build would be:
#
#     riscv64-unknown-elf-gcc -nostdlib -static -march=rv64imc -mabi=lp64 \
#         -Ttext=0x10078 -o stride_c.elf stride_c.s
#
# Exit code: sum over k in 0..64 of buf[2k] = 6 * sum(0..63)
#            = 12096; 12096 & 0xff = 64.

    .globl _start
_start:
    lui    a2, %hi(0x30000)     # buffer base
    c.li   a3, 0                # i
    li     a4, 128              # N
    c.li   a5, 3
fill:
    mul    a1, a3, a5           # a1 = 3*i
    c.mv   a0, a3
    c.slli a0, 4                # byte offset = i*16
    c.add  a0, a2
    c.sd   a1, 0(a0)            # buf[i] = 3*i (stride 16)
    c.ld   a1, 0(a0)            # load it straight back
    c.addi a3, 1
    bne    a3, a4, fill
    c.li   a3, 0
    c.li   a1, 0                # sum
    li     s0, 64
gather:
    c.mv   a0, a3
    c.slli a0, 5                # every other element (stride 32)
    c.add  a0, a2
    c.ld   a5, 0(a0)
    c.add  a1, a5
    c.addi a3, 1
    bne    a3, s0, gather
    andi   a0, a1, 0xff         # exit code
    li     a7, 93               # SYS_exit
    ecall
