# loop_sum — RV64I fixture: fill a 256-element array, sum it back.
#
# This listing is a human-readable reference. The committed
# `loop_sum.elf` is NOT built with a RISC-V toolchain (the CI image
# has none); it is assembled bit-for-bit by the in-tree generator:
#
#     cargo run -p dse-ingest --example make_fixtures
#
# which uses the same instruction encoders the decoder tests verify.
# An equivalent external build would be:
#
#     riscv64-unknown-elf-gcc -nostdlib -static -march=rv64i -mabi=lp64 \
#         -Ttext=0x10078 -o loop_sum.elf loop_sum.s
#
# Exit code: sum(0..255) & 0xff = 32640 & 0xff = 128.

    .globl _start
_start:
    lui   t0, %hi(0x20000)      # buffer base
    li    t1, 0                 # i
    li    t2, 256               # N
init:
    slli  t3, t1, 3
    add   t3, t3, t0
    sd    t1, 0(t3)             # buf[i] = i
    addi  t1, t1, 1
    blt   t1, t2, init
    li    t1, 0
    li    a0, 0                 # sum
sum:
    slli  t3, t1, 3
    add   t3, t3, t0
    ld    t4, 0(t3)
    add   a0, a0, t4
    addi  t1, t1, 1
    blt   t1, t2, sum
    andi  a0, a0, 0xff          # exit code
    li    a7, 93                # SYS_exit
    ecall
