//! RV64IMC instruction decoding.
//!
//! The decoder covers the integer subset a statically linked no-libc
//! program needs: RV64I (ALU, branches, loads/stores, `jal`/`jalr`,
//! `lui`/`auipc`), the M extension, `fence` (a no-op here) and
//! `ecall`/`ebreak`. The C extension is handled by [`expand16`], which
//! rewrites each 16-bit parcel into its exact 32-bit equivalent and
//! feeds it back through [`decode32`] — one decoder, one set of
//! semantics.
//!
//! The matching bit-level *encoders* live here too: the committed test
//! fixtures are assembled by `examples/make_fixtures.rs` with these
//! same helpers, so the decoder and the fixture generator can never
//! drift apart.

/// Register-register ALU operation selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AluOp {
    /// Addition (`sub` is [`AluOp::Sub`]).
    Add,
    /// Subtraction.
    Sub,
    /// Logical left shift.
    Sll,
    /// Signed set-less-than.
    Slt,
    /// Unsigned set-less-than.
    Sltu,
    /// Bitwise exclusive or.
    Xor,
    /// Logical right shift.
    Srl,
    /// Arithmetic right shift.
    Sra,
    /// Bitwise or.
    Or,
    /// Bitwise and.
    And,
}

/// M-extension multiply/divide selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MulOp {
    /// Low 64 bits of the product.
    Mul,
    /// High bits, signed × signed.
    Mulh,
    /// High bits, signed × unsigned.
    Mulhsu,
    /// High bits, unsigned × unsigned.
    Mulhu,
    /// Signed division.
    Div,
    /// Unsigned division.
    Divu,
    /// Signed remainder.
    Rem,
    /// Unsigned remainder.
    Remu,
}

/// Load width/sign selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoadOp {
    /// Sign-extended byte.
    Lb,
    /// Sign-extended halfword.
    Lh,
    /// Sign-extended word.
    Lw,
    /// Doubleword.
    Ld,
    /// Zero-extended byte.
    Lbu,
    /// Zero-extended halfword.
    Lhu,
    /// Zero-extended word.
    Lwu,
}

impl LoadOp {
    /// Access width in bytes.
    pub fn width(self) -> u64 {
        match self {
            LoadOp::Lb | LoadOp::Lbu => 1,
            LoadOp::Lh | LoadOp::Lhu => 2,
            LoadOp::Lw | LoadOp::Lwu => 4,
            LoadOp::Ld => 8,
        }
    }
}

/// Store width selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoreOp {
    /// Byte.
    Sb,
    /// Halfword.
    Sh,
    /// Word.
    Sw,
    /// Doubleword.
    Sd,
}

impl StoreOp {
    /// Access width in bytes.
    pub fn width(self) -> u64 {
        match self {
            StoreOp::Sb => 1,
            StoreOp::Sh => 2,
            StoreOp::Sw => 4,
            StoreOp::Sd => 8,
        }
    }
}

/// Conditional-branch comparison selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BranchOp {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Signed less-than.
    Lt,
    /// Signed greater-or-equal.
    Ge,
    /// Unsigned less-than.
    Ltu,
    /// Unsigned greater-or-equal.
    Geu,
}

/// One decoded RV64IMC instruction, ready to execute.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decoded {
    /// `lui rd, imm`.
    Lui {
        /// Destination register.
        rd: u8,
        /// Sign-extended upper immediate (low 12 bits zero).
        imm: i64,
    },
    /// `auipc rd, imm`.
    Auipc {
        /// Destination register.
        rd: u8,
        /// Sign-extended upper immediate.
        imm: i64,
    },
    /// `jal rd, offset`.
    Jal {
        /// Link register (x0 for a plain jump).
        rd: u8,
        /// PC-relative byte offset.
        offset: i64,
    },
    /// `jalr rd, rs1, offset`.
    Jalr {
        /// Link register.
        rd: u8,
        /// Base register.
        rs1: u8,
        /// Byte offset.
        offset: i64,
    },
    /// Conditional branch.
    Branch {
        /// Comparison.
        op: BranchOp,
        /// Left operand register.
        rs1: u8,
        /// Right operand register.
        rs2: u8,
        /// PC-relative byte offset.
        offset: i64,
    },
    /// Memory load.
    Load {
        /// Width/sign.
        op: LoadOp,
        /// Destination register.
        rd: u8,
        /// Base register.
        rs1: u8,
        /// Byte offset.
        offset: i64,
    },
    /// Memory store.
    Store {
        /// Width.
        op: StoreOp,
        /// Base register.
        rs1: u8,
        /// Source register.
        rs2: u8,
        /// Byte offset.
        offset: i64,
    },
    /// Register-immediate ALU operation (`addi`, `slti`, shifts, …).
    AluImm {
        /// Operation (immediate forms of `sub` do not exist).
        op: AluOp,
        /// Destination register.
        rd: u8,
        /// Source register.
        rs1: u8,
        /// Sign-extended immediate (shift amount for shifts).
        imm: i64,
        /// 32-bit (`…w`) variant.
        word: bool,
    },
    /// Register-register ALU operation.
    Alu {
        /// Operation.
        op: AluOp,
        /// Destination register.
        rd: u8,
        /// Left source register.
        rs1: u8,
        /// Right source register.
        rs2: u8,
        /// 32-bit (`…w`) variant.
        word: bool,
    },
    /// M-extension multiply/divide.
    MulDiv {
        /// Operation.
        op: MulOp,
        /// Destination register.
        rd: u8,
        /// Left source register.
        rs1: u8,
        /// Right source register.
        rs2: u8,
        /// 32-bit (`…w`) variant.
        word: bool,
    },
    /// `fence`/`fence.i` — an architectural no-op for this executor.
    Fence,
    /// `ecall`.
    Ecall,
    /// `ebreak`.
    Ebreak,
}

/// Byte length of the instruction parcel starting with `lo16`: 2 for a
/// compressed instruction, 4 otherwise.
pub fn parcel_len(lo16: u16) -> u64 {
    if lo16 & 0b11 == 0b11 {
        4
    } else {
        2
    }
}

fn sext(value: u32, bits: u32) -> i64 {
    let shift = 64 - bits;
    ((value as i64) << shift) >> shift
}

fn rd(word: u32) -> u8 {
    ((word >> 7) & 0x1f) as u8
}

fn rs1(word: u32) -> u8 {
    ((word >> 15) & 0x1f) as u8
}

fn rs2(word: u32) -> u8 {
    ((word >> 20) & 0x1f) as u8
}

fn funct3(word: u32) -> u32 {
    (word >> 12) & 0x7
}

fn funct7(word: u32) -> u32 {
    word >> 25
}

/// Decodes one 32-bit instruction word; `None` for anything outside the
/// supported subset.
pub fn decode32(word: u32) -> Option<Decoded> {
    let i_imm = || sext(word >> 20, 12);
    match word & 0x7f {
        0x37 => Some(Decoded::Lui { rd: rd(word), imm: sext(word & 0xffff_f000, 32) }),
        0x17 => Some(Decoded::Auipc { rd: rd(word), imm: sext(word & 0xffff_f000, 32) }),
        0x6f => {
            let imm = ((word >> 31) << 20)
                | (((word >> 12) & 0xff) << 12)
                | (((word >> 20) & 0x1) << 11)
                | (((word >> 21) & 0x3ff) << 1);
            Some(Decoded::Jal { rd: rd(word), offset: sext(imm, 21) })
        }
        0x67 if funct3(word) == 0 => {
            Some(Decoded::Jalr { rd: rd(word), rs1: rs1(word), offset: i_imm() })
        }
        0x63 => {
            let op = match funct3(word) {
                0 => BranchOp::Eq,
                1 => BranchOp::Ne,
                4 => BranchOp::Lt,
                5 => BranchOp::Ge,
                6 => BranchOp::Ltu,
                7 => BranchOp::Geu,
                _ => return None,
            };
            let imm = ((word >> 31) << 12)
                | (((word >> 7) & 0x1) << 11)
                | (((word >> 25) & 0x3f) << 5)
                | (((word >> 8) & 0xf) << 1);
            Some(Decoded::Branch { op, rs1: rs1(word), rs2: rs2(word), offset: sext(imm, 13) })
        }
        0x03 => {
            let op = match funct3(word) {
                0 => LoadOp::Lb,
                1 => LoadOp::Lh,
                2 => LoadOp::Lw,
                3 => LoadOp::Ld,
                4 => LoadOp::Lbu,
                5 => LoadOp::Lhu,
                6 => LoadOp::Lwu,
                _ => return None,
            };
            Some(Decoded::Load { op, rd: rd(word), rs1: rs1(word), offset: i_imm() })
        }
        0x23 => {
            let op = match funct3(word) {
                0 => StoreOp::Sb,
                1 => StoreOp::Sh,
                2 => StoreOp::Sw,
                3 => StoreOp::Sd,
                _ => return None,
            };
            let offset = sext(((word >> 25) << 5) | ((word >> 7) & 0x1f), 12);
            Some(Decoded::Store { op, rs1: rs1(word), rs2: rs2(word), offset })
        }
        0x13 => {
            let (op, imm) = match funct3(word) {
                0 => (AluOp::Add, i_imm()),
                2 => (AluOp::Slt, i_imm()),
                3 => (AluOp::Sltu, i_imm()),
                4 => (AluOp::Xor, i_imm()),
                6 => (AluOp::Or, i_imm()),
                7 => (AluOp::And, i_imm()),
                1 if funct7(word) & !1 == 0 => (AluOp::Sll, ((word >> 20) & 0x3f) as i64),
                5 if funct7(word) & !1 == 0 => (AluOp::Srl, ((word >> 20) & 0x3f) as i64),
                5 if funct7(word) & !1 == 0x20 => (AluOp::Sra, ((word >> 20) & 0x3f) as i64),
                _ => return None,
            };
            Some(Decoded::AluImm { op, rd: rd(word), rs1: rs1(word), imm, word: false })
        }
        0x1b => {
            let (op, imm) = match funct3(word) {
                0 => (AluOp::Add, i_imm()),
                1 if funct7(word) == 0 => (AluOp::Sll, ((word >> 20) & 0x1f) as i64),
                5 if funct7(word) == 0 => (AluOp::Srl, ((word >> 20) & 0x1f) as i64),
                5 if funct7(word) == 0x20 => (AluOp::Sra, ((word >> 20) & 0x1f) as i64),
                _ => return None,
            };
            Some(Decoded::AluImm { op, rd: rd(word), rs1: rs1(word), imm, word: true })
        }
        opc @ (0x33 | 0x3b) => {
            let word_op = opc == 0x3b;
            let (rd, rs1, rs2) = (rd(word), rs1(word), rs2(word));
            if funct7(word) == 1 {
                let op = match funct3(word) {
                    0 => MulOp::Mul,
                    1 if !word_op => MulOp::Mulh,
                    2 if !word_op => MulOp::Mulhsu,
                    3 if !word_op => MulOp::Mulhu,
                    4 => MulOp::Div,
                    5 => MulOp::Divu,
                    6 => MulOp::Rem,
                    7 => MulOp::Remu,
                    _ => return None,
                };
                return Some(Decoded::MulDiv { op, rd, rs1, rs2, word: word_op });
            }
            let op = match (funct3(word), funct7(word)) {
                (0, 0) => AluOp::Add,
                (0, 0x20) => AluOp::Sub,
                (1, 0) => AluOp::Sll,
                (2, 0) if !word_op => AluOp::Slt,
                (3, 0) if !word_op => AluOp::Sltu,
                (4, 0) if !word_op => AluOp::Xor,
                (5, 0) => AluOp::Srl,
                (5, 0x20) => AluOp::Sra,
                (6, 0) if !word_op => AluOp::Or,
                (7, 0) if !word_op => AluOp::And,
                _ => return None,
            };
            Some(Decoded::Alu { op, rd, rs1, rs2, word: word_op })
        }
        0x0f => Some(Decoded::Fence),
        0x73 => match word >> 7 {
            0 => Some(Decoded::Ecall),
            0x2000 => Some(Decoded::Ebreak),
            _ => None,
        },
        _ => None,
    }
}

/// Maps a 3-bit compressed register field to the full register number
/// (x8–x15).
fn creg(bits: u16) -> u32 {
    (bits as u32 & 0x7) + 8
}

/// Expands one 16-bit C-extension parcel into its 32-bit equivalent;
/// `None` for illegal or unsupported (floating-point) encodings.
pub fn expand16(half: u16) -> Option<u32> {
    let h = half as u32;
    let op = h & 0b11;
    let funct3 = (h >> 13) & 0b111;
    let bit = |n: u32| (h >> n) & 1;
    match (op, funct3) {
        (0b00, 0b000) => {
            // c.addi4spn rd', nzuimm -> addi rd', x2, nzuimm
            let nzuimm =
                (((h >> 7) & 0xf) << 6) | (((h >> 11) & 0x3) << 4) | (bit(5) << 3) | (bit(6) << 2);
            if nzuimm == 0 {
                return None;
            }
            Some(enc_i(0x13, creg(half >> 2), 0, 2, nzuimm as i32))
        }
        (0b00, 0b010) => {
            // c.lw rd', uimm(rs1')
            let uimm = (((h >> 10) & 0x7) << 3) | (bit(6) << 2) | (bit(5) << 6);
            Some(enc_i(0x03, creg(half >> 2), 2, creg(half >> 7), uimm as i32))
        }
        (0b00, 0b011) => {
            // c.ld rd', uimm(rs1')
            let uimm = (((h >> 10) & 0x7) << 3) | (((h >> 5) & 0x3) << 6);
            Some(enc_i(0x03, creg(half >> 2), 3, creg(half >> 7), uimm as i32))
        }
        (0b00, 0b110) => {
            // c.sw rs2', uimm(rs1')
            let uimm = (((h >> 10) & 0x7) << 3) | (bit(6) << 2) | (bit(5) << 6);
            Some(enc_s(0x23, 2, creg(half >> 7), creg(half >> 2), uimm as i32))
        }
        (0b00, 0b111) => {
            // c.sd rs2', uimm(rs1')
            let uimm = (((h >> 10) & 0x7) << 3) | (((h >> 5) & 0x3) << 6);
            Some(enc_s(0x23, 3, creg(half >> 7), creg(half >> 2), uimm as i32))
        }
        (0b01, 0b000) => {
            // c.addi rd, imm (c.nop when rd = 0)
            let imm = sext((bit(12) << 5) | ((h >> 2) & 0x1f), 6) as i32;
            let r = (h >> 7) & 0x1f;
            Some(enc_i(0x13, r, 0, r, imm))
        }
        (0b01, 0b001) => {
            // c.addiw rd, imm (rd != 0)
            let r = (h >> 7) & 0x1f;
            if r == 0 {
                return None;
            }
            let imm = sext((bit(12) << 5) | ((h >> 2) & 0x1f), 6) as i32;
            Some(enc_i(0x1b, r, 0, r, imm))
        }
        (0b01, 0b010) => {
            // c.li rd, imm -> addi rd, x0, imm
            let imm = sext((bit(12) << 5) | ((h >> 2) & 0x1f), 6) as i32;
            Some(enc_i(0x13, (h >> 7) & 0x1f, 0, 0, imm))
        }
        (0b01, 0b011) => {
            let r = (h >> 7) & 0x1f;
            if r == 2 {
                // c.addi16sp -> addi x2, x2, imm
                let imm = sext(
                    (bit(12) << 9)
                        | (bit(6) << 4)
                        | (bit(5) << 6)
                        | (((h >> 3) & 0x3) << 7)
                        | (bit(2) << 5),
                    10,
                ) as i32;
                if imm == 0 {
                    return None;
                }
                Some(enc_i(0x13, 2, 0, 2, imm))
            } else {
                // c.lui rd, imm
                let imm = sext((bit(12) << 17) | (((h >> 2) & 0x1f) << 12), 18) as i32;
                if imm == 0 || r == 0 {
                    return None;
                }
                Some(enc_u(0x37, r, imm))
            }
        }
        (0b01, 0b100) => {
            let r = creg(half >> 7);
            match (h >> 10) & 0b11 {
                0b00 | 0b01 => {
                    // c.srli / c.srai
                    let shamt = ((bit(12) << 5) | ((h >> 2) & 0x1f)) as i32;
                    let funct7: u32 = if (h >> 10) & 1 == 1 { 0x20 } else { 0 };
                    Some(enc_i(0x13, r, 5, r, shamt | ((funct7 as i32) << 5)))
                }
                0b10 => {
                    // c.andi
                    let imm = sext((bit(12) << 5) | ((h >> 2) & 0x1f), 6) as i32;
                    Some(enc_i(0x13, r, 7, r, imm))
                }
                _ => {
                    let r2 = creg(half >> 2);
                    match (bit(12), (h >> 5) & 0b11) {
                        (0, 0b00) => Some(enc_r(0x33, r, 0, r, r2, 0x20)), // c.sub
                        (0, 0b01) => Some(enc_r(0x33, r, 4, r, r2, 0)),    // c.xor
                        (0, 0b10) => Some(enc_r(0x33, r, 6, r, r2, 0)),    // c.or
                        (0, 0b11) => Some(enc_r(0x33, r, 7, r, r2, 0)),    // c.and
                        (1, 0b00) => Some(enc_r(0x3b, r, 0, r, r2, 0x20)), // c.subw
                        (1, 0b01) => Some(enc_r(0x3b, r, 0, r, r2, 0)),    // c.addw
                        _ => None,
                    }
                }
            }
        }
        (0b01, 0b101) => {
            // c.j -> jal x0, imm
            let imm = sext(
                (bit(12) << 11)
                    | (bit(11) << 4)
                    | (((h >> 9) & 0x3) << 8)
                    | (bit(8) << 10)
                    | (bit(7) << 6)
                    | (bit(6) << 7)
                    | (((h >> 3) & 0x7) << 1)
                    | (bit(2) << 5),
                12,
            ) as i32;
            Some(enc_j(0x6f, 0, imm))
        }
        (0b01, f @ (0b110 | 0b111)) => {
            // c.beqz / c.bnez rs1', imm
            let imm = sext(
                (bit(12) << 8)
                    | (((h >> 10) & 0x3) << 3)
                    | (((h >> 5) & 0x3) << 6)
                    | (((h >> 3) & 0x3) << 1)
                    | (bit(2) << 5),
                9,
            ) as i32;
            let funct = if f == 0b110 { 0 } else { 1 };
            Some(enc_b(0x63, funct, creg(half >> 7), 0, imm))
        }
        (0b10, 0b000) => {
            // c.slli rd, shamt
            let r = (h >> 7) & 0x1f;
            let shamt = ((bit(12) << 5) | ((h >> 2) & 0x1f)) as i32;
            Some(enc_i(0x13, r, 1, r, shamt))
        }
        (0b10, 0b010) => {
            // c.lwsp rd, uimm(x2)
            let r = (h >> 7) & 0x1f;
            if r == 0 {
                return None;
            }
            let uimm = (bit(12) << 5) | (((h >> 4) & 0x7) << 2) | (((h >> 2) & 0x3) << 6);
            Some(enc_i(0x03, r, 2, 2, uimm as i32))
        }
        (0b10, 0b011) => {
            // c.ldsp rd, uimm(x2)
            let r = (h >> 7) & 0x1f;
            if r == 0 {
                return None;
            }
            let uimm = (bit(12) << 5) | (((h >> 5) & 0x3) << 3) | (((h >> 2) & 0x7) << 6);
            Some(enc_i(0x03, r, 3, 2, uimm as i32))
        }
        (0b10, 0b100) => {
            let r1 = (h >> 7) & 0x1f;
            let r2 = (h >> 2) & 0x1f;
            match (bit(12), r1, r2) {
                (0, 0, _) => None,
                (0, _, 0) => Some(enc_i(0x67, 0, 0, r1, 0)), // c.jr
                (0, _, _) => Some(enc_r(0x33, r1, 0, 0, r2, 0)), // c.mv
                (1, 0, 0) => Some(0x0010_0073),              // c.ebreak
                (1, _, 0) => Some(enc_i(0x67, 1, 0, r1, 0)), // c.jalr
                _ => Some(enc_r(0x33, r1, 0, r1, r2, 0)),    // c.add
            }
        }
        (0b10, 0b110) => {
            // c.swsp rs2, uimm(x2)
            let uimm = (((h >> 9) & 0xf) << 2) | (((h >> 7) & 0x3) << 6);
            Some(enc_s(0x23, 2, 2, (h >> 2) & 0x1f, uimm as i32))
        }
        (0b10, 0b111) => {
            // c.sdsp rs2, uimm(x2)
            let uimm = (((h >> 10) & 0x7) << 3) | (((h >> 7) & 0x7) << 6);
            Some(enc_s(0x23, 3, 2, (h >> 2) & 0x1f, uimm as i32))
        }
        _ => None,
    }
}

// --- encoders (shared with the fixture assembler) ---

/// Encodes an R-type instruction.
pub fn enc_r(opcode: u32, rd: u32, funct3: u32, rs1: u32, rs2: u32, funct7: u32) -> u32 {
    opcode | (rd << 7) | (funct3 << 12) | (rs1 << 15) | (rs2 << 20) | (funct7 << 25)
}

/// Encodes an I-type instruction (12-bit signed immediate).
pub fn enc_i(opcode: u32, rd: u32, funct3: u32, rs1: u32, imm: i32) -> u32 {
    opcode | (rd << 7) | (funct3 << 12) | (rs1 << 15) | (((imm as u32) & 0xfff) << 20)
}

/// Encodes an S-type (store) instruction.
pub fn enc_s(opcode: u32, funct3: u32, rs1: u32, rs2: u32, imm: i32) -> u32 {
    let imm = imm as u32;
    opcode
        | ((imm & 0x1f) << 7)
        | (funct3 << 12)
        | (rs1 << 15)
        | (rs2 << 20)
        | (((imm >> 5) & 0x7f) << 25)
}

/// Encodes a B-type (conditional branch) instruction.
pub fn enc_b(opcode: u32, funct3: u32, rs1: u32, rs2: u32, imm: i32) -> u32 {
    let imm = imm as u32;
    opcode
        | (((imm >> 11) & 1) << 7)
        | (((imm >> 1) & 0xf) << 8)
        | (funct3 << 12)
        | (rs1 << 15)
        | (rs2 << 20)
        | (((imm >> 5) & 0x3f) << 25)
        | (((imm >> 12) & 1) << 31)
}

/// Encodes a U-type instruction; `imm` carries the full value with its
/// low 12 bits zero.
pub fn enc_u(opcode: u32, rd: u32, imm: i32) -> u32 {
    opcode | (rd << 7) | ((imm as u32) & 0xffff_f000)
}

/// Encodes a J-type (`jal`) instruction with a byte offset.
pub fn enc_j(opcode: u32, rd: u32, imm: i32) -> u32 {
    let imm = imm as u32;
    opcode
        | (rd << 7)
        | (((imm >> 12) & 0xff) << 12)
        | (((imm >> 11) & 1) << 20)
        | (((imm >> 1) & 0x3ff) << 21)
        | (((imm >> 20) & 1) << 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_encodings_round_trip_through_the_decoder() {
        // addi a0, x0, 42
        assert_eq!(
            decode32(enc_i(0x13, 10, 0, 0, 42)),
            Some(Decoded::AluImm { op: AluOp::Add, rd: 10, rs1: 0, imm: 42, word: false })
        );
        // sub t0, t1, t2
        assert_eq!(
            decode32(enc_r(0x33, 5, 0, 6, 7, 0x20)),
            Some(Decoded::Alu { op: AluOp::Sub, rd: 5, rs1: 6, rs2: 7, word: false })
        );
        // mul a4, a0, a0
        assert_eq!(
            decode32(enc_r(0x33, 14, 0, 10, 10, 1)),
            Some(Decoded::MulDiv { op: MulOp::Mul, rd: 14, rs1: 10, rs2: 10, word: false })
        );
        // ld t5, 8(t3)
        assert_eq!(
            decode32(enc_i(0x03, 30, 3, 28, 8)),
            Some(Decoded::Load { op: LoadOp::Ld, rd: 30, rs1: 28, offset: 8 })
        );
        // sd t0, -16(sp)
        assert_eq!(
            decode32(enc_s(0x23, 3, 2, 5, -16)),
            Some(Decoded::Store { op: StoreOp::Sd, rs1: 2, rs2: 5, offset: -16 })
        );
        // blt t0, t1, -8
        assert_eq!(
            decode32(enc_b(0x63, 4, 5, 6, -8)),
            Some(Decoded::Branch { op: BranchOp::Lt, rs1: 5, rs2: 6, offset: -8 })
        );
        // jal ra, 2048
        assert_eq!(decode32(enc_j(0x6f, 1, 2048)), Some(Decoded::Jal { rd: 1, offset: 2048 }));
        // lui t2, 0x10000
        assert_eq!(decode32(enc_u(0x37, 7, 0x10000)), Some(Decoded::Lui { rd: 7, imm: 0x10000 }));
        // ecall
        assert_eq!(decode32(0x0000_0073), Some(Decoded::Ecall));
        assert_eq!(decode32(0x0010_0073), Some(Decoded::Ebreak));
    }

    #[test]
    fn negative_immediates_sign_extend() {
        match decode32(enc_i(0x13, 1, 0, 1, -1)).unwrap() {
            Decoded::AluImm { imm, .. } => assert_eq!(imm, -1),
            other => panic!("{other:?}"),
        }
        match decode32(enc_j(0x6f, 0, -4)).unwrap() {
            Decoded::Jal { offset, .. } => assert_eq!(offset, -4),
            other => panic!("{other:?}"),
        }
        match decode32(enc_b(0x63, 0, 1, 2, -4096)).unwrap() {
            Decoded::Branch { offset, .. } => assert_eq!(offset, -4096),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn unsupported_words_decode_to_none() {
        assert_eq!(decode32(0xffff_ffff), None);
        assert_eq!(decode32(0x0000_0007), None); // FP load
        assert_eq!(decode32(0x0000_0053), None); // FP op
                                                 // csrrw (SYSTEM with funct3 != 0)
        assert_eq!(decode32(0x3004_1073), None);
    }

    #[test]
    fn compressed_expansion_matches_the_spelled_out_forms() {
        // c.li a0, 5 == 0x4515 -> addi a0, x0, 5
        assert_eq!(expand16(0x4515), Some(enc_i(0x13, 10, 0, 0, 5)));
        // c.addi a0, 1 == 0x0505
        assert_eq!(expand16(0x0505), Some(enc_i(0x13, 10, 0, 10, 1)));
        // c.addi a0, -1 == 0x157d
        assert_eq!(expand16(0x157d), Some(enc_i(0x13, 10, 0, 10, -1)));
        // c.mv a1, a0 == 0x85aa -> add a1, x0, a0
        assert_eq!(expand16(0x85aa), Some(enc_r(0x33, 11, 0, 0, 10, 0)));
        // c.add a0, a1 == 0x952e
        assert_eq!(expand16(0x952e), Some(enc_r(0x33, 10, 0, 10, 11, 0)));
        // c.ld a3, 8(a2) == 0x6614
        assert_eq!(expand16(0x6614), Some(enc_i(0x03, 13, 3, 12, 8)));
        // c.sd a3, 8(a2) == 0xe614
        assert_eq!(expand16(0xe614), Some(enc_s(0x23, 3, 12, 13, 8)));
        // c.beqz a0, +4 == 0xc111
        assert_eq!(expand16(0xc111), Some(enc_b(0x63, 0, 10, 0, 4)));
        // c.bnez a0, -4 == 0xfd75
        assert_eq!(expand16(0xfd75), Some(enc_b(0x63, 1, 10, 0, -4)));
        // c.j -6 == 0xbfed
        assert_eq!(expand16(0xbfed), Some(enc_j(0x6f, 0, -6)));
        // c.slli a0, 4 == 0x0512
        assert_eq!(expand16(0x0512), Some(enc_i(0x13, 10, 1, 10, 4)));
        // c.jr ra == 0x8082
        assert_eq!(expand16(0x8082), Some(enc_i(0x67, 0, 0, 1, 0)));
        // c.nop == 0x0001 -> addi x0, x0, 0
        assert_eq!(expand16(0x0001), Some(enc_i(0x13, 0, 0, 0, 0)));
        // c.ebreak == 0x9002
        assert_eq!(expand16(0x9002), Some(0x0010_0073));
        // Illegal all-zero parcel (the canonical trap pattern).
        assert_eq!(expand16(0x0000), None);
        // c.fld (FP) is outside the integer subset.
        assert_eq!(expand16(0x2000), None);
    }

    #[test]
    fn parcel_length_discriminates_compressed() {
        assert_eq!(parcel_len(0x4515), 2);
        assert_eq!(parcel_len(0x0073), 4);
    }
}
