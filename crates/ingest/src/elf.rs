//! A minimal ELF64 loader: just enough structure to place a statically
//! linked RV64 executable's `PT_LOAD` segments into memory and find its
//! entry point. Everything else (sections, symbols, relocations) is
//! deliberately ignored — a static image needs none of it to run.

use crate::error::IngestError;

/// `e_machine` value for RISC-V.
const EM_RISCV: u16 = 243;
/// `e_type` for a (statically linked) executable.
const ET_EXEC: u16 = 2;
/// `e_type` for a shared object / PIE — rejected as dynamically linked.
const ET_DYN: u16 = 3;
/// `p_type` for a loadable segment.
const PT_LOAD: u32 = 1;
/// `p_type` for the dynamic section — its presence also marks a
/// dynamically linked image even when `e_type` is `ET_EXEC`.
const PT_DYNAMIC: u32 = 2;
/// `p_type` for an interpreter request (`ld.so`) — same verdict.
const PT_INTERP: u32 = 3;

/// One loadable segment, already sliced out of the file image.
#[derive(Debug, Clone)]
pub struct Segment {
    /// Virtual load address.
    pub vaddr: u64,
    /// File-backed bytes (`p_filesz` of them).
    pub data: Vec<u8>,
    /// Total size in memory (`p_memsz` ≥ `data.len()`; the tail is
    /// zero-filled BSS).
    pub memsz: u64,
}

/// A parsed executable image: entry point plus loadable segments.
#[derive(Debug, Clone)]
pub struct ElfImage {
    /// Initial program counter.
    pub entry: u64,
    /// The `PT_LOAD` segments in file order.
    pub segments: Vec<Segment>,
}

fn u16le(b: &[u8], off: usize) -> Result<u16, IngestError> {
    let s = b.get(off..off + 2).ok_or(IngestError::Malformed("header out of bounds"))?;
    Ok(u16::from_le_bytes([s[0], s[1]]))
}

fn u32le(b: &[u8], off: usize) -> Result<u32, IngestError> {
    let s = b.get(off..off + 4).ok_or(IngestError::Malformed("header out of bounds"))?;
    Ok(u32::from_le_bytes([s[0], s[1], s[2], s[3]]))
}

fn u64le(b: &[u8], off: usize) -> Result<u64, IngestError> {
    let s = b.get(off..off + 8).ok_or(IngestError::Malformed("header out of bounds"))?;
    Ok(u64::from_le_bytes([s[0], s[1], s[2], s[3], s[4], s[5], s[6], s[7]]))
}

impl ElfImage {
    /// Parses the bytes of a statically linked RV64 executable.
    ///
    /// # Errors
    ///
    /// [`IngestError::NotElf`] for non-ELF bytes,
    /// [`IngestError::UnsupportedElf`] for the wrong class/endianness,
    /// [`IngestError::WrongMachine`] for non-RISC-V targets,
    /// [`IngestError::DynamicallyLinked`] for `ET_DYN` images or ones
    /// carrying `PT_INTERP`/`PT_DYNAMIC`, and
    /// [`IngestError::Malformed`] when structural fields point outside
    /// the file.
    pub fn parse(bytes: &[u8]) -> Result<Self, IngestError> {
        if bytes.len() < 4 || bytes[..4] != [0x7f, b'E', b'L', b'F'] {
            return Err(IngestError::NotElf);
        }
        if bytes.len() < 64 {
            return Err(IngestError::Malformed("file shorter than the ELF64 header"));
        }
        if bytes[4] != 2 {
            return Err(IngestError::UnsupportedElf("not ELFCLASS64"));
        }
        if bytes[5] != 1 {
            return Err(IngestError::UnsupportedElf("not little-endian (ELFDATA2LSB)"));
        }
        let e_type = u16le(bytes, 16)?;
        let machine = u16le(bytes, 18)?;
        if machine != EM_RISCV {
            return Err(IngestError::WrongMachine(machine));
        }
        if e_type == ET_DYN {
            return Err(IngestError::DynamicallyLinked);
        }
        if e_type != ET_EXEC {
            return Err(IngestError::UnsupportedElf("not an executable (ET_EXEC)"));
        }
        let entry = u64le(bytes, 24)?;
        let phoff = u64le(bytes, 32)? as usize;
        let phentsize = u16le(bytes, 54)? as usize;
        let phnum = u16le(bytes, 56)? as usize;
        if phentsize < 56 {
            return Err(IngestError::Malformed("program header entries shorter than 56 bytes"));
        }
        if phnum > 128 {
            return Err(IngestError::Malformed("implausible program header count"));
        }
        let mut segments = Vec::new();
        for i in 0..phnum {
            let off = phoff
                .checked_add(
                    i.checked_mul(phentsize)
                        .ok_or(IngestError::Malformed("program header table overflows"))?,
                )
                .ok_or(IngestError::Malformed("program header table overflows"))?;
            let p_type = u32le(bytes, off)?;
            if p_type == PT_INTERP || p_type == PT_DYNAMIC {
                return Err(IngestError::DynamicallyLinked);
            }
            if p_type != PT_LOAD {
                continue;
            }
            let p_offset = u64le(bytes, off + 8)? as usize;
            let vaddr = u64le(bytes, off + 16)?;
            let filesz = u64le(bytes, off + 32)? as usize;
            let memsz = u64le(bytes, off + 40)?;
            if (memsz as usize) < filesz {
                return Err(IngestError::Malformed("segment memsz smaller than filesz"));
            }
            let end = p_offset
                .checked_add(filesz)
                .ok_or(IngestError::Malformed("segment range overflows"))?;
            let data = bytes
                .get(p_offset..end)
                .ok_or(IngestError::Malformed("segment data outside the file"))?
                .to_vec();
            segments.push(Segment { vaddr, data, memsz });
        }
        if segments.is_empty() {
            return Err(IngestError::Malformed("no PT_LOAD segments"));
        }
        Ok(ElfImage { entry, segments })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Hand-builds a minimal valid ELF64 with one PT_LOAD segment.
    fn tiny_elf(e_type: u16, machine: u16) -> Vec<u8> {
        let mut f = vec![0u8; 0x78 + 4];
        f[..4].copy_from_slice(&[0x7f, b'E', b'L', b'F']);
        f[4] = 2; // ELFCLASS64
        f[5] = 1; // little-endian
        f[6] = 1; // EV_CURRENT
        f[16..18].copy_from_slice(&e_type.to_le_bytes());
        f[18..20].copy_from_slice(&machine.to_le_bytes());
        f[24..32].copy_from_slice(&0x1_0000u64.to_le_bytes()); // e_entry
        f[32..40].copy_from_slice(&64u64.to_le_bytes()); // e_phoff
        f[54..56].copy_from_slice(&56u16.to_le_bytes()); // e_phentsize
        f[56..58].copy_from_slice(&1u16.to_le_bytes()); // e_phnum
        let ph = 64;
        f[ph..ph + 4].copy_from_slice(&PT_LOAD.to_le_bytes());
        f[ph + 8..ph + 16].copy_from_slice(&0x78u64.to_le_bytes()); // p_offset
        f[ph + 16..ph + 24].copy_from_slice(&0x1_0000u64.to_le_bytes()); // p_vaddr
        f[ph + 32..ph + 40].copy_from_slice(&4u64.to_le_bytes()); // p_filesz
        f[ph + 40..ph + 48].copy_from_slice(&8u64.to_le_bytes()); // p_memsz
        f[0x78..0x7c].copy_from_slice(&[0x13, 0, 0, 0]); // nop
        f
    }

    #[test]
    fn parses_a_minimal_static_executable() {
        let image = ElfImage::parse(&tiny_elf(ET_EXEC, EM_RISCV)).unwrap();
        assert_eq!(image.entry, 0x1_0000);
        assert_eq!(image.segments.len(), 1);
        assert_eq!(image.segments[0].vaddr, 0x1_0000);
        assert_eq!(image.segments[0].data, vec![0x13, 0, 0, 0]);
        assert_eq!(image.segments[0].memsz, 8);
    }

    #[test]
    fn rejects_non_elf_wrong_machine_and_pie() {
        assert!(matches!(ElfImage::parse(b"#!/bin/sh\n"), Err(IngestError::NotElf)));
        assert!(matches!(ElfImage::parse(&[]), Err(IngestError::NotElf)));
        assert!(matches!(
            ElfImage::parse(&tiny_elf(ET_EXEC, 62)),
            Err(IngestError::WrongMachine(62))
        ));
        assert!(matches!(
            ElfImage::parse(&tiny_elf(ET_DYN, EM_RISCV)),
            Err(IngestError::DynamicallyLinked)
        ));
    }

    #[test]
    fn rejects_segments_pointing_outside_the_file() {
        let mut bad = tiny_elf(ET_EXEC, EM_RISCV);
        let ph = 64;
        bad[ph + 32..ph + 40].copy_from_slice(&4096u64.to_le_bytes()); // filesz > file
        assert!(matches!(ElfImage::parse(&bad), Err(IngestError::Malformed(_))));
    }
}
