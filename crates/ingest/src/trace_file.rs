//! Compact little-endian on-disk trace format with streaming I/O.
//!
//! ## Layout (version 1)
//!
//! ```text
//! header : "ADTF" | u16 version=1 | u16 flags=0 | u64 reserved=0   (16 B)
//! chunk  : u32 payload_len | u32 record_count | payload bytes
//! ...
//! end    : u32 0 | u32 0                                            (8 B)
//! ```
//!
//! Chunks carry exactly [`CHUNK_RECORDS`] records except the last data
//! chunk; the chunking is therefore a pure function of the record
//! stream, so re-encoding a decoded trace reproduces the input
//! byte-for-byte. The explicit zero end marker lets the writer stream
//! without seeking back to patch a count, and lets the reader tell a
//! truncated file from a complete one.
//!
//! ## Record encoding
//!
//! One head byte, then varints:
//!
//! ```text
//! head: bit0-2 op (IntAlu=0 IntMul=1 Load=2 Store=3 FpAlu=4 Branch=5)
//!       bit3   dep[0] present     bit4 dep[1] present
//!       bit5   branch taken       bit6 branch mispredicted
//!       bit7   reserved (must be 0)
//! then: varint dep[0] if present (≥ 1)
//!       varint dep[1] if present (≥ 1)
//!       zigzag-varint address delta  (Load/Store only; the previous
//!       address persists across chunk boundaries, initially 0)
//!       varint site                  (Branch only)
//! ```
//!
//! The reader holds exactly one reusable chunk buffer whose size is
//! capped by [`MAX_CHUNK_PAYLOAD_BYTES`], so peak memory is bounded by
//! the chunk size no matter how many instructions the file holds.

use std::io::{self, Read, Write};

use dse_workloads::{BranchInfo, Instr, Op};

use crate::error::TraceFileError;

/// File magic: "ArchDse Trace Format".
pub const TRACE_MAGIC: [u8; 4] = *b"ADTF";
/// The one format version this build reads and writes.
pub const TRACE_VERSION: u16 = 1;
/// Records per full chunk (the canonical chunking).
pub const CHUNK_RECORDS: u32 = 65_536;
/// Upper bound on the encoded size of one record: head byte, two
/// 5-byte u32 varints and a 10-byte zigzag address delta, rounded up.
pub const MAX_RECORD_BYTES: usize = 24;
/// Hard cap a reader places on any chunk's payload length; a frame
/// claiming more is corrupt, not a reason to allocate gigabytes.
pub const MAX_CHUNK_PAYLOAD_BYTES: usize = CHUNK_RECORDS as usize * MAX_RECORD_BYTES;

const OP_CODES: [Op; 6] = [Op::IntAlu, Op::IntMul, Op::Load, Op::Store, Op::FpAlu, Op::Branch];

fn op_code(op: Op) -> u8 {
    match op {
        Op::IntAlu => 0,
        Op::IntMul => 1,
        Op::Load => 2,
        Op::Store => 3,
        Op::FpAlu => 4,
        Op::Branch => 5,
    }
}

fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

fn get_varint(buf: &[u8], pos: &mut usize) -> Result<u64, TraceFileError> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let &byte =
            buf.get(*pos).ok_or(TraceFileError::Corrupt("record overruns the chunk payload"))?;
        *pos += 1;
        if shift >= 64 {
            return Err(TraceFileError::Corrupt("varint longer than 64 bits"));
        }
        v |= ((byte & 0x7f) as u64) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

fn encode_record(
    instr: &Instr,
    prev_addr: &mut u64,
    out: &mut Vec<u8>,
) -> Result<(), TraceFileError> {
    let is_mem = matches!(instr.op, Op::Load | Op::Store);
    let is_branch = instr.op == Op::Branch;
    if is_mem && instr.addr.is_none() {
        return Err(TraceFileError::Unencodable("memory op without an address"));
    }
    if !is_mem && instr.addr.is_some() {
        return Err(TraceFileError::Unencodable("address on a non-memory op"));
    }
    if is_branch && instr.branch.is_none() {
        return Err(TraceFileError::Unencodable("branch without a branch payload"));
    }
    if !is_branch && instr.branch.is_some() {
        return Err(TraceFileError::Unencodable("branch payload on a non-branch op"));
    }
    if instr.deps.iter().flatten().any(|&d| d == 0) {
        return Err(TraceFileError::Unencodable("dependency distance of 0"));
    }
    let mut head = op_code(instr.op);
    if instr.deps[0].is_some() {
        head |= 1 << 3;
    }
    if instr.deps[1].is_some() {
        head |= 1 << 4;
    }
    if let Some(b) = instr.branch {
        if b.taken {
            head |= 1 << 5;
        }
        if b.mispredicted {
            head |= 1 << 6;
        }
    }
    out.push(head);
    for dep in instr.deps.into_iter().flatten() {
        put_varint(out, dep as u64);
    }
    if let Some(addr) = instr.addr {
        let delta = addr.wrapping_sub(*prev_addr) as i64;
        put_varint(out, zigzag(delta));
        *prev_addr = addr;
    }
    if let Some(b) = instr.branch {
        put_varint(out, b.site as u64);
    }
    Ok(())
}

fn decode_record(
    buf: &[u8],
    pos: &mut usize,
    prev_addr: &mut u64,
) -> Result<Instr, TraceFileError> {
    let &head =
        buf.get(*pos).ok_or(TraceFileError::Corrupt("record overruns the chunk payload"))?;
    *pos += 1;
    if head & 0x80 != 0 {
        return Err(TraceFileError::Corrupt("reserved head bit set"));
    }
    let op =
        *OP_CODES.get((head & 0x7) as usize).ok_or(TraceFileError::Corrupt("unknown op code"))?;
    let is_branch = op == Op::Branch;
    if !is_branch && head & (0b11 << 5) != 0 {
        return Err(TraceFileError::Corrupt("branch outcome bits on a non-branch op"));
    }
    let mut deps = [None, None];
    for (i, dep) in deps.iter_mut().enumerate() {
        if head & (1 << (3 + i)) != 0 {
            let v = get_varint(buf, pos)?;
            if v == 0 {
                return Err(TraceFileError::Corrupt("dependency distance of 0"));
            }
            if v > u32::MAX as u64 {
                return Err(TraceFileError::Corrupt("dependency distance exceeds 32 bits"));
            }
            *dep = Some(v as u32);
        }
    }
    let addr = if matches!(op, Op::Load | Op::Store) {
        let delta = unzigzag(get_varint(buf, pos)?);
        let addr = prev_addr.wrapping_add(delta as u64);
        *prev_addr = addr;
        Some(addr)
    } else {
        None
    };
    let branch = if is_branch {
        let site = get_varint(buf, pos)?;
        if site > u16::MAX as u64 {
            return Err(TraceFileError::Corrupt("branch site exceeds 16 bits"));
        }
        Some(BranchInfo {
            site: site as u16,
            taken: head & (1 << 5) != 0,
            mispredicted: head & (1 << 6) != 0,
        })
    } else {
        None
    };
    Ok(Instr { op, deps, addr, branch })
}

/// Streaming trace encoder over any [`Write`] sink.
///
/// Call [`TraceWriter::finish`] when done — it emits the end marker a
/// reader requires. A writer dropped without `finish` leaves a file
/// that reads back as [`TraceFileError::Truncated`], by design.
pub struct TraceWriter<W: Write> {
    inner: W,
    payload: Vec<u8>,
    count: u32,
    prev_addr: u64,
    records: u64,
}

impl<W: Write> TraceWriter<W> {
    /// Writes the header and returns a ready writer.
    pub fn new(mut inner: W) -> Result<Self, TraceFileError> {
        inner.write_all(&TRACE_MAGIC)?;
        inner.write_all(&TRACE_VERSION.to_le_bytes())?;
        inner.write_all(&0u16.to_le_bytes())?; // flags
        inner.write_all(&0u64.to_le_bytes())?; // reserved
        Ok(TraceWriter { inner, payload: Vec::new(), count: 0, prev_addr: 0, records: 0 })
    }

    /// Appends one instruction record.
    ///
    /// # Errors
    ///
    /// [`TraceFileError::Unencodable`] when the instruction violates
    /// the format's op/payload pairing, or an I/O error from the sink.
    pub fn write(&mut self, instr: &Instr) -> Result<(), TraceFileError> {
        encode_record(instr, &mut self.prev_addr, &mut self.payload)?;
        self.count += 1;
        self.records += 1;
        if self.count == CHUNK_RECORDS {
            self.flush_chunk()?;
        }
        Ok(())
    }

    fn flush_chunk(&mut self) -> Result<(), TraceFileError> {
        if self.count == 0 {
            return Ok(());
        }
        self.inner.write_all(&(self.payload.len() as u32).to_le_bytes())?;
        self.inner.write_all(&self.count.to_le_bytes())?;
        self.inner.write_all(&self.payload)?;
        self.payload.clear();
        self.count = 0;
        Ok(())
    }

    /// Records written so far.
    pub fn records_written(&self) -> u64 {
        self.records
    }

    /// Flushes the tail chunk, writes the end marker and returns the
    /// sink.
    pub fn finish(mut self) -> Result<W, TraceFileError> {
        self.flush_chunk()?;
        self.inner.write_all(&0u32.to_le_bytes())?;
        self.inner.write_all(&0u32.to_le_bytes())?;
        self.inner.flush()?;
        Ok(self.inner)
    }
}

/// Streaming trace decoder over any [`Read`] source.
///
/// Iterates `Result<Instr, TraceFileError>`; after the first error the
/// stream ends. Peak memory is one chunk buffer, never the whole trace
/// — see [`TraceReader::buffer_capacity`].
pub struct TraceReader<R: Read> {
    inner: R,
    payload: Vec<u8>,
    pos: usize,
    remaining_in_chunk: u32,
    prev_addr: u64,
    state: ReaderState,
}

#[derive(PartialEq)]
enum ReaderState {
    Reading,
    Finished,
    Failed,
}

fn read_exact_or(
    inner: &mut impl Read,
    buf: &mut [u8],
    what: &'static str,
) -> Result<(), TraceFileError> {
    inner.read_exact(buf).map_err(|e| {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            TraceFileError::Truncated(what)
        } else {
            TraceFileError::Io(e)
        }
    })
}

impl<R: Read> TraceReader<R> {
    /// Reads and validates the header.
    ///
    /// # Errors
    ///
    /// [`TraceFileError::BadMagic`] for non-trace bytes,
    /// [`TraceFileError::FutureVersion`] for a newer format and
    /// [`TraceFileError::Truncated`] when the header itself is cut off.
    pub fn new(mut inner: R) -> Result<Self, TraceFileError> {
        let mut magic = [0u8; 4];
        read_exact_or(&mut inner, &mut magic, "header")?;
        if magic != TRACE_MAGIC {
            return Err(TraceFileError::BadMagic);
        }
        let mut rest = [0u8; 12];
        read_exact_or(&mut inner, &mut rest, "header")?;
        let version = u16::from_le_bytes([rest[0], rest[1]]);
        if version > TRACE_VERSION {
            return Err(TraceFileError::FutureVersion(version));
        }
        if version == 0 {
            return Err(TraceFileError::Corrupt("version 0 does not exist"));
        }
        if rest[2..4] != [0, 0] {
            return Err(TraceFileError::Corrupt("reserved flags set"));
        }
        Ok(TraceReader {
            inner,
            payload: Vec::new(),
            pos: 0,
            remaining_in_chunk: 0,
            prev_addr: 0,
            state: ReaderState::Reading,
        })
    }

    /// Current capacity of the single reused chunk buffer — the
    /// reader's peak payload memory, bounded by
    /// [`MAX_CHUNK_PAYLOAD_BYTES`] no matter the trace length.
    pub fn buffer_capacity(&self) -> usize {
        self.payload.capacity()
    }

    /// Loads the next chunk; `Ok(false)` at the end marker.
    fn next_chunk(&mut self) -> Result<bool, TraceFileError> {
        let mut frame = [0u8; 8];
        read_exact_or(&mut self.inner, &mut frame, "chunk frame")?;
        let payload_len = u32::from_le_bytes([frame[0], frame[1], frame[2], frame[3]]) as usize;
        let record_count = u32::from_le_bytes([frame[4], frame[5], frame[6], frame[7]]);
        if payload_len == 0 && record_count == 0 {
            return Ok(false);
        }
        if payload_len == 0 || record_count == 0 {
            return Err(TraceFileError::Corrupt("half-empty chunk frame"));
        }
        if payload_len > MAX_CHUNK_PAYLOAD_BYTES {
            return Err(TraceFileError::Corrupt("chunk payload length exceeds the format cap"));
        }
        if record_count > CHUNK_RECORDS {
            return Err(TraceFileError::Corrupt("chunk record count exceeds the format cap"));
        }
        self.payload.clear();
        self.payload.resize(payload_len, 0);
        read_exact_or(&mut self.inner, &mut self.payload, "chunk payload")?;
        self.pos = 0;
        self.remaining_in_chunk = record_count;
        Ok(true)
    }

    fn next_instr(&mut self) -> Result<Option<Instr>, TraceFileError> {
        while self.remaining_in_chunk == 0 {
            if self.pos != self.payload.len() {
                return Err(TraceFileError::Corrupt("chunk payload longer than its records"));
            }
            if !self.next_chunk()? {
                return Ok(None);
            }
        }
        let instr = decode_record(&self.payload, &mut self.pos, &mut self.prev_addr)?;
        self.remaining_in_chunk -= 1;
        if self.remaining_in_chunk == 0 && self.pos != self.payload.len() {
            return Err(TraceFileError::Corrupt("chunk payload longer than its records"));
        }
        Ok(Some(instr))
    }
}

impl<R: Read> Iterator for TraceReader<R> {
    type Item = Result<Instr, TraceFileError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.state != ReaderState::Reading {
            return None;
        }
        match self.next_instr() {
            Ok(Some(instr)) => Some(Ok(instr)),
            Ok(None) => {
                self.state = ReaderState::Finished;
                None
            }
            Err(e) => {
                self.state = ReaderState::Failed;
                Some(Err(e))
            }
        }
    }
}

/// Encodes a whole in-memory trace to bytes (tests and small tools;
/// large traces should stream through [`TraceWriter`] directly).
pub fn encode_trace(instrs: &[Instr]) -> Result<Vec<u8>, TraceFileError> {
    let mut w = TraceWriter::new(Vec::new())?;
    for i in instrs {
        w.write(i)?;
    }
    w.finish()
}

/// Decodes a whole byte buffer into an in-memory trace.
pub fn decode_trace(bytes: &[u8]) -> Result<Vec<Instr>, TraceFileError> {
    TraceReader::new(bytes)?.collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<Instr> {
        vec![
            Instr::nop(),
            Instr { op: Op::Load, deps: [Some(2), None], addr: Some(0x2_0000), branch: None },
            Instr { op: Op::Store, deps: [Some(1), Some(3)], addr: Some(0x1_ff80), branch: None },
            Instr::branch(7, true, false),
            Instr { op: Op::IntMul, deps: [None, Some(4)], addr: None, branch: None },
            Instr { op: Op::FpAlu, deps: [Some(1), None], addr: None, branch: None },
        ]
    }

    #[test]
    fn round_trips_and_reencodes_identically() {
        let bytes = encode_trace(&sample()).unwrap();
        let decoded = decode_trace(&bytes).unwrap();
        assert_eq!(decoded, sample());
        let again = encode_trace(&decoded).unwrap();
        assert_eq!(again, bytes);
    }

    #[test]
    fn empty_trace_is_a_header_and_an_end_marker() {
        let bytes = encode_trace(&[]).unwrap();
        assert_eq!(bytes.len(), 16 + 8);
        assert!(decode_trace(&bytes).unwrap().is_empty());
    }

    #[test]
    fn truncation_anywhere_is_a_named_error() {
        let bytes = encode_trace(&sample()).unwrap();
        for cut in [0, 3, 10, 17, bytes.len() - 1] {
            let err = decode_trace(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(err, TraceFileError::Truncated(_) | TraceFileError::BadMagic),
                "cut at {cut}: {err:?}"
            );
        }
    }

    #[test]
    fn bad_magic_and_future_version_are_distinguished() {
        assert!(matches!(decode_trace(b"JSON{not a trace}"), Err(TraceFileError::BadMagic)));
        let mut bytes = encode_trace(&[]).unwrap();
        bytes[4..6].copy_from_slice(&9u16.to_le_bytes());
        assert!(matches!(decode_trace(&bytes), Err(TraceFileError::FutureVersion(9))));
    }

    #[test]
    fn corrupt_payloads_are_named() {
        // Zero dependency distance.
        let mut bytes = encode_trace(&[Instr {
            op: Op::IntAlu,
            deps: [Some(1), None],
            addr: None,
            branch: None,
        }])
        .unwrap();
        // Record = head(1<<3) + varint(1); the varint is the last
        // payload byte before the end marker.
        let varint_at = 16 + 8 + 1;
        assert_eq!(bytes[varint_at], 1);
        bytes[varint_at] = 0;
        assert!(matches!(decode_trace(&bytes), Err(TraceFileError::Corrupt(_))));

        // Reserved head bit.
        let mut bytes = encode_trace(&[Instr::nop()]).unwrap();
        bytes[16 + 8] |= 0x80;
        assert!(matches!(decode_trace(&bytes), Err(TraceFileError::Corrupt(_))));

        // Branch-outcome bits on a non-branch op.
        let mut bytes = encode_trace(&[Instr::nop()]).unwrap();
        bytes[16 + 8] |= 1 << 5;
        assert!(matches!(decode_trace(&bytes), Err(TraceFileError::Corrupt(_))));

        // Implausible frame length.
        let mut bytes = encode_trace(&[Instr::nop()]).unwrap();
        bytes[16..20].copy_from_slice(&(u32::MAX).to_le_bytes());
        assert!(matches!(decode_trace(&bytes), Err(TraceFileError::Corrupt(_))));
    }

    #[test]
    fn unencodable_instructions_are_rejected_at_write_time() {
        let cases = [
            Instr { op: Op::Load, deps: [None, None], addr: None, branch: None },
            Instr { op: Op::IntAlu, deps: [None, None], addr: Some(8), branch: None },
            Instr { op: Op::Branch, deps: [None, None], addr: None, branch: None },
            Instr { op: Op::IntAlu, deps: [Some(0), None], addr: None, branch: None },
        ];
        for bad in cases {
            assert!(matches!(encode_trace(&[bad]), Err(TraceFileError::Unencodable(_))), "{bad:?}");
        }
    }

    #[test]
    fn address_deltas_survive_chunk_boundaries() {
        // More than one chunk of alternating far/near addresses.
        let n = CHUNK_RECORDS as usize + 100;
        let trace: Vec<Instr> = (0..n)
            .map(|i| Instr {
                op: Op::Load,
                deps: [None, None],
                addr: Some(0x1000_0000u64.wrapping_add((i as u64) * 72)),
                branch: None,
            })
            .collect();
        let bytes = encode_trace(&trace).unwrap();
        assert_eq!(decode_trace(&bytes).unwrap(), trace);
    }

    #[test]
    fn reader_buffer_stays_chunk_bounded() {
        let n = 2 * CHUNK_RECORDS as usize + 5;
        let trace: Vec<Instr> = (0..n).map(|_| Instr::nop()).collect();
        let bytes = encode_trace(&trace).unwrap();
        let mut reader = TraceReader::new(&bytes[..]).unwrap();
        let mut count = 0usize;
        for item in reader.by_ref() {
            item.unwrap();
            count += 1;
        }
        assert_eq!(count, n);
        assert!(reader.buffer_capacity() <= MAX_CHUNK_PAYLOAD_BYTES);
    }
}
