//! Functional RV64IMC executor streaming [`Instr`] events.
//!
//! This is not a timing model — it computes architectural state only
//! (registers, memory, control flow) and folds each retired instruction
//! into the workload-trace form the rest of the stack already consumes:
//! operation class, backward dependency distances, byte address for
//! memory operations and a branch payload with a deterministic gshare
//! misprediction verdict.
//!
//! Memory is a sparse page map: any address is writable, untouched
//! bytes read as zero. That keeps multi-megabyte BSS/stack regions free
//! and means fixtures need no `PT_LOAD` segment for their data.

use std::collections::HashMap;
use std::sync::OnceLock;

use dse_obs::{global, Counter};
use dse_workloads::{BranchInfo, Instr, Op};

use crate::elf::ElfImage;
use crate::error::IngestError;
use crate::rv64::{decode32, expand16, parcel_len, AluOp, BranchOp, Decoded, LoadOp, MulOp};

/// Executor knobs.
#[derive(Debug, Clone, Copy)]
pub struct ExecConfig {
    /// Hard cap on retired instructions; crossing it yields
    /// [`IngestError::InstructionLimit`].
    pub max_instrs: u64,
}

impl Default for ExecConfig {
    fn default() -> Self {
        ExecConfig { max_instrs: 50_000_000 }
    }
}

const PAGE_SHIFT: u64 = 12;
const PAGE_SIZE: usize = 1 << PAGE_SHIFT;
/// Initial stack pointer: high, page-aligned, far from any fixture text.
const STACK_TOP: u64 = 0x7fff_f000;
/// Retired-instruction counter flush granularity.
const METRIC_BATCH: u64 = 4096;

struct ExecMetrics {
    instrs_total: Counter,
    decode_errors_total: Counter,
}

fn metrics() -> &'static ExecMetrics {
    static M: OnceLock<ExecMetrics> = OnceLock::new();
    M.get_or_init(|| ExecMetrics {
        instrs_total: global().counter("ingest_instrs_total"),
        decode_errors_total: global().counter("ingest_decode_errors_total"),
    })
}

/// Sparse byte-addressable memory backed by 4 KiB pages.
struct Memory {
    pages: HashMap<u64, Box<[u8; PAGE_SIZE]>>,
}

impl Memory {
    fn new() -> Self {
        Memory { pages: HashMap::new() }
    }

    fn read_u8(&self, addr: u64) -> u8 {
        match self.pages.get(&(addr >> PAGE_SHIFT)) {
            Some(page) => page[(addr as usize) & (PAGE_SIZE - 1)],
            None => 0,
        }
    }

    fn write_u8(&mut self, addr: u64, value: u8) {
        let page =
            self.pages.entry(addr >> PAGE_SHIFT).or_insert_with(|| Box::new([0u8; PAGE_SIZE]));
        page[(addr as usize) & (PAGE_SIZE - 1)] = value;
    }

    fn read(&self, addr: u64, width: u64) -> u64 {
        let mut value = 0u64;
        for i in 0..width {
            value |= (self.read_u8(addr.wrapping_add(i)) as u64) << (8 * i);
        }
        value
    }

    fn write(&mut self, addr: u64, width: u64, value: u64) {
        for i in 0..width {
            self.write_u8(addr.wrapping_add(i), (value >> (8 * i)) as u8);
        }
    }
}

/// Deterministic gshare predictor: 10 bits of global history hashed
/// into 1024 two-bit counters. Seeded to weakly-not-taken, so the same
/// ELF always produces the same misprediction bits.
struct Gshare {
    history: u16,
    table: [u8; 1024],
}

impl Gshare {
    fn new() -> Self {
        Gshare { history: 0, table: [1u8; 1024] }
    }

    /// Returns the misprediction verdict for this dynamic branch and
    /// trains on the outcome.
    fn mispredicted(&mut self, site: u16, taken: bool) -> bool {
        let idx = ((site ^ self.history) & 0x3ff) as usize;
        let predicted = self.table[idx] >= 2;
        if taken {
            self.table[idx] = (self.table[idx] + 1).min(3);
        } else {
            self.table[idx] = self.table[idx].saturating_sub(1);
        }
        self.history = ((self.history << 1) | taken as u16) & 0x3ff;
        predicted != taken
    }
}

/// Streaming functional executor over a loaded [`ElfImage`].
///
/// Iterating yields one `Result<Instr, IngestError>` per retired
/// instruction; the stream ends cleanly when the program calls
/// `exit`/`exit_group`, and ends with a single `Err` on any fault.
pub struct Executor {
    mem: Memory,
    regs: [u64; 32],
    pc: u64,
    /// Retired-instruction index of the last writer of each register.
    last_writer: [Option<u64>; 32],
    predictor: Gshare,
    retired: u64,
    unflushed: u64,
    max_instrs: u64,
    exit_code: Option<u64>,
    done: bool,
}

impl Executor {
    /// Loads the image's segments and prepares execution at its entry
    /// point with the default [`ExecConfig`].
    pub fn new(image: &ElfImage) -> Self {
        Self::with_config(image, ExecConfig::default())
    }

    /// [`Executor::new`] with explicit knobs.
    pub fn with_config(image: &ElfImage, config: ExecConfig) -> Self {
        let mut mem = Memory::new();
        for segment in &image.segments {
            for (i, &byte) in segment.data.iter().enumerate() {
                if byte != 0 {
                    mem.write_u8(segment.vaddr.wrapping_add(i as u64), byte);
                }
            }
            // The BSS tail (memsz beyond filesz) reads as zero already.
        }
        let mut regs = [0u64; 32];
        regs[2] = STACK_TOP;
        Executor {
            mem,
            regs,
            pc: image.entry,
            last_writer: [None; 32],
            predictor: Gshare::new(),
            retired: 0,
            unflushed: 0,
            max_instrs: config.max_instrs,
            exit_code: None,
            done: false,
        }
    }

    /// The code the program passed to `exit`, once it has.
    pub fn exit_code(&self) -> Option<u64> {
        self.exit_code
    }

    /// Instructions retired so far.
    pub fn retired(&self) -> u64 {
        self.retired
    }

    fn reg(&self, r: u8) -> u64 {
        self.regs[r as usize]
    }

    fn set_reg(&mut self, r: u8, value: u64) {
        if r != 0 {
            self.regs[r as usize] = value;
            self.last_writer[r as usize] = Some(self.retired);
        }
    }

    /// Backward distance from the *next* retired index to `r`'s last
    /// writer; `None` for x0 or a register nothing has written yet.
    fn dep(&self, r: u8) -> Option<u32> {
        let producer = self.last_writer[r as usize]?;
        let distance = self.retired - producer;
        debug_assert!(distance >= 1);
        Some(distance.min(u32::MAX as u64) as u32)
    }

    fn flush_metrics(&mut self) {
        if self.unflushed > 0 {
            metrics().instrs_total.add(self.unflushed);
            self.unflushed = 0;
        }
    }

    /// Executes one instruction; `Ok(None)` means a clean exit.
    fn step(&mut self) -> Result<Option<Instr>, IngestError> {
        if self.retired >= self.max_instrs {
            return Err(IngestError::InstructionLimit(self.max_instrs));
        }
        let pc = self.pc;
        if pc & 1 != 0 {
            return Err(IngestError::UnalignedPc(pc));
        }
        let lo16 = self.mem.read(pc, 2) as u16;
        let len = parcel_len(lo16);
        let (word, decoded) = if len == 2 {
            (lo16 as u32, expand16(lo16).and_then(decode32))
        } else {
            let word = self.mem.read(pc, 4) as u32;
            (word, decode32(word))
        };
        let Some(decoded) = decoded else {
            metrics().decode_errors_total.inc();
            return Err(IngestError::UnsupportedInstruction { pc, word });
        };
        let mut next_pc = pc.wrapping_add(len);
        let instr = match decoded {
            Decoded::Lui { rd, imm } => {
                self.set_reg(rd, imm as u64);
                Instr::nop()
            }
            Decoded::Auipc { rd, imm } => {
                self.set_reg(rd, pc.wrapping_add(imm as u64));
                Instr::nop()
            }
            Decoded::Jal { rd, offset } => {
                self.set_reg(rd, pc.wrapping_add(len));
                next_pc = pc.wrapping_add(offset as u64);
                // Unconditional control flow retires as a plain integer
                // op: the synthetic traces likewise reserve `Branch`
                // for conditional branches.
                Instr::nop()
            }
            Decoded::Jalr { rd, rs1, offset } => {
                let dep = self.dep(rs1);
                let target = self.reg(rs1).wrapping_add(offset as u64) & !1;
                self.set_reg(rd, pc.wrapping_add(len));
                next_pc = target;
                Instr { op: Op::IntAlu, deps: [dep, None], addr: None, branch: None }
            }
            Decoded::Branch { op, rs1, rs2, offset } => {
                let deps = [self.dep(rs1), self.dep(rs2)];
                let (a, b) = (self.reg(rs1), self.reg(rs2));
                let taken = match op {
                    BranchOp::Eq => a == b,
                    BranchOp::Ne => a != b,
                    BranchOp::Lt => (a as i64) < (b as i64),
                    BranchOp::Ge => (a as i64) >= (b as i64),
                    BranchOp::Ltu => a < b,
                    BranchOp::Geu => a >= b,
                };
                if taken {
                    next_pc = pc.wrapping_add(offset as u64);
                }
                let site = ((pc >> 1) ^ (pc >> 13)) as u16;
                let mispredicted = self.predictor.mispredicted(site, taken);
                Instr {
                    op: Op::Branch,
                    deps,
                    addr: None,
                    branch: Some(BranchInfo { site, taken, mispredicted }),
                }
            }
            Decoded::Load { op, rd, rs1, offset } => {
                let dep = self.dep(rs1);
                let addr = self.reg(rs1).wrapping_add(offset as u64);
                let raw = self.mem.read(addr, op.width());
                let value = match op {
                    LoadOp::Lb => raw as u8 as i8 as i64 as u64,
                    LoadOp::Lh => raw as u16 as i16 as i64 as u64,
                    LoadOp::Lw => raw as u32 as i32 as i64 as u64,
                    LoadOp::Ld | LoadOp::Lbu | LoadOp::Lhu | LoadOp::Lwu => raw,
                };
                self.set_reg(rd, value);
                Instr { op: Op::Load, deps: [dep, None], addr: Some(addr), branch: None }
            }
            Decoded::Store { op, rs1, rs2, offset } => {
                let deps = [self.dep(rs1), self.dep(rs2)];
                let addr = self.reg(rs1).wrapping_add(offset as u64);
                self.mem.write(addr, op.width(), self.reg(rs2));
                Instr { op: Op::Store, deps, addr: Some(addr), branch: None }
            }
            Decoded::AluImm { op, rd, rs1, imm, word } => {
                let dep = self.dep(rs1);
                let value = alu(op, self.reg(rs1), imm as u64, word);
                self.set_reg(rd, value);
                Instr { op: Op::IntAlu, deps: [dep, None], addr: None, branch: None }
            }
            Decoded::Alu { op, rd, rs1, rs2, word } => {
                let deps = [self.dep(rs1), self.dep(rs2)];
                let value = alu(op, self.reg(rs1), self.reg(rs2), word);
                self.set_reg(rd, value);
                Instr { op: Op::IntAlu, deps, addr: None, branch: None }
            }
            Decoded::MulDiv { op, rd, rs1, rs2, word } => {
                let deps = [self.dep(rs1), self.dep(rs2)];
                let value = muldiv(op, self.reg(rs1), self.reg(rs2), word);
                self.set_reg(rd, value);
                Instr { op: Op::IntMul, deps, addr: None, branch: None }
            }
            Decoded::Fence => Instr::nop(),
            Decoded::Ecall => {
                let nr = self.reg(17); // a7
                if nr == 93 || nr == 94 {
                    // exit / exit_group
                    self.exit_code = Some(self.reg(10));
                    self.retired += 1;
                    self.unflushed += 1;
                    return Ok(None);
                }
                return Err(IngestError::UnsupportedSyscall(nr));
            }
            Decoded::Ebreak => {
                return Err(IngestError::UnsupportedInstruction { pc, word });
            }
        };
        self.pc = next_pc;
        self.retired += 1;
        self.unflushed += 1;
        if self.unflushed >= METRIC_BATCH {
            self.flush_metrics();
        }
        Ok(Some(instr))
    }
}

impl Iterator for Executor {
    type Item = Result<Instr, IngestError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        match self.step() {
            Ok(Some(instr)) => Some(Ok(instr)),
            Ok(None) => {
                self.done = true;
                self.flush_metrics();
                None
            }
            Err(e) => {
                self.done = true;
                self.flush_metrics();
                Some(Err(e))
            }
        }
    }
}

impl Drop for Executor {
    fn drop(&mut self) {
        self.flush_metrics();
    }
}

fn alu(op: AluOp, a: u64, b: u64, word: bool) -> u64 {
    if word {
        let (a32, b32) = (a as u32, b as u32);
        let v = match op {
            AluOp::Add => a32.wrapping_add(b32),
            AluOp::Sub => a32.wrapping_sub(b32),
            AluOp::Sll => a32.wrapping_shl(b32 & 0x1f),
            AluOp::Srl => a32.wrapping_shr(b32 & 0x1f),
            AluOp::Sra => (a32 as i32).wrapping_shr(b32 & 0x1f) as u32,
            // No word forms exist for the rest; unreachable by decode.
            _ => a32,
        };
        v as i32 as i64 as u64
    } else {
        match op {
            AluOp::Add => a.wrapping_add(b),
            AluOp::Sub => a.wrapping_sub(b),
            AluOp::Sll => a.wrapping_shl((b & 0x3f) as u32),
            AluOp::Slt => ((a as i64) < (b as i64)) as u64,
            AluOp::Sltu => (a < b) as u64,
            AluOp::Xor => a ^ b,
            AluOp::Srl => a.wrapping_shr((b & 0x3f) as u32),
            AluOp::Sra => (a as i64).wrapping_shr((b & 0x3f) as u32) as u64,
            AluOp::Or => a | b,
            AluOp::And => a & b,
        }
    }
}

fn muldiv(op: MulOp, a: u64, b: u64, word: bool) -> u64 {
    if word {
        let (a32, b32) = (a as u32, b as u32);
        let v: u32 = match op {
            MulOp::Mul => a32.wrapping_mul(b32),
            MulOp::Div => {
                if b32 == 0 {
                    u32::MAX
                } else {
                    (a32 as i32).wrapping_div(b32 as i32) as u32
                }
            }
            MulOp::Divu => a32.checked_div(b32).unwrap_or(u32::MAX),
            MulOp::Rem => {
                if b32 == 0 {
                    a32
                } else {
                    (a32 as i32).wrapping_rem(b32 as i32) as u32
                }
            }
            MulOp::Remu => {
                if b32 == 0 {
                    a32
                } else {
                    a32 % b32
                }
            }
            // mulh* have no word forms; unreachable by decode.
            _ => 0,
        };
        v as i32 as i64 as u64
    } else {
        match op {
            MulOp::Mul => a.wrapping_mul(b),
            MulOp::Mulh => (((a as i64 as i128) * (b as i64 as i128)) >> 64) as u64,
            MulOp::Mulhsu => (((a as i64 as i128) * (b as i128)) >> 64) as u64,
            MulOp::Mulhu => (((a as u128) * (b as u128)) >> 64) as u64,
            MulOp::Div => {
                if b == 0 {
                    u64::MAX
                } else {
                    (a as i64).wrapping_div(b as i64) as u64
                }
            }
            MulOp::Divu => a.checked_div(b).unwrap_or(u64::MAX),
            MulOp::Rem => {
                if b == 0 {
                    a
                } else {
                    (a as i64).wrapping_rem(b as i64) as u64
                }
            }
            MulOp::Remu => {
                if b == 0 {
                    a
                } else {
                    a % b
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::elf::Segment;
    use crate::rv64::{enc_b, enc_i, enc_r, enc_s};

    /// Wraps raw instruction words in a loadable image at 0x1_0000.
    fn image(words: &[u32]) -> ElfImage {
        let mut data = Vec::new();
        for w in words {
            data.extend_from_slice(&w.to_le_bytes());
        }
        let memsz = data.len() as u64;
        ElfImage { entry: 0x1_0000, segments: vec![Segment { vaddr: 0x1_0000, data, memsz }] }
    }

    fn exit_words(code: i32) -> Vec<u32> {
        vec![
            enc_i(0x13, 10, 0, 0, code), // addi a0, x0, code
            enc_i(0x13, 17, 0, 0, 93),   // addi a7, x0, 93 (exit)
            0x0000_0073,                 // ecall
        ]
    }

    #[test]
    fn runs_to_exit_and_reports_the_code() {
        let mut exec = Executor::new(&image(&exit_words(7)));
        let events: Vec<_> = exec.by_ref().collect::<Result<_, _>>().unwrap();
        assert_eq!(events.len(), 2); // the ecall itself is not an event
        assert!(events.iter().all(|i| i.op == Op::IntAlu));
        assert_eq!(exec.exit_code(), Some(7));
        assert_eq!(exec.retired(), 3);
    }

    #[test]
    fn dependency_distances_point_at_the_real_producer() {
        // addi t0, x0, 1; addi t1, x0, 2; add t2, t0, t1; exit
        let mut words =
            vec![enc_i(0x13, 5, 0, 0, 1), enc_i(0x13, 6, 0, 0, 2), enc_r(0x33, 7, 0, 5, 6, 0)];
        words.extend(exit_words(0));
        let events: Vec<_> = Executor::new(&image(&words)).collect::<Result<_, _>>().unwrap();
        // The `add` is event index 2: t0 written at 0 (distance 2), t1
        // at 1 (distance 1).
        assert_eq!(events[2].deps, [Some(2), Some(1)]);
        // x0 sources never produce dependencies.
        assert_eq!(events[0].deps, [None, None]);
    }

    #[test]
    fn loads_and_stores_carry_addresses_and_round_trip_values() {
        // lui t0, 0x20000; addi t1, x0, -123; sd t1, 8(t0); ld t2, 8(t0);
        // sub t3, t2, t1 (must be 0); beq t3, x0, +8; ecall(bad);
        // exit(0)
        let mut words = vec![
            crate::rv64::enc_u(0x37, 5, 0x2_0000),
            enc_i(0x13, 6, 0, 0, -123),
            enc_s(0x23, 3, 5, 6, 8),
            enc_i(0x03, 28, 3, 5, 8),
            enc_r(0x33, 29, 0, 28, 6, 0x20),
            enc_b(0x63, 0, 29, 0, 8),
            0x0000_0073, // skipped when the branch is taken
        ];
        words.extend(exit_words(0));
        let mut exec = Executor::new(&image(&words));
        let events: Vec<_> = exec.by_ref().collect::<Result<_, _>>().unwrap();
        assert_eq!(exec.exit_code(), Some(0), "subtraction mismatch: value did not round-trip");
        let store = &events[2];
        assert_eq!(store.op, Op::Store);
        assert_eq!(store.addr, Some(0x2_0008));
        let load = &events[3];
        assert_eq!(load.op, Op::Load);
        assert_eq!(load.addr, Some(0x2_0008));
        let branch = &events[5];
        assert_eq!(branch.op, Op::Branch);
        assert!(branch.branch.unwrap().taken);
    }

    #[test]
    fn compressed_loops_execute() {
        // Mixed 16/32-bit stream: c.li a0, 0; c.addi a0, 1 x2; exit(a0)
        // c.li a0,0 = 0x4501; c.addi a0,1 = 0x0505
        let mut data: Vec<u8> = Vec::new();
        for half in [0x4501u16, 0x0505, 0x0505] {
            data.extend_from_slice(&half.to_le_bytes());
        }
        for w in [enc_i(0x13, 17, 0, 0, 93), 0x0000_0073] {
            data.extend_from_slice(&w.to_le_bytes());
        }
        let memsz = data.len() as u64;
        let image =
            ElfImage { entry: 0x1_0000, segments: vec![Segment { vaddr: 0x1_0000, data, memsz }] };
        let mut exec = Executor::new(&image);
        let n = exec.by_ref().collect::<Result<Vec<_>, _>>().unwrap().len();
        assert_eq!(n, 4);
        assert_eq!(exec.exit_code(), Some(2));
    }

    #[test]
    fn faults_surface_as_named_errors() {
        // Jump into zeroed memory: the all-zero parcel is illegal.
        let events: Vec<_> = Executor::new(&image(&[0x0000_006f + (8 << 21)])) // jal x0, +8...
            .collect();
        // Last (only) event is an error.
        assert!(matches!(events.last().unwrap(), Err(IngestError::UnsupportedInstruction { .. })));

        // Unknown syscall.
        let words = vec![enc_i(0x13, 17, 0, 0, 64), 0x0000_0073]; // write()
        let events: Vec<_> = Executor::new(&image(&words)).collect();
        assert!(matches!(events.last().unwrap(), Err(IngestError::UnsupportedSyscall(64))));

        // Instruction budget: an infinite loop (jal x0, 0).
        let cfg = ExecConfig { max_instrs: 100 };
        let events: Vec<_> =
            Executor::with_config(&image(&[crate::rv64::enc_j(0x6f, 0, 0)]), cfg).collect();
        assert_eq!(events.len(), 101);
        assert!(matches!(events.last().unwrap(), Err(IngestError::InstructionLimit(100))));
    }

    #[test]
    fn determinism_same_image_same_stream() {
        let mut words = vec![
            enc_i(0x13, 5, 0, 0, 0),  // t0 = 0
            enc_i(0x13, 6, 0, 0, 50), // t1 = 50
            enc_i(0x13, 5, 0, 5, 1),  // loop: t0 += 1
            enc_b(0x63, 1, 5, 6, -4), // bne t0, t1, loop
        ];
        words.extend(exit_words(0));
        let a: Vec<_> = Executor::new(&image(&words)).collect::<Result<_, _>>().unwrap();
        let b: Vec<_> = Executor::new(&image(&words)).collect::<Result<_, _>>().unwrap();
        assert_eq!(a, b);
        assert!(a.iter().filter(|i| i.op == Op::Branch).count() == 50);
    }
}
