//! Folds an instruction-event stream into the [`WorkloadProfile`] form
//! the analytical model consumes.
//!
//! The pass is single-streaming: one `observe` per dynamic instruction,
//! O(1) amortized work each (the reuse tracker pays an extra `log n`
//! per memory access). The quantities mirror what the paper's
//! instrumentation run extracts:
//!
//! * **instruction mix** — class counts over the stream;
//! * **mean dependency distance** — mean of all present backward
//!   producer distances;
//! * **branch misprediction rate** — the executor's deterministic
//!   gshare verdicts, averaged;
//! * **reuse CDF** — exact per-64-byte-line stack (reuse) distances via
//!   a last-access map plus a Fenwick tree, bucketed onto a fixed
//!   capacity grid and normalized among *non-streaming* accesses, which
//!   matches the analytical model's `hit = curve × (1 − streaming)`
//!   split;
//! * **streaming fraction** — cold first touches plus reuses farther
//!   than the largest grid capacity;
//! * **MLP** — 1 + the mean number of independent memory operations in
//!   the 7 instructions preceding each access (clamped to `[1, 8]`);
//! * **conflict fraction** — total-variation skew of line-to-set
//!   occupancy over 64 sets.

use std::collections::HashMap;

use dse_workloads::{InstMix, Instr, Op, WorkloadProfile};

/// Cache line size assumed for reuse distances, in bytes.
pub const LINE_BYTES: u64 = 64;
/// Capacity grid (KiB) on which the reuse CDF is sampled.
pub const CAPACITY_GRID_KIB: [f64; 7] = [1.0, 4.0, 16.0, 64.0, 256.0, 1024.0, 4096.0];
/// Sets assumed for the conflict-skew estimate.
const CONFLICT_SETS: usize = 64;
/// Look-back window for the MLP estimate.
const MLP_WINDOW: usize = 7;

/// Fenwick (binary-indexed) tree over mem-access timestamps, holding a
/// 0/1 marker at the *latest* access time of each live line. Grows by
/// doubling with an O(n) rebuild, so appends stay amortized O(log n).
struct Fenwick {
    tree: Vec<i64>,
    raw: Vec<u8>,
}

impl Fenwick {
    fn new() -> Self {
        Fenwick { tree: vec![0], raw: Vec::new() }
    }

    /// Appends a zero slot for timestamp `raw.len() + 1`.
    fn push_slot(&mut self) {
        self.raw.push(0);
        if self.raw.len() >= self.tree.len() {
            let new_len = (self.tree.len() * 2).max(16);
            self.tree = vec![0; new_len];
            for i in 0..self.raw.len() {
                if self.raw[i] == 1 {
                    self.add_tree(i + 1, 1);
                }
            }
        }
    }

    fn add_tree(&mut self, mut i: usize, delta: i64) {
        while i < self.tree.len() {
            self.tree[i] += delta;
            i += i & i.wrapping_neg();
        }
    }

    fn set(&mut self, i: usize, on: bool) {
        let want = on as u8;
        if self.raw[i - 1] != want {
            self.raw[i - 1] = want;
            self.add_tree(i, if on { 1 } else { -1 });
        }
    }

    /// Sum of markers in `[1, i]`.
    fn prefix(&self, mut i: usize) -> i64 {
        let mut s = 0;
        while i > 0 {
            s += self.tree[i];
            i -= i & i.wrapping_neg();
        }
        s
    }
}

/// Streaming workload characterizer; see the module docs for the
/// extracted quantities.
pub struct Characterizer {
    name: String,
    counts: [u64; 6],
    dep_sum: u64,
    dep_count: u64,
    mispredicted: u64,
    /// `(was_memory, instruction index)` ring of the last few retired
    /// instructions, for the MLP window.
    window: [bool; MLP_WINDOW],
    index: u64,
    /// Reuse bookkeeping.
    last_access: HashMap<u64, usize>,
    marks: Fenwick,
    mem_time: usize,
    cold: u64,
    far: u64,
    /// Histogram of reuse distances per grid bucket.
    reuse_hist: [u64; CAPACITY_GRID_KIB.len()],
    mlp_sum: u64,
    mlp_count: u64,
    set_counts: [u64; CONFLICT_SETS],
}

impl Characterizer {
    /// Creates an empty characterizer for a workload called `name`.
    pub fn new(name: impl Into<String>) -> Self {
        Characterizer {
            name: name.into(),
            counts: [0; 6],
            dep_sum: 0,
            dep_count: 0,
            mispredicted: 0,
            window: [false; MLP_WINDOW],
            index: 0,
            last_access: HashMap::new(),
            marks: Fenwick::new(),
            mem_time: 0,
            cold: 0,
            far: 0,
            reuse_hist: [0; CAPACITY_GRID_KIB.len()],
            mlp_sum: 0,
            mlp_count: 0,
            set_counts: [0; CONFLICT_SETS],
        }
    }

    /// Instructions observed so far.
    pub fn instructions(&self) -> u64 {
        self.index
    }

    /// Folds one dynamic instruction into the summary.
    pub fn observe(&mut self, instr: &Instr) {
        let class = match instr.op {
            Op::IntAlu => 0,
            Op::IntMul => 1,
            Op::Load => 2,
            Op::Store => 3,
            Op::FpAlu => 4,
            Op::Branch => 5,
        };
        self.counts[class] += 1;
        for dep in instr.deps.into_iter().flatten() {
            self.dep_sum += dep as u64;
            self.dep_count += 1;
        }
        if let Some(b) = instr.branch {
            if b.mispredicted {
                self.mispredicted += 1;
            }
        }
        if let Some(addr) = instr.addr {
            self.observe_access(addr, instr.deps);
        }
        self.window[(self.index % MLP_WINDOW as u64) as usize] = instr.addr.is_some();
        self.index += 1;
    }

    fn observe_access(&mut self, addr: u64, deps: [Option<u32>; 2]) {
        // MLP: memory ops in the preceding window that are not this
        // access's own producers count as overlappable.
        let lookback = (self.index.min(MLP_WINDOW as u64)) as u32;
        let mut independent = 0u64;
        for k in 1..=lookback {
            let slot = ((self.index - k as u64) % MLP_WINDOW as u64) as usize;
            if self.window[slot] && deps[0] != Some(k) && deps[1] != Some(k) {
                independent += 1;
            }
        }
        self.mlp_sum += independent;
        self.mlp_count += 1;

        let line = addr / LINE_BYTES;
        self.set_counts[(line % CONFLICT_SETS as u64) as usize] += 1;

        self.mem_time += 1;
        self.marks.push_slot();
        match self.last_access.insert(line, self.mem_time) {
            None => self.cold += 1,
            Some(prev) => {
                // Distinct lines touched strictly between the two
                // accesses to this line, plus the line itself.
                let distinct =
                    (self.marks.prefix(self.mem_time - 1) - self.marks.prefix(prev)) as u64 + 1;
                self.marks.set(prev, false);
                let mut bucketed = false;
                for (i, cap_kib) in CAPACITY_GRID_KIB.iter().enumerate() {
                    if distinct <= (cap_kib * 1024.0 / LINE_BYTES as f64) as u64 {
                        self.reuse_hist[i] += 1;
                        bucketed = true;
                        break;
                    }
                }
                if !bucketed {
                    self.far += 1;
                }
            }
        }
        self.marks.set(self.mem_time, true);
    }

    /// Produces the validated profile.
    ///
    /// # Errors
    ///
    /// A human-readable description when the stream was empty or the
    /// folded quantities violate a [`WorkloadProfile::validate`]
    /// invariant (which would indicate a bug in this pass).
    pub fn finish(self) -> Result<WorkloadProfile, String> {
        let total: u64 = self.counts.iter().sum();
        if total == 0 {
            return Err("no instructions observed; cannot characterize an empty stream".into());
        }
        let t = total as f64;
        let mix = InstMix {
            int_alu: self.counts[0] as f64 / t,
            int_mul: self.counts[1] as f64 / t,
            load: self.counts[2] as f64 / t,
            store: self.counts[3] as f64 / t,
            fp: self.counts[4] as f64 / t,
            branch: self.counts[5] as f64 / t,
        };
        let mean_dep_distance = if self.dep_count == 0 {
            1.0
        } else {
            (self.dep_sum as f64 / self.dep_count as f64).max(1.0)
        };
        let branches = self.counts[5];
        let branch_mispredict_rate =
            if branches == 0 { 0.0 } else { self.mispredicted as f64 / branches as f64 };
        let mem_total = self.counts[2] + self.counts[3];
        let streaming = self.cold + self.far;
        let streaming_frac = if mem_total == 0 {
            0.0
        } else {
            (streaming as f64 / mem_total as f64).clamp(0.0, 1.0)
        };
        let reused: u64 = self.reuse_hist.iter().sum();
        let reuse_hit_points: Vec<(f64, f64)> = if reused == 0 {
            // No temporal reuse at all: the curve is vacuous, and all
            // misses are already carried by `streaming_frac`.
            CAPACITY_GRID_KIB.iter().map(|&c| (c, 1.0)).collect()
        } else {
            let mut acc = 0u64;
            CAPACITY_GRID_KIB
                .iter()
                .zip(self.reuse_hist.iter())
                .map(|(&c, &n)| {
                    acc += n;
                    (c, acc as f64 / reused as f64)
                })
                .collect()
        };
        let mlp = if self.mlp_count == 0 {
            1.0
        } else {
            (1.0 + self.mlp_sum as f64 / self.mlp_count as f64).clamp(1.0, 8.0)
        };
        let conflict_frac = if mem_total == 0 {
            0.0
        } else {
            let uniform = 1.0 / CONFLICT_SETS as f64;
            let tv: f64 = self
                .set_counts
                .iter()
                .map(|&n| (n as f64 / mem_total as f64 - uniform).abs())
                .sum::<f64>()
                * 0.5;
            tv.clamp(0.0, 1.0)
        };
        let profile = WorkloadProfile {
            name: Box::leak(self.name.into_boxed_str()),
            mix,
            mean_dep_distance,
            branch_mispredict_rate,
            streaming_frac,
            reuse_hit_points,
            mlp,
            conflict_frac,
        };
        profile.validate()?;
        Ok(profile)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dse_workloads::BranchInfo;

    fn load(addr: u64) -> Instr {
        Instr { op: Op::Load, deps: [None, None], addr: Some(addr), branch: None }
    }

    #[test]
    fn empty_stream_is_an_error() {
        let err = Characterizer::new("empty").finish().unwrap_err();
        assert!(err.contains("no instructions"), "{err}");
    }

    #[test]
    fn mix_and_rates_fold_exactly() {
        let mut c = Characterizer::new("mixed");
        for _ in 0..6 {
            c.observe(&Instr::nop());
        }
        c.observe(&load(0));
        c.observe(&Instr { op: Op::Store, deps: [Some(1), None], addr: Some(64), branch: None });
        c.observe(&Instr {
            op: Op::Branch,
            deps: [Some(3), None],
            addr: None,
            branch: Some(BranchInfo { site: 1, taken: true, mispredicted: true }),
        });
        c.observe(&Instr {
            op: Op::Branch,
            deps: [None, None],
            addr: None,
            branch: Some(BranchInfo { site: 1, taken: true, mispredicted: false }),
        });
        let p = c.finish().unwrap();
        assert!((p.mix.int_alu - 0.6).abs() < 1e-12);
        assert!((p.mix.load - 0.1).abs() < 1e-12);
        assert!((p.mix.store - 0.1).abs() < 1e-12);
        assert!((p.mix.branch - 0.2).abs() < 1e-12);
        assert_eq!(p.mix.fp, 0.0);
        assert!((p.branch_mispredict_rate - 0.5).abs() < 1e-12);
        assert!((p.mean_dep_distance - 2.0).abs() < 1e-12);
        p.validate().unwrap();
    }

    #[test]
    fn cold_stream_is_all_streaming() {
        let mut c = Characterizer::new("stream");
        for i in 0..1000u64 {
            c.observe(&load(i * 64));
        }
        let p = c.finish().unwrap();
        assert_eq!(p.streaming_frac, 1.0);
        // Vacuous curve: every point 1.0, monotone grid.
        assert!(p.reuse_hit_points.iter().all(|&(_, h)| h == 1.0));
        p.validate().unwrap();
    }

    #[test]
    fn tight_reuse_lands_in_the_smallest_capacity() {
        let mut c = Characterizer::new("hot");
        // Two lines hammered alternately: reuse distance 2 lines.
        for i in 0..1000u64 {
            c.observe(&load((i % 2) * 64));
        }
        let p = c.finish().unwrap();
        // 2 cold accesses of 1000.
        assert!((p.streaming_frac - 0.002).abs() < 1e-9);
        assert_eq!(p.reuse_hit_points[0].1, 1.0, "distance-2 reuse fits 1 KiB");
        p.validate().unwrap();
    }

    #[test]
    fn reuse_distance_is_stack_distance_not_time() {
        let mut c = Characterizer::new("stack");
        // A, then 100 accesses to ONE other line, then A again: only 2
        // distinct lines between the A pair, so A's reuse is tiny even
        // though 100 accesses elapsed.
        c.observe(&load(0));
        for _ in 0..100 {
            c.observe(&load(4096));
        }
        c.observe(&load(0));
        let p = c.finish().unwrap();
        // 2 cold + 100 reuses: all reuses fit the smallest capacity.
        assert_eq!(p.reuse_hit_points[0].1, 1.0);
        p.validate().unwrap();
    }

    #[test]
    fn far_reuse_counts_as_streaming() {
        let mut c = Characterizer::new("far");
        let lines = 80_000u64; // 80k lines × 64 B = ~5 MiB > 4 MiB grid top
        for round in 0..2 {
            let _ = round;
            for i in 0..lines {
                c.observe(&load(i * 64));
            }
        }
        let p = c.finish().unwrap();
        // Every access is either cold or farther than the grid top.
        assert_eq!(p.streaming_frac, 1.0);
        p.validate().unwrap();
    }

    #[test]
    fn conflict_skew_detects_single_set_hammering() {
        let mut c = Characterizer::new("conflict");
        // All accesses map to set 0: addresses stride by 64 lines
        // (64 × 64 B = 4096 B), so every line index is ≡ 0 mod 64.
        for i in 0..1000u64 {
            c.observe(&load((i % 4) * 4096));
        }
        let p = c.finish().unwrap();
        assert!(p.conflict_frac > 0.9, "single-set skew should be near 1, got {}", p.conflict_frac);
        let mut u = Characterizer::new("uniform");
        for i in 0..64_000u64 {
            u.observe(&load((i % 64) * 64));
        }
        let pu = u.finish().unwrap();
        assert!(
            pu.conflict_frac < 0.01,
            "uniform sets should have ~0 skew, got {}",
            pu.conflict_frac
        );
    }

    #[test]
    fn mlp_counts_independent_neighbors() {
        let mut c = Characterizer::new("mlp");
        // Back-to-back independent loads: each sees up to 7 mem ops in
        // its window, none of which are producers.
        for i in 0..100u64 {
            c.observe(&load(i * 64));
        }
        let p = c.finish().unwrap();
        assert!(p.mlp > 7.0, "independent load train should saturate MLP, got {}", p.mlp);
        // A strict pointer chase: each load depends on the previous one.
        let mut d = Characterizer::new("chase");
        d.observe(&load(0));
        for i in 1..100u64 {
            d.observe(&Instr {
                op: Op::Load,
                deps: [Some(1), None],
                addr: Some(i * 64),
                branch: None,
            });
        }
        let pd = d.finish().unwrap();
        assert!(
            pd.mlp < p.mlp,
            "a chase ({}) must score below the independent train ({})",
            pd.mlp,
            p.mlp
        );
    }
}
