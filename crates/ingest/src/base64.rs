//! Minimal standard-alphabet base64 with padding — just enough for the
//! `/v1/workloads` upload path, which must carry ELF bytes inside a
//! JSON string over the std-only HTTP front door.

const ALPHABET: &[u8; 64] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

/// Encodes bytes with the standard alphabet and `=` padding.
pub fn encode(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len().div_ceil(3) * 4);
    for chunk in bytes.chunks(3) {
        let b = [chunk[0], *chunk.get(1).unwrap_or(&0), *chunk.get(2).unwrap_or(&0)];
        let n = ((b[0] as u32) << 16) | ((b[1] as u32) << 8) | (b[2] as u32);
        out.push(ALPHABET[(n >> 18) as usize & 63] as char);
        out.push(ALPHABET[(n >> 12) as usize & 63] as char);
        out.push(if chunk.len() > 1 { ALPHABET[(n >> 6) as usize & 63] as char } else { '=' });
        out.push(if chunk.len() > 2 { ALPHABET[n as usize & 63] as char } else { '=' });
    }
    out
}

fn value_of(c: u8) -> Option<u32> {
    match c {
        b'A'..=b'Z' => Some((c - b'A') as u32),
        b'a'..=b'z' => Some((c - b'a' + 26) as u32),
        b'0'..=b'9' => Some((c - b'0' + 52) as u32),
        b'+' => Some(62),
        b'/' => Some(63),
        _ => None,
    }
}

/// Decodes a standard-alphabet base64 string (padding required,
/// whitespace rejected).
///
/// # Errors
///
/// A static description of the first malformed quantum.
pub fn decode(text: &str) -> Result<Vec<u8>, &'static str> {
    let bytes = text.as_bytes();
    if !bytes.len().is_multiple_of(4) {
        return Err("base64 length is not a multiple of 4");
    }
    let mut out = Vec::with_capacity(bytes.len() / 4 * 3);
    for (i, quad) in bytes.chunks_exact(4).enumerate() {
        let last = i + 1 == bytes.len() / 4;
        let pads = quad.iter().rev().take_while(|&&c| c == b'=').count();
        if pads > 2 || (pads > 0 && !last) {
            return Err("misplaced base64 padding");
        }
        let mut n = 0u32;
        for &c in &quad[..4 - pads] {
            n = (n << 6) | value_of(c).ok_or("invalid base64 character")?;
        }
        n <<= 6 * pads as u32;
        out.push((n >> 16) as u8);
        if pads < 2 {
            out.push((n >> 8) as u8);
        }
        if pads < 1 {
            out.push(n as u8);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_all_padding_lengths() {
        for len in 0..32usize {
            let data: Vec<u8> =
                (0..len as u8).map(|i| i.wrapping_mul(37).wrapping_add(5)).collect();
            let text = encode(&data);
            assert_eq!(decode(&text).unwrap(), data, "len {len}: {text}");
        }
    }

    #[test]
    fn known_vectors() {
        assert_eq!(encode(b""), "");
        assert_eq!(encode(b"f"), "Zg==");
        assert_eq!(encode(b"fo"), "Zm8=");
        assert_eq!(encode(b"foo"), "Zm9v");
        assert_eq!(encode(b"foobar"), "Zm9vYmFy");
        assert_eq!(decode("Zm9vYmFy").unwrap(), b"foobar");
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(decode("abc").is_err());
        assert!(decode("ab=c").is_err());
        assert!(decode("a===").is_err());
        assert!(decode("Zg==Zm8=").is_err()); // padding before the end
        assert!(decode("Zm 9").is_err());
    }
}
