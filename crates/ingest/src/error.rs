//! Named error types for every way ingestion can fail.
//!
//! The CLI and the service print these verbatim, so each variant spells
//! out what was wrong *and* what would have been accepted — the same
//! convention the serve protocol errors follow.

use std::error::Error;
use std::fmt;
use std::io;

/// Why an ELF image or an execution could not be ingested.
#[derive(Debug)]
pub enum IngestError {
    /// The file could not be read at all.
    Io(io::Error),
    /// The bytes do not start with the `\x7fELF` magic.
    NotElf,
    /// The ELF is not 64-bit little-endian (`ELFCLASS64` + `ELFDATA2LSB`).
    UnsupportedElf(&'static str),
    /// The ELF targets a machine other than RISC-V (`EM_RISCV` = 243).
    WrongMachine(u16),
    /// The ELF is a dynamically linked executable or shared object
    /// (`ET_DYN`); only statically linked `ET_EXEC` images run here.
    DynamicallyLinked,
    /// A structural field points outside the file.
    Malformed(&'static str),
    /// The executor met an instruction outside the supported RV64IMC
    /// integer subset.
    UnsupportedInstruction {
        /// Program counter of the offending instruction.
        pc: u64,
        /// The raw instruction parcel (32-bit, or 16-bit zero-extended).
        word: u32,
    },
    /// The program counter left 2-byte alignment (a malformed jump).
    UnalignedPc(u64),
    /// An `ecall` asked for a system call other than `exit`/`exit_group`.
    UnsupportedSyscall(u64),
    /// The program ran past the configured instruction budget without
    /// exiting.
    InstructionLimit(u64),
    /// The executed stream could not be folded into a valid
    /// [`WorkloadProfile`](dse_workloads::WorkloadProfile).
    Characterize(String),
}

impl fmt::Display for IngestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IngestError::Io(e) => write!(f, "cannot read input: {e}"),
            IngestError::NotElf => {
                write!(
                    f,
                    "not an ELF file (missing \\x7fELF magic); expected a statically \
                           linked RV64 executable"
                )
            }
            IngestError::UnsupportedElf(what) => {
                write!(f, "unsupported ELF: {what}; expected a 64-bit little-endian image")
            }
            IngestError::WrongMachine(m) => {
                write!(f, "ELF machine {m} is not RISC-V (EM_RISCV = 243)")
            }
            IngestError::DynamicallyLinked => {
                write!(
                    f,
                    "dynamically linked executable (ET_DYN); link statically \
                           (e.g. -static -nostdlib) and retry"
                )
            }
            IngestError::Malformed(what) => write!(f, "malformed ELF: {what}"),
            IngestError::UnsupportedInstruction { pc, word } => {
                write!(
                    f,
                    "unsupported instruction {word:#010x} at pc {pc:#x} (the executor \
                           covers the RV64IMC integer subset)"
                )
            }
            IngestError::UnalignedPc(pc) => write!(f, "jump to unaligned pc {pc:#x}"),
            IngestError::UnsupportedSyscall(n) => {
                write!(
                    f,
                    "unsupported syscall {n} (only exit/exit_group, a7 = 93/94, are \
                           shimmed)"
                )
            }
            IngestError::InstructionLimit(n) => {
                write!(f, "program exceeded the {n}-instruction budget without exiting")
            }
            IngestError::Characterize(msg) => write!(f, "characterization failed: {msg}"),
        }
    }
}

impl Error for IngestError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            IngestError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for IngestError {
    fn from(e: io::Error) -> Self {
        IngestError::Io(e)
    }
}

/// Why an on-disk trace file could not be read or written.
#[derive(Debug)]
pub enum TraceFileError {
    /// The underlying reader or writer failed.
    Io(io::Error),
    /// The file does not start with the `ADTF` magic.
    BadMagic,
    /// The file's format version is newer than this reader understands.
    FutureVersion(u16),
    /// The file ended in the middle of a header, chunk frame or record.
    Truncated(&'static str),
    /// The bytes violate the format (bad op code, zero dependency
    /// distance, reserved bits set, frame/payload mismatch, …).
    Corrupt(&'static str),
    /// The in-memory instruction cannot be represented by the format
    /// (e.g. a branch payload on a non-branch op).
    Unencodable(&'static str),
}

impl fmt::Display for TraceFileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceFileError::Io(e) => write!(f, "trace file I/O failed: {e}"),
            TraceFileError::BadMagic => {
                write!(f, "not a trace file (missing ADTF magic)")
            }
            TraceFileError::FutureVersion(v) => {
                write!(
                    f,
                    "trace format version {v} is newer than this reader (supports \
                           version 1)"
                )
            }
            TraceFileError::Truncated(where_) => {
                write!(f, "truncated trace file: unexpected end of data in {where_}")
            }
            TraceFileError::Corrupt(what) => write!(f, "corrupt trace file: {what}"),
            TraceFileError::Unencodable(what) => {
                write!(f, "instruction not representable in the trace format: {what}")
            }
        }
    }
}

impl Error for TraceFileError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            TraceFileError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for TraceFileError {
    fn from(e: io::Error) -> Self {
        TraceFileError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_name_the_failure_and_the_fix() {
        let dyn_ = IngestError::DynamicallyLinked.to_string();
        assert!(dyn_.contains("dynamically linked") && dyn_.contains("-static"), "{dyn_}");
        let not = IngestError::NotElf.to_string();
        assert!(not.contains("not an ELF"), "{not}");
        let magic = TraceFileError::BadMagic.to_string();
        assert!(magic.contains("ADTF"), "{magic}");
        let future = TraceFileError::FutureVersion(9).to_string();
        assert!(future.contains("version 9") && future.contains("version 1"), "{future}");
    }
}
