//! Real RISC-V workload ingestion.
//!
//! This crate turns a statically linked RV64 ELF binary into a
//! first-class workload for the rest of the stack:
//!
//! 1. [`elf`] loads the image (`PT_LOAD` segments + entry point);
//! 2. [`exec`] runs it functionally — an RV64IMC integer-subset
//!    executor streaming one [`Instr`](dse_workloads::Instr) event per
//!    retired instruction, with exact register-dependency distances,
//!    byte addresses and deterministic gshare branch verdicts;
//! 3. [`characterize`] folds that stream into the
//!    [`WorkloadProfile`] form the
//!    analytical low-fidelity model consumes;
//! 4. [`trace_file`] persists the stream in a compact varint-packed
//!    chunked format that reads back with chunk-bounded memory, so an
//!    ingested binary replays through the high-fidelity simulator
//!    without ever materializing in RAM.
//!
//! The same ELF always yields the same event stream, the same trace
//! bytes and the same profile — ingestion is deterministic end to end.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod base64;
pub mod characterize;
pub mod elf;
mod error;
pub mod exec;
pub mod rv64;
pub mod trace_file;

pub use characterize::Characterizer;
pub use elf::{ElfImage, Segment};
pub use error::{IngestError, TraceFileError};
pub use exec::{ExecConfig, Executor};
pub use trace_file::{TraceReader, TraceWriter};

use dse_workloads::{Trace, WorkloadProfile};

/// Everything ingestion extracts from one binary, in memory.
///
/// For multi-million-instruction programs prefer the streaming pieces
/// ([`Executor`] + [`TraceWriter`] + [`Characterizer`]) — this
/// convenience holds the whole trace.
#[derive(Debug, Clone)]
pub struct Ingested {
    /// Workload name (caller-chosen).
    pub name: String,
    /// Characterization in the synthetic-benchmark profile form.
    pub profile: WorkloadProfile,
    /// The full dynamic instruction trace.
    pub trace: Trace,
    /// The code the program passed to `exit`.
    pub exit_code: u64,
}

/// Runs `elf_bytes` to completion and returns its trace and profile.
///
/// # Errors
///
/// Any [`IngestError`]: unparseable or dynamically linked ELF, an
/// unsupported instruction or syscall, the instruction budget, or a
/// stream that cannot be characterized (e.g. a program exiting before
/// retiring a single instruction).
pub fn ingest_elf(
    name: &str,
    elf_bytes: &[u8],
    config: ExecConfig,
) -> Result<Ingested, IngestError> {
    let image = ElfImage::parse(elf_bytes)?;
    let mut executor = Executor::with_config(&image, config);
    let mut characterizer = Characterizer::new(name);
    let mut trace = Vec::new();
    for event in executor.by_ref() {
        let instr = event?;
        characterizer.observe(&instr);
        trace.push(instr);
    }
    let profile = characterizer.finish().map_err(IngestError::Characterize)?;
    Ok(Ingested {
        name: name.to_string(),
        profile,
        trace,
        exit_code: executor.exit_code().unwrap_or(0),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rv64::{enc_b, enc_i};

    /// Assembles a minimal ELF around raw instruction words (mirrors
    /// the builder the fixture generator uses).
    pub(crate) fn wrap_elf(words: &[u32]) -> Vec<u8> {
        let mut text = Vec::new();
        for w in words {
            text.extend_from_slice(&w.to_le_bytes());
        }
        let mut f = vec![0u8; 0x78];
        f[..4].copy_from_slice(&[0x7f, b'E', b'L', b'F']);
        f[4] = 2;
        f[5] = 1;
        f[6] = 1;
        f[16..18].copy_from_slice(&2u16.to_le_bytes()); // ET_EXEC
        f[18..20].copy_from_slice(&243u16.to_le_bytes()); // EM_RISCV
        f[24..32].copy_from_slice(&0x1_0000u64.to_le_bytes());
        f[32..40].copy_from_slice(&64u64.to_le_bytes());
        f[54..56].copy_from_slice(&56u16.to_le_bytes());
        f[56..58].copy_from_slice(&1u16.to_le_bytes());
        let ph = 64;
        f[ph..ph + 4].copy_from_slice(&1u32.to_le_bytes()); // PT_LOAD
        f[ph + 8..ph + 16].copy_from_slice(&0x78u64.to_le_bytes());
        f[ph + 16..ph + 24].copy_from_slice(&0x1_0000u64.to_le_bytes());
        f[ph + 32..ph + 40].copy_from_slice(&(text.len() as u64).to_le_bytes());
        f[ph + 40..ph + 48].copy_from_slice(&(text.len() as u64).to_le_bytes());
        f.extend_from_slice(&text);
        f
    }

    #[test]
    fn ingest_elf_produces_a_valid_profile_and_trace() {
        // A 20-iteration count loop with a store per iteration.
        let words = vec![
            enc_i(0x13, 5, 0, 0, 0),               // t0 = 0
            enc_i(0x13, 6, 0, 0, 20),              // t1 = 20
            crate::rv64::enc_u(0x37, 7, 0x2_0000), // t2 = buffer
            enc_i(0x13, 5, 0, 5, 1),               // loop: t0 += 1
            crate::rv64::enc_s(0x23, 3, 7, 5, 0),  // sd t0, 0(t2)
            enc_b(0x63, 1, 5, 6, -8),              // bne t0, t1, loop
            enc_i(0x13, 10, 0, 0, 0),
            enc_i(0x13, 17, 0, 0, 93),
            0x0000_0073,
        ];
        let ingested = ingest_elf("loop", &wrap_elf(&words), ExecConfig::default()).unwrap();
        assert_eq!(ingested.exit_code, 0);
        ingested.profile.validate().unwrap();
        assert!(ingested.trace.len() > 60);
        assert!(ingested.profile.mix.store > 0.0);
        assert!(ingested.profile.mix.branch > 0.0);

        // Determinism: same bytes, same everything.
        let again = ingest_elf("loop", &wrap_elf(&words), ExecConfig::default()).unwrap();
        assert_eq!(again.trace, ingested.trace);
        assert_eq!(again.profile, ingested.profile);

        // And the trace round-trips through the on-disk format.
        let bytes = trace_file::encode_trace(&ingested.trace).unwrap();
        assert_eq!(trace_file::decode_trace(&bytes).unwrap(), ingested.trace);
    }
}
