//! Row-major dense matrix.

use std::fmt;
use std::ops::{Add, Index, IndexMut, Mul, Sub};

use serde::{Deserialize, Serialize};

/// A dense, row-major `f64` matrix.
///
/// Sized for the kernel matrices of the GP baselines (hundreds of rows),
/// not for HPC workloads; all operations are straightforward loops.
///
/// # Examples
///
/// ```
/// use dse_linalg::Matrix;
///
/// let m = Matrix::from_fn(2, 3, |r, c| (r * 3 + c) as f64);
/// assert_eq!(m[(1, 2)], 5.0);
/// assert_eq!(m.transpose()[(2, 1)], 5.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows × cols` matrix filled with zeros.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be non-zero");
        Self { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a matrix by evaluating `f(row, col)` at every position.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut m = Self::zeros(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                m[(r, c)] = f(r, c);
            }
        }
        m
    }

    /// Creates a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if `rows` is empty or the rows have differing lengths.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        assert!(!rows.is_empty(), "at least one row required");
        let cols = rows[0].len();
        assert!(rows.iter().all(|r| r.len() == cols), "ragged rows");
        let mut m = Self::zeros(rows.len(), cols);
        for (r, row) in rows.iter().enumerate() {
            m.row_mut(r).copy_from_slice(row);
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Whether the matrix is square.
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Borrows row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of bounds.
    pub fn row(&self, r: usize) -> &[f64] {
        assert!(r < self.rows, "row {r} out of bounds ({} rows)", self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrows row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of bounds.
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        assert!(r < self.rows, "row {r} out of bounds ({} rows)", self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> Matrix {
        Matrix::from_fn(self.cols, self.rows, |r, c| self[(c, r)])
    }

    /// Matrix–vector product `self · v`.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != self.cols()`.
    pub fn matvec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.cols, "matvec dimension mismatch");
        (0..self.rows).map(|r| self.row(r).iter().zip(v).map(|(a, b)| a * b).sum()).collect()
    }

    /// Returns `self` scaled by `s`.
    pub fn scale(&self, s: f64) -> Matrix {
        Matrix { rows: self.rows, cols: self.cols, data: self.data.iter().map(|x| x * s).collect() }
    }

    /// Adds `s` to every diagonal entry (e.g. a GP jitter/noise term).
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn add_diagonal(&self, s: f64) -> Matrix {
        assert!(self.is_square(), "add_diagonal requires a square matrix");
        let mut m = self.clone();
        for i in 0..self.rows {
            m[(i, i)] += s;
        }
        m
    }

    /// Maximum absolute difference from `other`, for approximate equality
    /// in tests.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn max_abs_diff(&self, other: &Matrix) -> f64 {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols), "shape mismatch");
        self.data.iter().zip(&other.data).map(|(a, b)| (a - b).abs()).fold(0.0, f64::max)
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        assert!(r < self.rows && c < self.cols, "index ({r},{c}) out of bounds");
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        assert!(r < self.rows && c < self.cols, "index ({r},{c}) out of bounds");
        &mut self.data[r * self.cols + c]
    }
}

impl Add for &Matrix {
    type Output = Matrix;

    fn add(self, rhs: &Matrix) -> Matrix {
        assert_eq!((self.rows, self.cols), (rhs.rows, rhs.cols), "shape mismatch in add");
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().zip(&rhs.data).map(|(a, b)| a + b).collect(),
        }
    }
}

impl Sub for &Matrix {
    type Output = Matrix;

    fn sub(self, rhs: &Matrix) -> Matrix {
        assert_eq!((self.rows, self.cols), (rhs.rows, rhs.cols), "shape mismatch in sub");
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().zip(&rhs.data).map(|(a, b)| a - b).collect(),
        }
    }
}

impl Mul for &Matrix {
    type Output = Matrix;

    fn mul(self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.cols, rhs.rows, "shape mismatch in mul");
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        for r in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(r, k)];
                if a == 0.0 {
                    continue;
                }
                for c in 0..rhs.cols {
                    out[(r, c)] += a * rhs[(k, c)];
                }
            }
        }
        out
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in 0..self.rows {
            for c in 0..self.cols {
                if c > 0 {
                    write!(f, " ")?;
                }
                write!(f, "{:10.4}", self[(r, c)])?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_is_multiplicative_unit() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let i = Matrix::identity(2);
        assert_eq!(&a * &i, a);
        assert_eq!(&i * &a, a);
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_fn(3, 5, |r, c| (r * 31 + c) as f64);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn matvec_matches_matmul() {
        let a = Matrix::from_rows(&[&[1.0, -2.0, 0.5], &[0.0, 3.0, 1.0]]);
        let v = [2.0, 1.0, 4.0];
        assert_eq!(a.matvec(&v), vec![2.0, 7.0]);
    }

    #[test]
    fn add_sub_roundtrip() {
        let a = Matrix::from_fn(2, 2, |r, c| (r + c) as f64);
        let b = Matrix::from_fn(2, 2, |r, c| (r * c) as f64 + 1.0);
        let sum = &a + &b;
        assert_eq!(&sum - &b, a);
    }

    #[test]
    fn add_diagonal_only_touches_diagonal() {
        let a = Matrix::zeros(3, 3);
        let j = a.add_diagonal(0.5);
        for r in 0..3 {
            for c in 0..3 {
                let expect = if r == c { 0.5 } else { 0.0 };
                assert_eq!(j[(r, c)], expect);
            }
        }
    }

    #[test]
    #[should_panic(expected = "shape mismatch in mul")]
    fn mul_shape_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = &a * &b;
    }

    #[test]
    #[should_panic(expected = "ragged rows")]
    fn ragged_rows_panics() {
        let _ = Matrix::from_rows(&[&[1.0, 2.0], &[3.0]]);
    }
}
