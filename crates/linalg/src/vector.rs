//! Free functions on `&[f64]` slices.
//!
//! These helpers keep the GP/tree baselines readable without introducing a
//! dedicated vector type: design points and kernel rows are plain slices
//! everywhere in this workspace.

/// Dot product of two equal-length slices.
///
/// # Panics
///
/// Panics if the slices have different lengths.
///
/// # Examples
///
/// ```
/// assert_eq!(dse_linalg::vector::dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
/// ```
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot length mismatch");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Euclidean norm.
pub fn norm(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// Squared Euclidean distance between two points.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn squared_distance(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "distance length mismatch");
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// In-place `y += alpha * x`.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy length mismatch");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// Arithmetic mean; returns 0 for an empty slice.
pub fn mean(a: &[f64]) -> f64 {
    if a.is_empty() {
        0.0
    } else {
        a.iter().sum::<f64>() / a.len() as f64
    }
}

/// Population variance; returns 0 for slices shorter than 2.
pub fn variance(a: &[f64]) -> f64 {
    if a.len() < 2 {
        return 0.0;
    }
    let m = mean(a);
    a.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / a.len() as f64
}

/// Index of the minimum value; `None` for an empty slice, ignoring NaNs.
pub fn argmin(a: &[f64]) -> Option<usize> {
    a.iter()
        .enumerate()
        .filter(|(_, v)| !v.is_nan())
        .min_by(|(_, x), (_, y)| x.total_cmp(y))
        .map(|(i, _)| i)
}

/// Index of the maximum value; `None` for an empty slice, ignoring NaNs.
pub fn argmax(a: &[f64]) -> Option<usize> {
    a.iter()
        .enumerate()
        .filter(|(_, v)| !v.is_nan())
        .max_by(|(_, x), (_, y)| x.total_cmp(y))
        .map(|(i, _)| i)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn norm_of_unit_axes() {
        assert_eq!(norm(&[3.0, 4.0]), 5.0);
        assert_eq!(norm(&[]), 0.0);
    }

    #[test]
    fn axpy_accumulates() {
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[1.0, -1.0], &mut y);
        assert_eq!(y, vec![3.0, -1.0]);
    }

    #[test]
    fn mean_and_variance() {
        let a = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert_eq!(mean(&a), 5.0);
        assert_eq!(variance(&a), 4.0);
        assert_eq!(variance(&[1.0]), 0.0);
    }

    #[test]
    fn argmin_argmax_skip_nan() {
        let a = [3.0, f64::NAN, -1.0, 5.0];
        assert_eq!(argmin(&a), Some(2));
        assert_eq!(argmax(&a), Some(3));
        assert_eq!(argmin(&[]), None);
    }

    #[test]
    fn squared_distance_is_symmetric() {
        let a = [1.0, 2.0, 3.0];
        let b = [0.0, -2.0, 4.0];
        assert_eq!(squared_distance(&a, &b), squared_distance(&b, &a));
        assert_eq!(squared_distance(&a, &a), 0.0);
    }
}
