//! Small dense linear-algebra kernels used by the ArchDSE baselines.
//!
//! The Gaussian-process surrogates behind the BOOM-Explorer and SCBO
//! baselines need dense symmetric solves on kernel matrices of a few
//! hundred rows at most, so this crate deliberately implements a compact,
//! dependency-free toolkit instead of pulling in a full BLAS stack:
//!
//! * [`Matrix`] — a row-major dense `f64` matrix with the usual
//!   constructors and arithmetic;
//! * [`Cholesky`] — an LLᵀ factorization with forward/backward solves and
//!   a log-determinant, the workhorse of GP regression;
//! * [`vector`] — free functions on `&[f64]` slices (dot products, norms,
//!   elementwise combinations).
//!
//! # Examples
//!
//! Solving a small symmetric positive-definite system:
//!
//! ```
//! use dse_linalg::{Matrix, Cholesky};
//!
//! # fn main() -> Result<(), dse_linalg::FactorizeError> {
//! let a = Matrix::from_rows(&[&[4.0, 1.0], &[1.0, 3.0]]);
//! let chol = Cholesky::new(&a)?;
//! let x = chol.solve(&[1.0, 2.0]);
//! assert!((4.0 * x[0] + 1.0 * x[1] - 1.0).abs() < 1e-12);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cholesky;
mod matrix;
pub mod vector;

pub use cholesky::{Cholesky, FactorizeError};
pub use matrix::Matrix;
