//! Cholesky (LLᵀ) factorization of symmetric positive-definite matrices.

use std::error::Error;
use std::fmt;

use crate::Matrix;

/// Error returned when a matrix cannot be Cholesky-factorized.
///
/// Produced by [`Cholesky::new`] when the input is not square, not
/// (numerically) symmetric positive-definite, or contains non-finite
/// entries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FactorizeError {
    /// The input matrix was not square.
    NotSquare,
    /// A pivot at the reported column was non-positive or non-finite, so
    /// the matrix is not positive-definite.
    NotPositiveDefinite {
        /// Column at which factorization broke down.
        column: usize,
    },
}

impl fmt::Display for FactorizeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FactorizeError::NotSquare => write!(f, "matrix is not square"),
            FactorizeError::NotPositiveDefinite { column } => {
                write!(f, "matrix is not positive-definite (pivot {column})")
            }
        }
    }
}

impl Error for FactorizeError {}

/// The lower-triangular Cholesky factor `L` of an SPD matrix `A = L·Lᵀ`.
///
/// Used by the GP baselines to solve `A·x = b` and to compute the
/// log-determinant term of the GP marginal likelihood.
///
/// # Examples
///
/// ```
/// use dse_linalg::{Cholesky, Matrix};
///
/// # fn main() -> Result<(), dse_linalg::FactorizeError> {
/// let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]);
/// let chol = Cholesky::new(&a)?;
/// // log det(A) = ln 3
/// assert!((chol.log_det() - 3.0f64.ln()).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Cholesky {
    l: Matrix,
}

impl Cholesky {
    /// Factorizes a symmetric positive-definite matrix.
    ///
    /// Only the lower triangle of `a` is read, so slight asymmetry from
    /// floating-point noise in kernel construction is tolerated.
    ///
    /// # Errors
    ///
    /// Returns [`FactorizeError::NotSquare`] for rectangular input and
    /// [`FactorizeError::NotPositiveDefinite`] when a pivot is not a
    /// finite positive number (add diagonal jitter and retry in that
    /// case).
    pub fn new(a: &Matrix) -> Result<Self, FactorizeError> {
        if !a.is_square() {
            return Err(FactorizeError::NotSquare);
        }
        let n = a.rows();
        let mut l = Matrix::zeros(n, n);
        for j in 0..n {
            let mut diag = a[(j, j)];
            for k in 0..j {
                diag -= l[(j, k)] * l[(j, k)];
            }
            if !(diag.is_finite() && diag > 0.0) {
                return Err(FactorizeError::NotPositiveDefinite { column: j });
            }
            let diag = diag.sqrt();
            l[(j, j)] = diag;
            for i in (j + 1)..n {
                let mut v = a[(i, j)];
                for k in 0..j {
                    v -= l[(i, k)] * l[(j, k)];
                }
                l[(i, j)] = v / diag;
            }
        }
        Ok(Self { l })
    }

    /// Dimension of the factorized matrix.
    pub fn dim(&self) -> usize {
        self.l.rows()
    }

    /// Borrows the lower-triangular factor `L`.
    pub fn factor(&self) -> &Matrix {
        &self.l
    }

    /// Solves `L·y = b` (forward substitution).
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != self.dim()`.
    pub fn solve_lower(&self, b: &[f64]) -> Vec<f64> {
        let n = self.dim();
        assert_eq!(b.len(), n, "rhs length mismatch");
        let mut y = vec![0.0; n];
        for i in 0..n {
            let mut v = b[i];
            for (k, yk) in y.iter().enumerate().take(i) {
                v -= self.l[(i, k)] * yk;
            }
            y[i] = v / self.l[(i, i)];
        }
        y
    }

    /// Solves `Lᵀ·x = y` (backward substitution).
    ///
    /// # Panics
    ///
    /// Panics if `y.len() != self.dim()`.
    pub fn solve_upper(&self, y: &[f64]) -> Vec<f64> {
        let n = self.dim();
        assert_eq!(y.len(), n, "rhs length mismatch");
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut v = y[i];
            for (k, xk) in x.iter().enumerate().skip(i + 1) {
                v -= self.l[(k, i)] * xk;
            }
            x[i] = v / self.l[(i, i)];
        }
        x
    }

    /// Solves the full system `A·x = b` where `A = L·Lᵀ`.
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != self.dim()`.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        self.solve_upper(&self.solve_lower(b))
    }

    /// Log-determinant of the factorized matrix `A`.
    pub fn log_det(&self) -> f64 {
        (0..self.dim()).map(|i| self.l[(i, i)].ln()).sum::<f64>() * 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd(n: usize, seed: u64) -> Matrix {
        // B·Bᵀ + n·I is SPD for any B.
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state as f64 / u64::MAX as f64) - 0.5
        };
        let b = Matrix::from_fn(n, n, |_, _| next());
        (&b * &b.transpose()).add_diagonal(n as f64)
    }

    #[test]
    fn reconstructs_input() {
        let a = spd(6, 42);
        let chol = Cholesky::new(&a).unwrap();
        let l = chol.factor();
        let reconstructed = l * &l.transpose();
        assert!(reconstructed.max_abs_diff(&a) < 1e-9);
    }

    #[test]
    fn solve_satisfies_system() {
        let a = spd(8, 7);
        let chol = Cholesky::new(&a).unwrap();
        let b: Vec<f64> = (0..8).map(|i| i as f64 - 3.0).collect();
        let x = chol.solve(&b);
        let r = a.matvec(&x);
        for (ri, bi) in r.iter().zip(&b) {
            assert!((ri - bi).abs() < 1e-8, "residual too large: {ri} vs {bi}");
        }
    }

    #[test]
    fn log_det_matches_2x2() {
        let a = Matrix::from_rows(&[&[4.0, 0.0], &[0.0, 9.0]]);
        let chol = Cholesky::new(&a).unwrap();
        assert!((chol.log_det() - 36.0f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn rejects_rectangular() {
        let a = Matrix::zeros(2, 3);
        assert_eq!(Cholesky::new(&a).unwrap_err(), FactorizeError::NotSquare);
    }

    #[test]
    fn rejects_indefinite() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]); // eigenvalues 3, -1
        match Cholesky::new(&a).unwrap_err() {
            FactorizeError::NotPositiveDefinite { column } => assert_eq!(column, 1),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn rejects_nan() {
        let mut a = Matrix::identity(2);
        a[(0, 0)] = f64::NAN;
        assert!(matches!(
            Cholesky::new(&a).unwrap_err(),
            FactorizeError::NotPositiveDefinite { column: 0 }
        ));
    }
}
