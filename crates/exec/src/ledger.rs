//! The per-fidelity cost ledger — the single source of budget truth.
//!
//! A [`CostLedger`] sits between search code and the [`Evaluator`]s it
//! drives. Every proposal flows through [`CostLedger::evaluate`] /
//! [`CostLedger::evaluate_batch`] and lands in exactly one of three
//! counters:
//!
//! * **hit** — the ledger already evaluated this design earlier in the
//!   run; the stored CPI is replayed for free ([`LedgerEntry::Replayed`]).
//! * **miss + charged** — a design new to this run; the evaluator is
//!   invoked, the per-fidelity evaluation count rises by one
//!   ([`LedgerEntry::Charged`]). This charges the run's budget even when
//!   the evaluator answers from a memo warmed by *another* run — budgets
//!   meter proposals, not simulator work.
//! * **miss + denied** — a design new to this run proposed after the HF
//!   budget ran out; nothing is evaluated ([`LedgerEntry::Denied`]).
//!
//! `model_time_units` accumulates the actual cost of fresh model runs
//! (an evaluator-memo answer costs nothing), in units of one simulated
//! trace, so LF and HF spend are comparable on one axis.

use std::collections::HashMap;
use std::sync::OnceLock;
use std::time::Instant;

use dse_obs::{trace, Histogram};
use dse_space::{DesignPoint, DesignSpace};
use serde::{Deserialize, Serialize};

use crate::{Evaluation, Evaluator, Fidelity};

/// Short label for a fidelity in metrics and trace events.
fn fidelity_label(fidelity: Fidelity) -> &'static str {
    match fidelity {
        Fidelity::Low => "lf",
        Fidelity::High => "hf",
    }
}

/// Cached per-fidelity handle for the evaluator-call latency histogram.
fn eval_batch_seconds(fidelity: Fidelity) -> &'static Histogram {
    static LF: OnceLock<Histogram> = OnceLock::new();
    static HF: OnceLock<Histogram> = OnceLock::new();
    let cell = match fidelity {
        Fidelity::Low => &LF,
        Fidelity::High => &HF,
    };
    cell.get_or_init(|| {
        dse_obs::global().histogram_with(
            "exec_eval_batch_seconds",
            &[("fidelity", fidelity_label(fidelity))],
            dse_obs::LATENCY_BUCKETS_S,
        )
    })
}

/// Cached per-fidelity handle for the scheduled-batch-size histogram.
fn eval_batch_points(fidelity: Fidelity) -> &'static Histogram {
    static LF: OnceLock<Histogram> = OnceLock::new();
    static HF: OnceLock<Histogram> = OnceLock::new();
    let cell = match fidelity {
        Fidelity::Low => &LF,
        Fidelity::High => &HF,
    };
    cell.get_or_init(|| {
        dse_obs::global().histogram_with(
            "exec_eval_batch_points",
            &[("fidelity", fidelity_label(fidelity))],
            dse_obs::SIZE_BUCKETS,
        )
    })
}

/// Counters for one fidelity level of a [`CostLedger`].
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct FidelityLedger {
    /// Charged evaluations: run-unique designs handed to the evaluator.
    pub evaluations: u64,
    /// Proposals replayed from the ledger's run memo.
    pub cache_hits: u64,
    /// Proposals not in the run memo (charged or denied).
    pub cache_misses: u64,
    /// Proposals denied because the budget was exhausted.
    pub denied: u64,
    /// Cumulative cost of fresh model runs, in trace-simulation units.
    pub model_time_units: f64,
}

impl FidelityLedger {
    /// Total proposals that reached this fidelity.
    pub fn proposals(&self) -> u64 {
        self.cache_hits + self.cache_misses
    }

    /// Adds another ledger's counters into this one.
    pub fn absorb(&mut self, other: FidelityLedger) {
        self.evaluations += other.evaluations;
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        self.denied += other.denied;
        self.model_time_units += other.model_time_units;
    }
}

impl std::fmt::Display for FidelityLedger {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // LF trace-equivalents are thousandths, so keep enough precision
        // for small totals instead of truncating them to "0.0".
        let time = self.model_time_units;
        let digits = if time != 0.0 && time < 10.0 { 3 } else { 1 };
        write!(
            f,
            "{} evals ({} hits / {} misses, {} denied, {:.digits$} time units)",
            self.evaluations, self.cache_hits, self.cache_misses, self.denied, time
        )
    }
}

/// The serializable roll-up of a [`CostLedger`] for reports.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct LedgerSummary {
    /// Low-fidelity counters.
    pub low: FidelityLedger,
    /// High-fidelity counters.
    pub high: FidelityLedger,
    /// The HF evaluation budget, when one was installed.
    pub hf_budget: Option<u64>,
}

impl LedgerSummary {
    /// Total model time spent across both fidelities.
    pub fn total_model_time(&self) -> f64 {
        self.low.model_time_units + self.high.model_time_units
    }

    /// Adds another summary's counters into this one (budgets add too).
    pub fn absorb(&mut self, other: LedgerSummary) {
        self.low.absorb(other.low);
        self.high.absorb(other.high);
        self.hf_budget = match (self.hf_budget, other.hf_budget) {
            (None, None) => None,
            (a, b) => Some(a.unwrap_or(0) + b.unwrap_or(0)),
        };
    }
}

impl std::fmt::Display for LedgerSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "LF: {}", self.low)?;
        write!(f, "HF: {}", self.high)?;
        if let Some(budget) = self.hf_budget {
            write!(f, " [budget {budget}]")?;
        }
        Ok(())
    }
}

/// The outcome of proposing one design to a [`CostLedger`].
#[derive(Debug, Clone, PartialEq)]
pub enum LedgerEntry {
    /// A run-unique design: the evaluator ran and the budget was charged.
    Charged(Evaluation),
    /// A design this run already paid for; its CPI replayed for free.
    Replayed(f64),
    /// A new design proposed after the budget ran out; not evaluated.
    Denied,
}

impl LedgerEntry {
    /// The CPI, unless the proposal was denied.
    pub fn cpi(&self) -> Option<f64> {
        match self {
            LedgerEntry::Charged(ev) => Some(ev.cpi),
            LedgerEntry::Replayed(cpi) => Some(*cpi),
            LedgerEntry::Denied => None,
        }
    }

    /// Whether the proposal was denied for lack of budget.
    pub fn is_denied(&self) -> bool {
        matches!(self, LedgerEntry::Denied)
    }
}

/// Per-run evaluation accounting across both fidelities.
///
/// One ledger lives for one optimization run; evaluators (which may
/// carry memos shared across runs) are infrastructure handed in per
/// call. The ledger deduplicates proposals within the run, enforces the
/// HF budget, and meters model time — search code reads budgets and
/// counts *only* from here.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CostLedger {
    low: FidelityLedger,
    high: FidelityLedger,
    hf_budget: Option<u64>,
    seen_low: HashMap<u64, f64>,
    seen_high: HashMap<u64, f64>,
}

impl CostLedger {
    /// An empty ledger with no budget installed.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builder: installs an HF evaluation budget.
    pub fn with_hf_budget(mut self, budget: usize) -> Self {
        self.set_hf_budget(budget);
        self
    }

    /// Installs (or replaces) the HF evaluation budget.
    pub fn set_hf_budget(&mut self, budget: usize) {
        self.hf_budget = Some(budget as u64);
    }

    /// The installed HF budget, if any.
    pub fn hf_budget(&self) -> Option<usize> {
        self.hf_budget.map(|b| b as usize)
    }

    /// HF evaluations still affordable (`None` when unlimited).
    pub fn hf_remaining(&self) -> Option<usize> {
        self.hf_budget.map(|b| b.saturating_sub(self.high.evaluations) as usize)
    }

    /// The counters of one fidelity.
    pub fn section(&self, fidelity: Fidelity) -> &FidelityLedger {
        match fidelity {
            Fidelity::Low => &self.low,
            Fidelity::High => &self.high,
        }
    }

    /// Charged evaluation count of one fidelity.
    pub fn evaluations(&self, fidelity: Fidelity) -> usize {
        self.section(fidelity).evaluations as usize
    }

    /// The CPI this run already paid for, if any (uncounted peek).
    pub fn known(&self, fidelity: Fidelity, key: u64) -> Option<f64> {
        self.seen(fidelity).get(&key).copied()
    }

    /// Whether this run already evaluated the design (uncounted).
    pub fn knows(&self, fidelity: Fidelity, key: u64) -> bool {
        self.seen(fidelity).contains_key(&key)
    }

    /// Number of run-unique designs evaluated at one fidelity.
    pub fn unique_designs(&self, fidelity: Fidelity) -> usize {
        self.seen(fidelity).len()
    }

    /// Proposes one design: replay, charge, or deny.
    pub fn evaluate<E: Evaluator + ?Sized>(
        &mut self,
        evaluator: &mut E,
        space: &DesignSpace,
        point: &DesignPoint,
    ) -> LedgerEntry {
        self.evaluate_batch(evaluator, space, std::slice::from_ref(point))
            .pop()
            .expect("one-point batch produced no entry")
    }

    /// Proposes a batch of designs, in input order.
    ///
    /// Accounting is *counter-exact* with proposing each point one at a
    /// time: run-memo replays and budget charges happen sequentially in
    /// input order (so a budget that runs out mid-batch denies exactly
    /// the points the sequential walk would deny), and only the
    /// run-unique survivors go to the evaluator — in one
    /// `evaluate_batch` call, where backends parallelize.
    pub fn evaluate_batch<E: Evaluator + ?Sized>(
        &mut self,
        evaluator: &mut E,
        space: &DesignSpace,
        points: &[DesignPoint],
    ) -> Vec<LedgerEntry> {
        enum Slot {
            Ready(LedgerEntry),
            Fresh(usize),
            Dup(usize),
        }
        let fidelity = evaluator.fidelity();
        let before = *self.section(fidelity);
        // Pass 1 (sequential, input order): replay run-memo hits, fold
        // within-batch duplicates, charge or deny the rest.
        let mut scheduled: Vec<DesignPoint> = Vec::new();
        let mut scheduled_keys: HashMap<u64, usize> = HashMap::new();
        let mut slots: Vec<Slot> = Vec::with_capacity(points.len());
        for point in points {
            let key = space.encode(point);
            if let Some(&cpi) = self.seen(fidelity).get(&key) {
                self.section_mut(fidelity).cache_hits += 1;
                slots.push(Slot::Ready(LedgerEntry::Replayed(cpi)));
            } else if let Some(&idx) = scheduled_keys.get(&key) {
                // The sequential walk would answer this duplicate from
                // the run memo right after its first occurrence ran.
                self.section_mut(fidelity).cache_hits += 1;
                slots.push(Slot::Dup(idx));
            } else {
                self.section_mut(fidelity).cache_misses += 1;
                let exhausted = fidelity == Fidelity::High && self.hf_remaining() == Some(0);
                if exhausted {
                    self.section_mut(fidelity).denied += 1;
                    slots.push(Slot::Ready(LedgerEntry::Denied));
                } else {
                    self.section_mut(fidelity).evaluations += 1;
                    scheduled_keys.insert(key, scheduled.len());
                    slots.push(Slot::Fresh(scheduled.len()));
                    scheduled.push(point.clone());
                }
            }
        }
        // Pass 2: one batch call into the evaluator (parallel backends
        // keep this bit-identical to the sequential walk).
        let eval_start = Instant::now();
        let evaluated = if scheduled.is_empty() {
            Vec::new()
        } else {
            evaluator.evaluate_batch(space, &scheduled)
        };
        let eval_elapsed = eval_start.elapsed();
        assert_eq!(
            evaluated.len(),
            scheduled.len(),
            "evaluator returned {} results for {} designs",
            evaluated.len(),
            scheduled.len()
        );
        // Pass 3 (sequential, scheduled order): meter fresh model runs
        // and record the run memo.
        let cost = evaluator.cost_per_eval();
        for (point, ev) in scheduled.iter().zip(&evaluated) {
            if !ev.cached {
                self.section_mut(fidelity).model_time_units += cost;
            }
            self.seen_mut(fidelity).insert(space.encode(point), ev.cpi);
        }
        if !points.is_empty() {
            if !scheduled.is_empty() {
                eval_batch_seconds(fidelity).observe_duration(eval_elapsed);
                eval_batch_points(fidelity).observe(scheduled.len() as f64);
            }
            if trace::enabled() {
                // Every ledger mutation flows through this method, so
                // summing these deltas per fidelity over a whole trace
                // reproduces the final `LedgerSummary` exactly — the
                // invariant `trace-report` checks offline.
                let after = *self.section(fidelity);
                trace::event(
                    "ledger_batch",
                    &[
                        ("fidelity", fidelity_label(fidelity).into()),
                        ("proposals", points.len().into()),
                        ("evaluations", (after.evaluations - before.evaluations).into()),
                        ("cache_hits", (after.cache_hits - before.cache_hits).into()),
                        ("cache_misses", (after.cache_misses - before.cache_misses).into()),
                        ("denied", (after.denied - before.denied).into()),
                        (
                            "model_time_units",
                            (after.model_time_units - before.model_time_units).into(),
                        ),
                        ("dur_us", (eval_elapsed.as_micros() as u64).into()),
                    ],
                );
            }
        }
        slots
            .into_iter()
            .map(|slot| match slot {
                Slot::Ready(entry) => entry,
                Slot::Fresh(i) => LedgerEntry::Charged(evaluated[i].clone()),
                Slot::Dup(i) => LedgerEntry::Replayed(evaluated[i].cpi),
            })
            .collect()
    }

    /// The serializable roll-up for reports.
    pub fn summary(&self) -> LedgerSummary {
        LedgerSummary { low: self.low, high: self.high, hf_budget: self.hf_budget }
    }

    fn seen(&self, fidelity: Fidelity) -> &HashMap<u64, f64> {
        match fidelity {
            Fidelity::Low => &self.seen_low,
            Fidelity::High => &self.seen_high,
        }
    }

    fn seen_mut(&mut self, fidelity: Fidelity) -> &mut HashMap<u64, f64> {
        match fidelity {
            Fidelity::Low => &mut self.seen_low,
            Fidelity::High => &mut self.seen_high,
        }
    }

    fn section_mut(&mut self, fidelity: Fidelity) -> &mut FidelityLedger {
        match fidelity {
            Fidelity::Low => &mut self.low,
            Fidelity::High => &mut self.high,
        }
    }
}

impl std::fmt::Display for CostLedger {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.summary().fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CacheStats, CpiCache};

    /// A memoized test evaluator: CPI = encoded index as f64.
    struct Memo {
        cache: CpiCache,
        runs: usize,
    }

    impl Memo {
        fn new() -> Self {
            Self { cache: CpiCache::new(), runs: 0 }
        }
    }

    impl Evaluator for Memo {
        fn fidelity(&self) -> Fidelity {
            Fidelity::High
        }
        fn evaluate_batch(
            &mut self,
            space: &DesignSpace,
            points: &[DesignPoint],
        ) -> Vec<Evaluation> {
            points
                .iter()
                .map(|p| {
                    let key = space.encode(p);
                    match self.cache.get(key) {
                        Some(cpi) => Evaluation::new(cpi, Fidelity::High).cached(true),
                        None => {
                            self.runs += 1;
                            let cpi = key as f64;
                            self.cache.insert(key, cpi);
                            Evaluation::new(cpi, Fidelity::High)
                        }
                    }
                })
                .collect()
        }
        fn cache_stats(&self) -> CacheStats {
            self.cache.stats()
        }
        fn cost_per_eval(&self) -> f64 {
            3.0
        }
    }

    fn points(space: &DesignSpace, codes: &[u64]) -> Vec<DesignPoint> {
        codes.iter().map(|&c| space.decode(c)).collect()
    }

    #[test]
    fn charges_replays_and_denies_in_input_order() {
        let space = DesignSpace::boom();
        let mut ledger = CostLedger::new().with_hf_budget(2);
        let mut memo = Memo::new();
        // 5 → charged; 5 → replayed; 9 → charged (budget now spent);
        // 9 → replayed (already paid); 13 → denied.
        let batch = points(&space, &[5, 5, 9, 9, 13]);
        let entries = ledger.evaluate_batch(&mut memo, &space, &batch);
        assert_eq!(entries[0], LedgerEntry::Charged(Evaluation::new(5.0, Fidelity::High)));
        assert_eq!(entries[1], LedgerEntry::Replayed(5.0));
        assert_eq!(entries[2].cpi(), Some(9.0));
        assert_eq!(entries[3], LedgerEntry::Replayed(9.0));
        assert!(entries[4].is_denied());
        let high = *ledger.section(Fidelity::High);
        assert_eq!(high.evaluations, 2);
        assert_eq!(high.cache_hits, 2);
        assert_eq!(high.cache_misses, 3);
        assert_eq!(high.denied, 1);
        assert_eq!(high.model_time_units, 6.0);
        assert_eq!(ledger.hf_remaining(), Some(0));
        assert_eq!(memo.runs, 2);
    }

    #[test]
    fn batch_accounting_matches_the_sequential_walk() {
        let space = DesignSpace::boom();
        let codes = [3u64, 17, 3, 42, 17, 8, 42, 99, 3];
        let batch = points(&space, &codes);

        let mut batched_ledger = CostLedger::new().with_hf_budget(4);
        let mut batched_memo = Memo::new();
        let batched = batched_ledger.evaluate_batch(&mut batched_memo, &space, &batch);

        let mut walked_ledger = CostLedger::new().with_hf_budget(4);
        let mut walked_memo = Memo::new();
        let walked: Vec<LedgerEntry> =
            batch.iter().map(|p| walked_ledger.evaluate(&mut walked_memo, &space, p)).collect();

        assert_eq!(batched, walked);
        assert_eq!(batched_ledger, walked_ledger);
        assert_eq!(batched_memo.cache.stats(), walked_memo.cache.stats());
    }

    #[test]
    fn warm_evaluator_memo_still_charges_the_run() {
        let space = DesignSpace::boom();
        let mut memo = Memo::new();
        // Warm the evaluator's memo in a first run.
        let mut first = CostLedger::new();
        first.evaluate(&mut memo, &space, &space.decode(7));
        // A second run proposing the same design is still charged one
        // evaluation — but no fresh model time is spent.
        let mut second = CostLedger::new().with_hf_budget(1);
        let entry = second.evaluate(&mut memo, &space, &space.decode(7));
        match entry {
            LedgerEntry::Charged(ev) => assert!(ev.cached),
            other => panic!("expected a charged entry, got {other:?}"),
        }
        assert_eq!(second.evaluations(Fidelity::High), 1);
        assert_eq!(second.section(Fidelity::High).model_time_units, 0.0);
        assert_eq!(second.hf_remaining(), Some(0));
        assert_eq!(memo.runs, 1);
    }

    #[test]
    fn zero_budget_denies_everything_and_one_allows_one() {
        let space = DesignSpace::boom();
        let mut memo = Memo::new();
        let mut zero = CostLedger::new().with_hf_budget(0);
        assert!(zero.evaluate(&mut memo, &space, &space.decode(4)).is_denied());
        assert_eq!(zero.section(Fidelity::High).denied, 1);
        assert_eq!(memo.runs, 0);

        let mut one = CostLedger::new().with_hf_budget(1);
        let batch = points(&space, &[4, 6]);
        let entries = one.evaluate_batch(&mut memo, &space, &batch);
        assert_eq!(entries[0].cpi(), Some(4.0));
        assert!(entries[1].is_denied());
        // The design this run paid for replays even with zero remaining.
        assert_eq!(one.evaluate(&mut memo, &space, &space.decode(4)), LedgerEntry::Replayed(4.0));
    }

    #[test]
    fn fidelities_account_separately() {
        struct Lf;
        impl Evaluator for Lf {
            fn fidelity(&self) -> Fidelity {
                Fidelity::Low
            }
            fn evaluate_batch(
                &mut self,
                space: &DesignSpace,
                points: &[DesignPoint],
            ) -> Vec<Evaluation> {
                points
                    .iter()
                    .map(|p| Evaluation::new(space.encode(p) as f64, Fidelity::Low))
                    .collect()
            }
            fn cost_per_eval(&self) -> f64 {
                0.001
            }
        }
        let space = DesignSpace::boom();
        let mut ledger = CostLedger::new().with_hf_budget(0);
        // LF evaluations are never limited by the HF budget.
        let entry = ledger.evaluate(&mut Lf, &space, &space.decode(11));
        assert_eq!(entry.cpi(), Some(11.0));
        assert_eq!(ledger.evaluations(Fidelity::Low), 1);
        assert_eq!(ledger.evaluations(Fidelity::High), 0);
        assert!(ledger.knows(Fidelity::Low, 11));
        assert!(!ledger.knows(Fidelity::High, 11));
        let summary = ledger.summary();
        assert_eq!(summary.low.evaluations, 1);
        assert_eq!(summary.hf_budget, Some(0));
        assert!((summary.total_model_time() - 0.001).abs() < 1e-12);
    }

    #[test]
    fn summaries_absorb_counters_and_budgets() {
        let mut a = LedgerSummary {
            low: FidelityLedger { evaluations: 2, ..Default::default() },
            high: FidelityLedger { evaluations: 3, model_time_units: 9.0, ..Default::default() },
            hf_budget: Some(5),
        };
        let b = LedgerSummary {
            high: FidelityLedger { evaluations: 1, model_time_units: 3.0, ..Default::default() },
            hf_budget: None,
            ..Default::default()
        };
        a.absorb(b);
        assert_eq!(a.low.evaluations, 2);
        assert_eq!(a.high.evaluations, 4);
        assert_eq!(a.high.model_time_units, 12.0);
        assert_eq!(a.hf_budget, Some(5));
    }

    #[test]
    fn summary_round_trips_through_serde_and_displays() {
        let summary = CostLedger::new().with_hf_budget(9).summary();
        let content = serde::Serialize::to_content(&summary);
        let restored: LedgerSummary = serde::Deserialize::from_content(&content).unwrap();
        assert_eq!(summary, restored);
        let text = format!("{summary}");
        assert!(text.contains("LF:") && text.contains("HF:") && text.contains("budget 9"));
    }
}
