//! The per-tier cost ledger — the single source of budget truth.
//!
//! A [`CostLedger`] sits between search code and the [`Evaluator`]s it
//! drives. Every proposal flows through [`CostLedger::evaluate`] /
//! [`CostLedger::evaluate_batch`] and lands in exactly one of three
//! counters:
//!
//! * **hit** — the ledger already evaluated this design earlier in the
//!   run; the stored CPI is replayed for free ([`LedgerEntry::Replayed`]).
//! * **miss + charged** — a design new to this run; the evaluator is
//!   invoked, the per-tier evaluation count rises by one
//!   ([`LedgerEntry::Charged`]). This charges the run's budget even when
//!   the evaluator answers from a memo warmed by *another* run — budgets
//!   meter proposals, not simulator work.
//! * **miss + denied** — a design new to this run proposed after the
//!   budget ran out; nothing is evaluated ([`LedgerEntry::Denied`]).
//!
//! The budget meters charged evaluations at every tier at or above the
//! [budget floor](CostLedger::set_budget_floor) — [`Fidelity::High`] by
//! default, which reproduces the classic two-fidelity HF budget exactly.
//! A tiered run lowers the floor to [`Fidelity::Learned`] so learned-
//! and HF-tier charges spend the same budget while their
//! `model_time_units` stay separate.
//!
//! `model_time_units` accumulates the actual cost of fresh model runs
//! (an evaluator-memo answer costs nothing), in units of one simulated
//! trace, so all tiers' spend is comparable on one axis.

use std::collections::HashMap;
use std::sync::OnceLock;
use std::time::Instant;

use dse_obs::{trace, Histogram};
use dse_space::{DesignPoint, DesignSpace};
use serde::{Deserialize, Serialize};

use crate::{Evaluation, Evaluator, Fidelity};

/// Cached per-tier handle for the evaluator-call latency histogram.
fn eval_batch_seconds(fidelity: Fidelity) -> &'static Histogram {
    static CELLS: [OnceLock<Histogram>; Fidelity::COUNT] =
        [const { OnceLock::new() }; Fidelity::COUNT];
    CELLS[fidelity.tier()].get_or_init(|| {
        dse_obs::global().histogram_with(
            "exec_eval_batch_seconds",
            &[("fidelity", fidelity.key())],
            dse_obs::LATENCY_BUCKETS_S,
        )
    })
}

/// Cached per-tier handle for the scheduled-batch-size histogram.
fn eval_batch_points(fidelity: Fidelity) -> &'static Histogram {
    static CELLS: [OnceLock<Histogram>; Fidelity::COUNT] =
        [const { OnceLock::new() }; Fidelity::COUNT];
    CELLS[fidelity.tier()].get_or_init(|| {
        dse_obs::global().histogram_with(
            "exec_eval_batch_points",
            &[("fidelity", fidelity.key())],
            dse_obs::SIZE_BUCKETS,
        )
    })
}

/// Counters for one tier of a [`CostLedger`].
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct FidelityLedger {
    /// Charged evaluations: run-unique designs handed to the evaluator.
    pub evaluations: u64,
    /// Proposals replayed from the ledger's run memo.
    pub cache_hits: u64,
    /// Proposals not in the run memo (charged or denied).
    pub cache_misses: u64,
    /// Proposals denied because the budget was exhausted.
    pub denied: u64,
    /// Cumulative cost of fresh model runs, in trace-simulation units.
    pub model_time_units: f64,
}

impl FidelityLedger {
    /// Total proposals that reached this tier.
    pub fn proposals(&self) -> u64 {
        self.cache_hits + self.cache_misses
    }

    /// Adds another ledger's counters into this one.
    pub fn absorb(&mut self, other: FidelityLedger) {
        self.evaluations += other.evaluations;
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        self.denied += other.denied;
        self.model_time_units += other.model_time_units;
    }
}

impl std::fmt::Display for FidelityLedger {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // LF trace-equivalents are thousandths, so keep enough precision
        // for small totals instead of truncating them to "0.0".
        let time = self.model_time_units;
        let digits = if time != 0.0 && time < 10.0 { 3 } else { 1 };
        write!(
            f,
            "{} evals ({} hits / {} misses, {} denied, {:.digits$} time units)",
            self.evaluations, self.cache_hits, self.cache_misses, self.denied, time
        )
    }
}

/// The serializable roll-up of a [`CostLedger`] for reports.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LedgerSummary {
    /// Low-fidelity (tier 0) counters.
    pub low: FidelityLedger,
    /// Learned mid-tier (tier 1) counters.
    pub learned: FidelityLedger,
    /// High-fidelity (tier 2) counters.
    pub high: FidelityLedger,
    /// The evaluation budget, when one was installed.
    pub hf_budget: Option<u64>,
    /// The cheapest tier whose charges consume the budget.
    pub budget_floor: Fidelity,
}

impl Default for LedgerSummary {
    fn default() -> Self {
        Self {
            low: FidelityLedger::default(),
            learned: FidelityLedger::default(),
            high: FidelityLedger::default(),
            hf_budget: None,
            budget_floor: Fidelity::High,
        }
    }
}

impl LedgerSummary {
    /// The counters of one tier.
    pub fn section(&self, fidelity: Fidelity) -> &FidelityLedger {
        match fidelity.tier() {
            0 => &self.low,
            1 => &self.learned,
            _ => &self.high,
        }
    }

    /// Every tier's counters, cheapest first.
    pub fn sections(&self) -> [(Fidelity, &FidelityLedger); Fidelity::COUNT] {
        [
            (Fidelity::Low, &self.low),
            (Fidelity::Learned, &self.learned),
            (Fidelity::High, &self.high),
        ]
    }

    /// Total model time spent across all tiers.
    pub fn total_model_time(&self) -> f64 {
        self.sections().iter().map(|(_, s)| s.model_time_units).sum()
    }

    /// Charged evaluations at tiers at or above the budget floor.
    pub fn budgeted_evaluations(&self) -> u64 {
        self.sections()
            .iter()
            .filter(|(f, _)| *f >= self.budget_floor)
            .map(|(_, s)| s.evaluations)
            .sum()
    }

    /// Adds another summary's counters into this one (budgets add too;
    /// the lower budget floor wins).
    pub fn absorb(&mut self, other: LedgerSummary) {
        self.low.absorb(other.low);
        self.learned.absorb(other.learned);
        self.high.absorb(other.high);
        self.hf_budget = match (self.hf_budget, other.hf_budget) {
            (None, None) => None,
            (a, b) => Some(a.unwrap_or(0) + b.unwrap_or(0)),
        };
        self.budget_floor = self.budget_floor.min(other.budget_floor);
    }
}

impl std::fmt::Display for LedgerSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "LF: {}", self.low)?;
        if self.learned.proposals() > 0 || self.learned.denied > 0 {
            writeln!(f, "learned: {}", self.learned)?;
        }
        write!(f, "HF: {}", self.high)?;
        if let Some(budget) = self.hf_budget {
            write!(f, " [budget {budget}")?;
            if self.budget_floor < Fidelity::High {
                write!(f, " from {}", self.budget_floor.key())?;
            }
            write!(f, "]")?;
        }
        Ok(())
    }
}

/// The outcome of proposing one design to a [`CostLedger`].
#[derive(Debug, Clone, PartialEq)]
pub enum LedgerEntry {
    /// A run-unique design: the evaluator ran and the budget was charged.
    Charged(Evaluation),
    /// A design this run already paid for; its CPI replayed for free.
    Replayed(f64),
    /// A new design proposed after the budget ran out; not evaluated.
    Denied,
}

impl LedgerEntry {
    /// The CPI, unless the proposal was denied.
    pub fn cpi(&self) -> Option<f64> {
        match self {
            LedgerEntry::Charged(ev) => Some(ev.cpi),
            LedgerEntry::Replayed(cpi) => Some(*cpi),
            LedgerEntry::Denied => None,
        }
    }

    /// Whether the proposal was denied for lack of budget.
    pub fn is_denied(&self) -> bool {
        matches!(self, LedgerEntry::Denied)
    }
}

/// One tier's run-local state: counters plus the run memo.
#[derive(Debug, Clone, PartialEq, Default)]
struct TierState {
    counters: FidelityLedger,
    seen: HashMap<u64, f64>,
}

/// Per-run evaluation accounting across the whole tier stack.
///
/// One ledger lives for one optimization run; evaluators (which may
/// carry memos shared across runs) are infrastructure handed in per
/// call. The ledger deduplicates proposals within the run, enforces the
/// budget over the tiers at or above the budget floor, and meters model
/// time — search code reads budgets and counts *only* from here.
#[derive(Debug, Clone, PartialEq)]
pub struct CostLedger {
    tiers: [TierState; Fidelity::COUNT],
    budget: Option<u64>,
    budget_floor: Fidelity,
}

impl Default for CostLedger {
    fn default() -> Self {
        Self { tiers: Default::default(), budget: None, budget_floor: Fidelity::High }
    }
}

impl CostLedger {
    /// An empty ledger with no budget installed.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builder: installs an evaluation budget (floor unchanged, so by
    /// default this is the classic HF budget).
    pub fn with_hf_budget(mut self, budget: usize) -> Self {
        self.set_hf_budget(budget);
        self
    }

    /// Installs (or replaces) the evaluation budget.
    pub fn set_hf_budget(&mut self, budget: usize) {
        self.budget = Some(budget as u64);
    }

    /// Sets the cheapest tier whose charges consume the budget.
    ///
    /// The default floor is [`Fidelity::High`]: only HF charges spend
    /// the budget, exactly the pre-stack behavior. A tiered run lowers
    /// the floor to [`Fidelity::Learned`] so a confident learned-tier
    /// answer spends one budget unit just like an HF simulation — equal
    /// budgets then mean equal totals of budgeted answers, while the
    /// metered model time shows what the routing actually saved.
    pub fn set_budget_floor(&mut self, floor: Fidelity) {
        self.budget_floor = floor;
    }

    /// The cheapest tier whose charges consume the budget.
    pub fn budget_floor(&self) -> Fidelity {
        self.budget_floor
    }

    /// The installed budget, if any.
    pub fn hf_budget(&self) -> Option<usize> {
        self.budget.map(|b| b as usize)
    }

    /// Budgeted evaluations still affordable (`None` when unlimited).
    pub fn hf_remaining(&self) -> Option<usize> {
        self.budget.map(|b| b.saturating_sub(self.budgeted_evaluations()) as usize)
    }

    /// Charged evaluations at tiers at or above the budget floor.
    pub fn budgeted_evaluations(&self) -> u64 {
        Fidelity::STACK
            .into_iter()
            .filter(|f| *f >= self.budget_floor)
            .map(|f| self.tiers[f.tier()].counters.evaluations)
            .sum()
    }

    /// The counters of one tier.
    pub fn section(&self, fidelity: Fidelity) -> &FidelityLedger {
        &self.tiers[fidelity.tier()].counters
    }

    /// Charged evaluation count of one tier.
    pub fn evaluations(&self, fidelity: Fidelity) -> usize {
        self.section(fidelity).evaluations as usize
    }

    /// The CPI this run already paid for, if any (uncounted peek).
    pub fn known(&self, fidelity: Fidelity, key: u64) -> Option<f64> {
        self.tiers[fidelity.tier()].seen.get(&key).copied()
    }

    /// Whether this run already evaluated the design (uncounted).
    pub fn knows(&self, fidelity: Fidelity, key: u64) -> bool {
        self.tiers[fidelity.tier()].seen.contains_key(&key)
    }

    /// Number of run-unique designs evaluated at one tier.
    pub fn unique_designs(&self, fidelity: Fidelity) -> usize {
        self.tiers[fidelity.tier()].seen.len()
    }

    /// Proposes one design: replay, charge, or deny.
    pub fn evaluate<E: Evaluator + ?Sized>(
        &mut self,
        evaluator: &mut E,
        space: &DesignSpace,
        point: &DesignPoint,
    ) -> LedgerEntry {
        self.evaluate_batch(evaluator, space, std::slice::from_ref(point))
            .pop()
            .expect("one-point batch produced no entry")
    }

    /// Proposes a batch of designs, in input order.
    ///
    /// Accounting is *counter-exact* with proposing each point one at a
    /// time: run-memo replays and budget charges happen sequentially in
    /// input order (so a budget that runs out mid-batch denies exactly
    /// the points the sequential walk would deny), and only the
    /// run-unique survivors go to the evaluator — in one
    /// `evaluate_batch` call, where backends parallelize.
    pub fn evaluate_batch<E: Evaluator + ?Sized>(
        &mut self,
        evaluator: &mut E,
        space: &DesignSpace,
        points: &[DesignPoint],
    ) -> Vec<LedgerEntry> {
        enum Slot {
            Ready(LedgerEntry),
            Fresh(usize),
            Dup(usize),
        }
        let fidelity = evaluator.fidelity();
        let before = *self.section(fidelity);
        let budgeted = fidelity >= self.budget_floor;
        // Pass 1 (sequential, input order): replay run-memo hits, fold
        // within-batch duplicates, charge or deny the rest.
        let mut scheduled: Vec<DesignPoint> = Vec::new();
        let mut scheduled_keys: HashMap<u64, usize> = HashMap::new();
        let mut slots: Vec<Slot> = Vec::with_capacity(points.len());
        for point in points {
            let key = space.encode(point);
            if let Some(&cpi) = self.tiers[fidelity.tier()].seen.get(&key) {
                self.section_mut(fidelity).cache_hits += 1;
                slots.push(Slot::Ready(LedgerEntry::Replayed(cpi)));
            } else if let Some(&idx) = scheduled_keys.get(&key) {
                // The sequential walk would answer this duplicate from
                // the run memo right after its first occurrence ran.
                self.section_mut(fidelity).cache_hits += 1;
                slots.push(Slot::Dup(idx));
            } else {
                self.section_mut(fidelity).cache_misses += 1;
                let exhausted = budgeted && self.hf_remaining() == Some(0);
                if exhausted {
                    self.section_mut(fidelity).denied += 1;
                    slots.push(Slot::Ready(LedgerEntry::Denied));
                } else {
                    self.section_mut(fidelity).evaluations += 1;
                    scheduled_keys.insert(key, scheduled.len());
                    slots.push(Slot::Fresh(scheduled.len()));
                    scheduled.push(point.clone());
                }
            }
        }
        // Pass 2: one batch call into the evaluator (parallel backends
        // keep this bit-identical to the sequential walk).
        let eval_start = Instant::now();
        let evaluated = if scheduled.is_empty() {
            Vec::new()
        } else {
            evaluator.evaluate_batch(space, &scheduled)
        };
        let eval_elapsed = eval_start.elapsed();
        assert_eq!(
            evaluated.len(),
            scheduled.len(),
            "evaluator returned {} results for {} designs",
            evaluated.len(),
            scheduled.len()
        );
        // Pass 3 (sequential, scheduled order): meter fresh model runs
        // and record the run memo.
        let cost = evaluator.cost_per_eval();
        for (point, ev) in scheduled.iter().zip(&evaluated) {
            if !ev.cached {
                self.section_mut(fidelity).model_time_units += cost;
            }
            self.tiers[fidelity.tier()].seen.insert(space.encode(point), ev.cpi);
        }
        if !points.is_empty() {
            if !scheduled.is_empty() {
                eval_batch_seconds(fidelity).observe_duration(eval_elapsed);
                eval_batch_points(fidelity).observe(scheduled.len() as f64);
            }
            if trace::enabled() {
                // Every ledger mutation flows through this method, so
                // summing these deltas per tier over a whole trace
                // reproduces the final `LedgerSummary` exactly — the
                // invariant `trace-report` checks offline.
                let after = *self.section(fidelity);
                let mut fields: Vec<(&str, trace::FieldValue)> = vec![
                    ("fidelity", fidelity.key().into()),
                    ("proposals", points.len().into()),
                    ("evaluations", (after.evaluations - before.evaluations).into()),
                    ("cache_hits", (after.cache_hits - before.cache_hits).into()),
                    ("cache_misses", (after.cache_misses - before.cache_misses).into()),
                    ("denied", (after.denied - before.denied).into()),
                    ("model_time_units", (after.model_time_units - before.model_time_units).into()),
                    ("dur_us", (eval_elapsed.as_micros() as u64).into()),
                ];
                // Span links: when a coalesced service batch parked the
                // trace ids it serves (`trace::set_batch_links`), the
                // batch record names every member request it fanned
                // cost back to.
                let links = trace::take_batch_links();
                if !links.is_empty() {
                    fields.push(("links", links.into()));
                }
                trace::event("ledger_batch", &fields);
            }
        }
        slots
            .into_iter()
            .map(|slot| match slot {
                Slot::Ready(entry) => entry,
                Slot::Fresh(i) => LedgerEntry::Charged(evaluated[i].clone()),
                Slot::Dup(i) => LedgerEntry::Replayed(evaluated[i].cpi),
            })
            .collect()
    }

    /// The serializable roll-up for reports.
    pub fn summary(&self) -> LedgerSummary {
        LedgerSummary {
            low: self.tiers[Fidelity::Low.tier()].counters,
            learned: self.tiers[Fidelity::Learned.tier()].counters,
            high: self.tiers[Fidelity::High.tier()].counters,
            hf_budget: self.budget,
            budget_floor: self.budget_floor,
        }
    }

    fn section_mut(&mut self, fidelity: Fidelity) -> &mut FidelityLedger {
        &mut self.tiers[fidelity.tier()].counters
    }
}

impl std::fmt::Display for CostLedger {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.summary().fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CacheStats, CpiCache};

    /// A memoized test evaluator: CPI = encoded index as f64.
    struct Memo {
        cache: CpiCache,
        runs: usize,
    }

    impl Memo {
        fn new() -> Self {
            Self { cache: CpiCache::new(), runs: 0 }
        }
    }

    impl Evaluator for Memo {
        fn fidelity(&self) -> Fidelity {
            Fidelity::High
        }
        fn evaluate_batch(
            &mut self,
            space: &DesignSpace,
            points: &[DesignPoint],
        ) -> Vec<Evaluation> {
            points
                .iter()
                .map(|p| {
                    let key = space.encode(p);
                    match self.cache.get(key) {
                        Some(cpi) => Evaluation::new(cpi, Fidelity::High).cached(true),
                        None => {
                            self.runs += 1;
                            let cpi = key as f64;
                            self.cache.insert(key, cpi);
                            Evaluation::new(cpi, Fidelity::High)
                        }
                    }
                })
                .collect()
        }
        fn cache_stats(&self) -> CacheStats {
            self.cache.stats()
        }
        fn cost_per_eval(&self) -> f64 {
            3.0
        }
    }

    /// A tier-tagged trivial evaluator: CPI = encoded index, fixed cost.
    struct Flat(Fidelity, f64);

    impl Evaluator for Flat {
        fn fidelity(&self) -> Fidelity {
            self.0
        }
        fn evaluate_batch(
            &mut self,
            space: &DesignSpace,
            points: &[DesignPoint],
        ) -> Vec<Evaluation> {
            points.iter().map(|p| Evaluation::new(space.encode(p) as f64, self.0)).collect()
        }
        fn cost_per_eval(&self) -> f64 {
            self.1
        }
    }

    fn points(space: &DesignSpace, codes: &[u64]) -> Vec<DesignPoint> {
        codes.iter().map(|&c| space.decode(c)).collect()
    }

    #[test]
    fn charges_replays_and_denies_in_input_order() {
        let space = DesignSpace::boom();
        let mut ledger = CostLedger::new().with_hf_budget(2);
        let mut memo = Memo::new();
        // 5 → charged; 5 → replayed; 9 → charged (budget now spent);
        // 9 → replayed (already paid); 13 → denied.
        let batch = points(&space, &[5, 5, 9, 9, 13]);
        let entries = ledger.evaluate_batch(&mut memo, &space, &batch);
        assert_eq!(entries[0], LedgerEntry::Charged(Evaluation::new(5.0, Fidelity::High)));
        assert_eq!(entries[1], LedgerEntry::Replayed(5.0));
        assert_eq!(entries[2].cpi(), Some(9.0));
        assert_eq!(entries[3], LedgerEntry::Replayed(9.0));
        assert!(entries[4].is_denied());
        let high = *ledger.section(Fidelity::High);
        assert_eq!(high.evaluations, 2);
        assert_eq!(high.cache_hits, 2);
        assert_eq!(high.cache_misses, 3);
        assert_eq!(high.denied, 1);
        assert_eq!(high.model_time_units, 6.0);
        assert_eq!(ledger.hf_remaining(), Some(0));
        assert_eq!(memo.runs, 2);
    }

    #[test]
    fn batch_accounting_matches_the_sequential_walk() {
        let space = DesignSpace::boom();
        let codes = [3u64, 17, 3, 42, 17, 8, 42, 99, 3];
        let batch = points(&space, &codes);

        let mut batched_ledger = CostLedger::new().with_hf_budget(4);
        let mut batched_memo = Memo::new();
        let batched = batched_ledger.evaluate_batch(&mut batched_memo, &space, &batch);

        let mut walked_ledger = CostLedger::new().with_hf_budget(4);
        let mut walked_memo = Memo::new();
        let walked: Vec<LedgerEntry> =
            batch.iter().map(|p| walked_ledger.evaluate(&mut walked_memo, &space, p)).collect();

        assert_eq!(batched, walked);
        assert_eq!(batched_ledger, walked_ledger);
        assert_eq!(batched_memo.cache.stats(), walked_memo.cache.stats());
    }

    #[test]
    fn warm_evaluator_memo_still_charges_the_run() {
        let space = DesignSpace::boom();
        let mut memo = Memo::new();
        // Warm the evaluator's memo in a first run.
        let mut first = CostLedger::new();
        first.evaluate(&mut memo, &space, &space.decode(7));
        // A second run proposing the same design is still charged one
        // evaluation — but no fresh model time is spent.
        let mut second = CostLedger::new().with_hf_budget(1);
        let entry = second.evaluate(&mut memo, &space, &space.decode(7));
        match entry {
            LedgerEntry::Charged(ev) => assert!(ev.cached),
            other => panic!("expected a charged entry, got {other:?}"),
        }
        assert_eq!(second.evaluations(Fidelity::High), 1);
        assert_eq!(second.section(Fidelity::High).model_time_units, 0.0);
        assert_eq!(second.hf_remaining(), Some(0));
        assert_eq!(memo.runs, 1);
    }

    #[test]
    fn zero_budget_denies_everything_and_one_allows_one() {
        let space = DesignSpace::boom();
        let mut memo = Memo::new();
        let mut zero = CostLedger::new().with_hf_budget(0);
        assert!(zero.evaluate(&mut memo, &space, &space.decode(4)).is_denied());
        assert_eq!(zero.section(Fidelity::High).denied, 1);
        assert_eq!(memo.runs, 0);

        let mut one = CostLedger::new().with_hf_budget(1);
        let batch = points(&space, &[4, 6]);
        let entries = one.evaluate_batch(&mut memo, &space, &batch);
        assert_eq!(entries[0].cpi(), Some(4.0));
        assert!(entries[1].is_denied());
        // The design this run paid for replays even with zero remaining.
        assert_eq!(one.evaluate(&mut memo, &space, &space.decode(4)), LedgerEntry::Replayed(4.0));
    }

    #[test]
    fn fidelities_account_separately() {
        let space = DesignSpace::boom();
        let mut ledger = CostLedger::new().with_hf_budget(0);
        // LF evaluations are never limited by the budget.
        let entry = ledger.evaluate(&mut Flat(Fidelity::Low, 0.001), &space, &space.decode(11));
        assert_eq!(entry.cpi(), Some(11.0));
        assert_eq!(ledger.evaluations(Fidelity::Low), 1);
        assert_eq!(ledger.evaluations(Fidelity::High), 0);
        assert!(ledger.knows(Fidelity::Low, 11));
        assert!(!ledger.knows(Fidelity::High, 11));
        let summary = ledger.summary();
        assert_eq!(summary.low.evaluations, 1);
        assert_eq!(summary.hf_budget, Some(0));
        assert!((summary.total_model_time() - 0.001).abs() < 1e-12);
    }

    #[test]
    fn every_tier_keeps_its_own_memo_and_counters() {
        let space = DesignSpace::boom();
        let mut ledger = CostLedger::new();
        for fidelity in Fidelity::STACK {
            let entries =
                ledger.evaluate_batch(&mut Flat(fidelity, 0.5), &space, &points(&space, &[2, 2]));
            assert_eq!(entries[0].cpi(), Some(2.0));
            assert_eq!(entries[1], LedgerEntry::Replayed(2.0));
        }
        for fidelity in Fidelity::STACK {
            let section = ledger.section(fidelity);
            assert_eq!((section.evaluations, section.cache_hits), (1, 1));
            assert!(ledger.knows(fidelity, 2));
            assert_eq!(ledger.unique_designs(fidelity), 1);
        }
        // The summary's sections are exactly the per-tier counters, and
        // totals are the sums over them.
        let summary = ledger.summary();
        for (fidelity, section) in summary.sections() {
            assert_eq!(section, ledger.section(fidelity));
        }
        assert!((summary.total_model_time() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn learned_floor_shares_one_budget_between_learned_and_hf() {
        let space = DesignSpace::boom();
        let mut ledger = CostLedger::new().with_hf_budget(3);
        ledger.set_budget_floor(Fidelity::Learned);
        assert_eq!(ledger.budget_floor(), Fidelity::Learned);

        // Two learned charges spend two budget units...
        let entries = ledger.evaluate_batch(
            &mut Flat(Fidelity::Learned, 0.01),
            &space,
            &points(&space, &[1, 2]),
        );
        assert!(entries.iter().all(|e| !e.is_denied()));
        assert_eq!(ledger.hf_remaining(), Some(1));
        assert_eq!(ledger.budgeted_evaluations(), 2);

        // ...so only one HF charge is still affordable.
        let entries = ledger.evaluate_batch(&mut Memo::new(), &space, &points(&space, &[3, 4]));
        assert_eq!(entries[0].cpi(), Some(3.0));
        assert!(entries[1].is_denied());
        assert_eq!(ledger.hf_remaining(), Some(0));

        // LF stays below the floor: never denied.
        let entry = ledger.evaluate(&mut Flat(Fidelity::Low, 0.001), &space, &space.decode(9));
        assert_eq!(entry.cpi(), Some(9.0));

        // The summary records the floor and the budgeted total.
        let summary = ledger.summary();
        assert_eq!(summary.budget_floor, Fidelity::Learned);
        assert_eq!(summary.budgeted_evaluations(), 3);
    }

    #[test]
    fn summaries_absorb_counters_and_budgets() {
        let mut a = LedgerSummary {
            low: FidelityLedger { evaluations: 2, ..Default::default() },
            high: FidelityLedger { evaluations: 3, model_time_units: 9.0, ..Default::default() },
            hf_budget: Some(5),
            ..Default::default()
        };
        let b = LedgerSummary {
            high: FidelityLedger { evaluations: 1, model_time_units: 3.0, ..Default::default() },
            learned: FidelityLedger { evaluations: 4, ..Default::default() },
            hf_budget: None,
            budget_floor: Fidelity::Learned,
            ..Default::default()
        };
        a.absorb(b);
        assert_eq!(a.low.evaluations, 2);
        assert_eq!(a.learned.evaluations, 4);
        assert_eq!(a.high.evaluations, 4);
        assert_eq!(a.high.model_time_units, 12.0);
        assert_eq!(a.hf_budget, Some(5));
        assert_eq!(a.budget_floor, Fidelity::Learned);
    }

    #[test]
    fn summary_round_trips_through_serde_and_displays() {
        let summary = CostLedger::new().with_hf_budget(9).summary();
        let content = serde::Serialize::to_content(&summary);
        let restored: LedgerSummary = serde::Deserialize::from_content(&content).unwrap();
        assert_eq!(summary, restored);
        let text = format!("{summary}");
        assert!(text.contains("LF:") && text.contains("HF:") && text.contains("budget 9"));
        // An idle learned tier stays out of the rendering; an active one
        // (or a lowered floor) shows up.
        assert!(!text.contains("learned"), "{text}");
        let mut ledger = CostLedger::new().with_hf_budget(4);
        ledger.set_budget_floor(Fidelity::Learned);
        let space = DesignSpace::boom();
        ledger.evaluate(&mut Flat(Fidelity::Learned, 0.01), &space, &space.decode(1));
        let text = format!("{}", ledger.summary());
        assert!(text.contains("learned: 1 evals"), "{text}");
        assert!(text.contains("budget 4 from learned"), "{text}");
    }
}
