//! Deterministic parallel evaluation backend.
//!
//! Every CPI evaluation in the workspace used to be strictly
//! sequential. This crate supplies the two pieces that make batched
//! evaluation fast *without* giving up reproducibility:
//!
//! * [`par_map`] / [`par_map_indexed`] / [`par_map_with`] — a std-only
//!   scoped-thread work pool (`std::thread::scope`, no dependencies)
//!   that fans a slice of jobs across cores and gathers results **by
//!   index**, so the output order — and therefore every downstream fold
//!   over it — is independent of OS scheduling. Running with 1 thread
//!   or N threads produces bit-identical results. The `_with` variant
//!   gives each worker a private scratch value (e.g. a reusable
//!   simulator) so per-job setup costs amortize across a batch.
//! * [`CpiCache`] — the shared memoized CPI cache keyed by a design's
//!   encoded index, with hit/miss/eval counters ([`CacheStats`]). It
//!   replaces the ad-hoc `HashMap` caches that used to live separately
//!   in the HF evaluator, the HF phase and the test utilities, and its
//!   counters surface in `HfOutcome`/`ExplorationReport` as free
//!   observability.
//!
//! On top of the backend sit the workspace's unified evaluation types:
//! [`Evaluator`] (the batch-first cost-model interface every fidelity
//! and every baseline objective implements, returning [`Evaluation`]s
//! tagged with a [`Fidelity`]) and [`CostLedger`] (the per-run,
//! per-fidelity accounting of evaluations, cache hits/misses, denied
//! proposals and model-time units — the single source of budget truth).
//!
//! Thread-count policy lives in [`default_threads`]: the `DSE_THREADS`
//! environment variable when set (a positive integer), otherwise the
//! machine's available parallelism.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod evaluator;
mod learned;
mod ledger;
mod tiered;

pub use evaluator::{CpiModel, Evaluation, Evaluator, Fidelity};
pub use learned::{FeatureFn, LearnedConfig, LearnedTier};
pub use ledger::{CostLedger, FidelityLedger, LedgerEntry, LedgerSummary};
pub use tiered::{LedgerRouter, TierGate, TieredEvaluator};

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

/// Environment variable overriding the default worker count.
pub const THREADS_ENV: &str = "DSE_THREADS";

/// The default number of worker threads for batched evaluation.
///
/// Honours `DSE_THREADS` (a positive integer) when set; otherwise the
/// machine's available parallelism; 1 when even that is unknown. A set
/// but unusable value (unparsable, or zero) is reported once on stderr
/// and otherwise ignored.
pub fn default_threads() -> usize {
    if let Ok(value) = std::env::var(THREADS_ENV) {
        if let Ok(n) = value.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
        static WARN_ONCE: std::sync::Once = std::sync::Once::new();
        WARN_ONCE.call_once(|| {
            eprintln!(
                "warning: ignoring {THREADS_ENV}={value:?} (expected a positive integer); \
                 falling back to the machine's available parallelism"
            );
        });
    }
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Maps `f` over `items` on up to `threads` workers, returning results
/// in item order regardless of scheduling.
///
/// Work distribution is a shared atomic cursor, so threads stay busy on
/// uneven jobs; results are gathered by index, so `par_map(items, 1, f)`
/// and `par_map(items, n, f)` return identical vectors whenever `f` is a
/// pure function of its arguments. With `threads <= 1` (or fewer than
/// two items) no threads are spawned at all.
///
/// # Panics
///
/// Propagates the first panic raised inside `f`.
pub fn par_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    par_map_indexed(items, threads, |_, item| f(item))
}

/// [`par_map`] variant handing `f` the item index as well.
///
/// # Panics
///
/// Propagates the first panic raised inside `f`.
pub fn par_map_indexed<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    par_map_with(items, threads, || (), |(), i, item| f(i, item))
}

/// [`par_map_indexed`] variant with per-worker scratch state.
///
/// Each worker thread calls `init` once and hands the resulting scratch
/// value to every job it processes, so expensive per-job setup (a
/// simulator's cache arrays, a scratch buffer) amortizes across the
/// batch. The scratch must not influence results — job outputs are
/// gathered by index, and the bit-identical-at-any-thread-count
/// guarantee only holds if `f(scratch, i, item)` is a pure function of
/// `(i, item)`.
///
/// With `threads <= 1` (or fewer than two items) everything runs on the
/// calling thread with a single scratch value and no spawns.
///
/// # Panics
///
/// Propagates the first panic raised inside `init` or `f`.
pub fn par_map_with<T, R, S, I, F>(items: &[T], threads: usize, init: I, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize, &T) -> R + Sync,
{
    let workers = threads.min(items.len());
    if workers <= 1 {
        let mut scratch = init();
        return items.iter().enumerate().map(|(i, item)| f(&mut scratch, i, item)).collect();
    }

    let start = std::time::Instant::now();
    let cursor = std::sync::atomic::AtomicUsize::new(0);
    let mut gathered: Vec<Option<R>> = Vec::with_capacity(items.len());
    gathered.resize_with(items.len(), || None);

    let mut gather_time = std::time::Duration::ZERO;
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut scratch = init();
                    let mut produced = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        if i >= items.len() {
                            return produced;
                        }
                        produced.push((i, f(&mut scratch, i, &items[i])));
                    }
                })
            })
            .collect();
        // Joins run in spawn order: the first join also absorbs the
        // straggler wait, later ones are pure scatter-by-index.
        let gather_start = std::time::Instant::now();
        for handle in handles {
            for (i, value) in handle.join().expect("evaluation worker panicked") {
                gathered[i] = Some(value);
            }
        }
        gather_time = gather_start.elapsed();
    });

    metrics().record(items.len(), start.elapsed(), gather_time);
    gathered.into_iter().map(|slot| slot.expect("every index produced")).collect()
}

/// Cached registry handles for the `par_map` wall/gather histograms.
struct ParMapMetrics {
    wall_seconds: dse_obs::Histogram,
    gather_seconds: dse_obs::Histogram,
    items: dse_obs::Histogram,
}

impl ParMapMetrics {
    fn record(&self, n_items: usize, wall: std::time::Duration, gather: std::time::Duration) {
        self.wall_seconds.observe_duration(wall);
        self.gather_seconds.observe_duration(gather);
        self.items.observe(n_items as f64);
    }
}

fn metrics() -> &'static ParMapMetrics {
    static METRICS: std::sync::OnceLock<ParMapMetrics> = std::sync::OnceLock::new();
    METRICS.get_or_init(|| {
        let registry = dse_obs::global();
        ParMapMetrics {
            wall_seconds: registry.histogram("exec_par_map_seconds", dse_obs::LATENCY_BUCKETS_S),
            gather_seconds: registry
                .histogram("exec_par_map_gather_seconds", dse_obs::LATENCY_BUCKETS_S),
            items: registry.histogram("exec_par_map_items", dse_obs::SIZE_BUCKETS),
        }
    })
}

/// Hit/miss/eval counters of a [`CpiCache`] (or any memoized evaluator).
///
/// Serializable so services can surface memo counters verbatim in
/// metrics payloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that required a fresh evaluation.
    pub misses: u64,
    /// Distinct designs currently cached.
    pub entries: usize,
}

impl CacheStats {
    /// Total lookups observed.
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses
    }

    /// Fraction of lookups answered from the cache (0 when none).
    pub fn hit_rate(&self) -> f64 {
        if self.lookups() == 0 {
            0.0
        } else {
            self.hits as f64 / self.lookups() as f64
        }
    }

    /// Merges another counter set into this one (entry counts add).
    pub fn absorb(&mut self, other: CacheStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.entries += other.entries;
    }
}

impl std::fmt::Display for CacheStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} hits / {} misses ({} cached, {:.0}% hit rate)",
            self.hits,
            self.misses,
            self.entries,
            self.hit_rate() * 100.0
        )
    }
}

/// The shared memoized CPI cache, keyed by encoded design point.
///
/// One cache instance backs one evaluator (or one search phase); every
/// lookup is counted so experiment reports can state exactly how much
/// work memoization saved.
///
/// # Examples
///
/// ```
/// use dse_exec::CpiCache;
///
/// let mut cache = CpiCache::new();
/// assert_eq!(cache.get(7), None);
/// cache.insert(7, 1.25);
/// assert_eq!(cache.get(7), Some(1.25));
/// let stats = cache.stats();
/// assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
/// ```
#[derive(Debug, Clone, Default)]
pub struct CpiCache {
    map: HashMap<u64, f64>,
    hits: u64,
    misses: u64,
}

impl CpiCache {
    /// An empty cache with zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Counted lookup: a hit or miss is recorded.
    pub fn get(&mut self, key: u64) -> Option<f64> {
        match self.map.get(&key) {
            Some(&cpi) => {
                self.hits += 1;
                Some(cpi)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Uncounted lookup (for peeking without skewing the counters).
    pub fn peek(&self, key: u64) -> Option<f64> {
        self.map.get(&key).copied()
    }

    /// Stores the CPI of a design.
    pub fn insert(&mut self, key: u64, cpi: f64) {
        self.map.insert(key, cpi);
    }

    /// Whether a design is cached (uncounted).
    pub fn contains(&self, key: u64) -> bool {
        self.map.contains_key(&key)
    }

    /// Number of distinct designs cached.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The current counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats { hits: self.hits, misses: self.misses, entries: self.map.len() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_order_on_any_thread_count() {
        let items: Vec<u64> = (0..97).collect();
        let expected: Vec<u64> = items.iter().map(|&x| x * x).collect();
        for threads in [1, 2, 3, 8, 64] {
            assert_eq!(par_map(&items, threads, |&x| x * x), expected, "{threads} threads");
        }
    }

    #[test]
    fn par_map_results_are_bit_identical_across_thread_counts() {
        // Floating-point work whose result depends on evaluation inputs
        // only — parallel scheduling must not perturb a single bit.
        let items: Vec<f64> = (1..200).map(|i| i as f64 * 0.37).collect();
        let work = |&x: &f64| (x.sin() * x.sqrt()).powi(3) / (1.0 + x);
        let sequential = par_map(&items, 1, work);
        for threads in [2, 5, 16] {
            let parallel = par_map(&items, threads, work);
            let same = sequential.iter().zip(&parallel).all(|(a, b)| a.to_bits() == b.to_bits());
            assert!(same, "{threads} threads diverged");
        }
    }

    #[test]
    fn par_map_indexed_passes_the_item_index() {
        let items = ["a", "b", "c"];
        let labelled = par_map_indexed(&items, 2, |i, s| format!("{i}:{s}"));
        assert_eq!(labelled, vec!["0:a", "1:b", "2:c"]);
    }

    #[test]
    fn par_map_handles_empty_and_single_inputs() {
        assert_eq!(par_map(&[] as &[u8], 4, |&x| x), Vec::<u8>::new());
        assert_eq!(par_map(&[9], 4, |&x| x + 1), vec![10]);
    }

    #[test]
    fn par_map_with_reuses_scratch_within_a_worker() {
        // The scratch is a per-worker job counter: with one worker it
        // must see every job; results stay in item order regardless.
        let items: Vec<u32> = (0..50).collect();
        let out = par_map_with(
            &items,
            1,
            || 0u32,
            |count, _, &x| {
                *count += 1;
                (x, *count)
            },
        );
        assert_eq!(out.iter().map(|&(x, _)| x).collect::<Vec<_>>(), items);
        let counts: Vec<u32> = out.iter().map(|&(_, c)| c).collect();
        assert_eq!(counts, (1..=50).collect::<Vec<_>>(), "one worker sees all jobs in order");
    }

    #[test]
    fn par_map_with_matches_sequential_at_any_thread_count() {
        // A pure function of (i, item) must give bit-identical output
        // whatever the worker count, scratch reuse included.
        let items: Vec<f64> = (1..150).map(|i| i as f64 * 0.73).collect();
        let run = |threads: usize| {
            par_map_with(&items, threads, Vec::<f64>::new, |buf, i, &x| {
                buf.push(x); // scratch mutation must not leak into results
                (x.sin().abs() * (i as f64 + 1.0)).sqrt()
            })
        };
        let sequential = run(1);
        for threads in [2, 4, 16] {
            let parallel = run(threads);
            let same = sequential.iter().zip(&parallel).all(|(a, b)| a.to_bits() == b.to_bits());
            assert!(same, "{threads} threads diverged");
        }
    }

    #[test]
    fn cache_counts_hits_and_misses() {
        let mut cache = CpiCache::new();
        assert_eq!(cache.get(1), None);
        assert_eq!(cache.get(1), None);
        cache.insert(1, 2.5);
        assert_eq!(cache.get(1), Some(2.5));
        assert_eq!(cache.peek(2), None); // uncounted
        let stats = cache.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 2);
        assert_eq!(stats.entries, 1);
        assert_eq!(stats.lookups(), 3);
        assert!((stats.hit_rate() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn stats_absorb_adds_counters() {
        let mut a = CacheStats { hits: 1, misses: 2, entries: 3 };
        a.absorb(CacheStats { hits: 10, misses: 20, entries: 30 });
        assert_eq!(a, CacheStats { hits: 11, misses: 22, entries: 33 });
    }

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() >= 1);
    }
}
