//! The unified batch-first evaluation interface.
//!
//! Every cost model in the workspace — the analytical LF proxy, the
//! cycle-level HF simulator, and the baseline objectives — speaks the
//! same [`Evaluator`] trait: hand it a batch of design points, get back
//! one [`Evaluation`] per point carrying the CPI plus its provenance
//! (fidelity tag, whether the evaluator's own memo answered it, and any
//! area/power/feasibility figures the backend knows). Search code never
//! talks to an evaluator directly; it goes through a
//! [`CostLedger`](crate::CostLedger), which is the single source of
//! budget truth.

use dse_space::{DesignPoint, DesignSpace};

use crate::CacheStats;
use serde::{Deserialize, Serialize};

/// Which cost model produced an evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Fidelity {
    /// The cheap analytical proxy (~1000x cheaper than a simulation).
    Low,
    /// The cycle-level simulator.
    High,
}

impl Fidelity {
    /// A short human-readable label ("LF" / "HF").
    pub fn label(self) -> &'static str {
        match self {
            Fidelity::Low => "LF",
            Fidelity::High => "HF",
        }
    }
}

impl std::fmt::Display for Fidelity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// One evaluated design point: the CPI figure plus its provenance.
#[derive(Debug, Clone, PartialEq)]
pub struct Evaluation {
    /// Cycles per instruction.
    pub cpi: f64,
    /// The cost model that produced it.
    pub fidelity: Fidelity,
    /// Whether the evaluator answered from its own persistent memo
    /// (`true` means no model run happened for this point).
    pub cached: bool,
    /// Estimated die area, when the backend carries an area model.
    pub area_mm2: Option<f64>,
    /// Estimated leakage power, when the backend carries a power model.
    pub leakage_mw: Option<f64>,
    /// Whether the design satisfies the backend's constraints, when the
    /// backend carries any.
    pub feasible: Option<bool>,
}

impl Evaluation {
    /// A bare evaluation with no provenance beyond the fidelity tag.
    pub fn new(cpi: f64, fidelity: Fidelity) -> Self {
        Self { cpi, fidelity, cached: false, area_mm2: None, leakage_mw: None, feasible: None }
    }

    /// Marks the evaluation as answered from the evaluator's memo.
    pub fn cached(mut self, cached: bool) -> Self {
        self.cached = cached;
        self
    }

    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        1.0 / self.cpi
    }
}

/// A batch-first cost model.
///
/// Implementations must keep `evaluate_batch` semantically identical to
/// evaluating each point in input order — same values, same memo
/// accounting — and backends built on [`par_map`](crate::par_map) must
/// keep it bit-identical to that sequential walk at any thread count.
///
/// Evaluators are *infrastructure*: they may keep a persistent memo
/// shared across runs, but they hold no per-run budget state. Budgets,
/// per-run deduplication and cost counters all live in the
/// [`CostLedger`](crate::CostLedger) that drives them.
pub trait Evaluator {
    /// The fidelity of this cost model.
    fn fidelity(&self) -> Fidelity;

    /// Evaluates every design in `points`, in input order.
    fn evaluate_batch(&mut self, space: &DesignSpace, points: &[DesignPoint]) -> Vec<Evaluation>;

    /// Evaluates a single design (a one-element batch).
    fn evaluate(&mut self, space: &DesignSpace, point: &DesignPoint) -> Evaluation {
        self.evaluate_batch(space, std::slice::from_ref(point))
            .pop()
            .expect("evaluate_batch returned no result for a one-point batch")
    }

    /// Counters of the evaluator's own persistent memo, when it has one.
    fn cache_stats(&self) -> CacheStats {
        CacheStats::default()
    }

    /// Model-time units one fresh (non-memoized) evaluation costs.
    ///
    /// The unit is one simulated trace: the HF simulator reports its
    /// trace count, the analytical proxy a ~1000x smaller figure, so a
    /// ledger's cumulative `model_time_units` compare across fidelities.
    fn cost_per_eval(&self) -> f64 {
        1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evaluation_carries_provenance() {
        let ev = Evaluation::new(2.0, Fidelity::High).cached(true);
        assert_eq!(ev.ipc(), 0.5);
        assert!(ev.cached);
        assert_eq!(ev.area_mm2, None);
        assert_eq!(ev.feasible, None);
        assert_eq!(format!("{}", ev.fidelity), "HF");
    }

    #[test]
    fn single_evaluate_defaults_to_a_one_point_batch() {
        struct Doubler;
        impl Evaluator for Doubler {
            fn fidelity(&self) -> Fidelity {
                Fidelity::Low
            }
            fn evaluate_batch(
                &mut self,
                space: &DesignSpace,
                points: &[DesignPoint],
            ) -> Vec<Evaluation> {
                points
                    .iter()
                    .map(|p| Evaluation::new(2.0 * space.encode(p) as f64, Fidelity::Low))
                    .collect()
            }
        }
        let space = DesignSpace::boom();
        let point = space.decode(21);
        assert_eq!(Doubler.evaluate(&space, &point).cpi, 42.0);
        assert_eq!(Doubler.cost_per_eval(), 1.0);
        assert_eq!(Doubler.cache_stats(), CacheStats::default());
    }
}
