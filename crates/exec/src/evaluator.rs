//! The unified batch-first evaluation interface.
//!
//! Every cost model in the workspace — the analytical LF proxy, the
//! cycle-level HF simulator, and the baseline objectives — speaks the
//! same [`Evaluator`] trait: hand it a batch of design points, get back
//! one [`Evaluation`] per point carrying the CPI plus its provenance
//! (fidelity tag, whether the evaluator's own memo answered it, and any
//! area/power/feasibility figures the backend knows). Search code never
//! talks to an evaluator directly; it goes through a
//! [`CostLedger`](crate::CostLedger), which is the single source of
//! budget truth.

use dse_space::{DesignPoint, DesignSpace};

use crate::CacheStats;
use serde::{Content, DeError, Deserialize, Serialize};

/// One tier of the ordered fidelity stack.
///
/// A `Fidelity` is a tier index plus static labels: tier 0 is the
/// cheapest cost model, higher tiers are more expensive and more
/// trustworthy. This repo's stack is [`Fidelity::Low`] (the analytical
/// proxy), [`Fidelity::Learned`] (the online-trained mid tier) and
/// [`Fidelity::High`] (the cycle-level simulator); [`Fidelity::STACK`]
/// lists them cheapest-first. Ordering (`<`, `>`) follows the tier
/// index, so "escalate" is simply [`Fidelity::next`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fidelity {
    tier: u8,
    label: &'static str,
    key: &'static str,
}

#[allow(non_upper_case_globals)]
impl Fidelity {
    /// Tier 0: the cheap analytical proxy (~1000x cheaper than a
    /// simulation).
    pub const Low: Fidelity = Fidelity { tier: 0, label: "LF", key: "lf" };
    /// Tier 1: the learned mid tier — an online regressor trained from
    /// the HF evaluations the ledger commits.
    pub const Learned: Fidelity = Fidelity { tier: 1, label: "learned", key: "learned" };
    /// Tier 2: the cycle-level simulator, the ground truth of the stack.
    pub const High: Fidelity = Fidelity { tier: 2, label: "HF", key: "hf" };

    /// The ordered tier stack, cheapest first.
    pub const STACK: [Fidelity; 3] = [Fidelity::Low, Fidelity::Learned, Fidelity::High];

    /// Number of tiers in the stack.
    pub const COUNT: usize = Self::STACK.len();

    /// The tier index (0 = cheapest).
    pub const fn tier(self) -> usize {
        self.tier as usize
    }

    /// A short human-readable label ("LF" / "learned" / "HF").
    pub const fn label(self) -> &'static str {
        self.label
    }

    /// The lowercase key used in metric labels, trace events and wire
    /// formats ("lf" / "learned" / "hf").
    pub const fn key(self) -> &'static str {
        self.key
    }

    /// Looks a tier up by its wire/metric key (case-insensitive; the
    /// human-readable labels are accepted too).
    pub fn from_key(name: &str) -> Option<Fidelity> {
        Self::STACK
            .into_iter()
            .find(|f| f.key.eq_ignore_ascii_case(name) || f.label.eq_ignore_ascii_case(name))
    }

    /// The next (more expensive) tier, if any — the escalation step.
    pub fn next(self) -> Option<Fidelity> {
        Self::STACK.get(self.tier() + 1).copied()
    }
}

impl std::fmt::Display for Fidelity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

impl Serialize for Fidelity {
    fn to_content(&self) -> Content {
        Content::Str(self.key().to_owned())
    }
}

impl Deserialize for Fidelity {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        let name = c.as_str().ok_or_else(|| DeError::new("expected a fidelity tier name"))?;
        Fidelity::from_key(name)
            .ok_or_else(|| DeError::new(format!("unknown fidelity tier {name:?}")))
    }
}

/// One evaluated design point: the CPI figure plus its provenance.
#[derive(Debug, Clone, PartialEq)]
pub struct Evaluation {
    /// Cycles per instruction.
    pub cpi: f64,
    /// The cost model that produced it.
    pub fidelity: Fidelity,
    /// Whether the evaluator answered from its own persistent memo
    /// (`true` means no model run happened for this point).
    pub cached: bool,
    /// Estimated die area, when the backend carries an area model.
    pub area_mm2: Option<f64>,
    /// Estimated leakage power, when the backend carries a power model.
    pub leakage_mw: Option<f64>,
    /// Whether the design satisfies the backend's constraints, when the
    /// backend carries any.
    pub feasible: Option<bool>,
}

impl Evaluation {
    /// A bare evaluation with no provenance beyond the fidelity tag.
    pub fn new(cpi: f64, fidelity: Fidelity) -> Self {
        Self { cpi, fidelity, cached: false, area_mm2: None, leakage_mw: None, feasible: None }
    }

    /// Marks the evaluation as answered from the evaluator's memo.
    pub fn cached(mut self, cached: bool) -> Self {
        self.cached = cached;
        self
    }

    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        1.0 / self.cpi
    }

    /// Wraps a batch of bare CPI figures, stamping each with `fidelity`.
    pub fn batch(cpis: Vec<f64>, fidelity: Fidelity) -> Vec<Evaluation> {
        cpis.into_iter().map(|cpi| Evaluation::new(cpi, fidelity)).collect()
    }
}

/// A batch-first cost model.
///
/// Implementations must keep `evaluate_batch` semantically identical to
/// evaluating each point in input order — same values, same memo
/// accounting — and backends built on [`par_map`](crate::par_map) must
/// keep it bit-identical to that sequential walk at any thread count.
///
/// Evaluators are *infrastructure*: they may keep a persistent memo
/// shared across runs, but they hold no per-run budget state. Budgets,
/// per-run deduplication and cost counters all live in the
/// [`CostLedger`](crate::CostLedger) that drives them.
pub trait Evaluator {
    /// The fidelity of this cost model.
    fn fidelity(&self) -> Fidelity;

    /// Evaluates every design in `points`, in input order.
    fn evaluate_batch(&mut self, space: &DesignSpace, points: &[DesignPoint]) -> Vec<Evaluation>;

    /// Evaluates a single design (a one-element batch).
    fn evaluate(&mut self, space: &DesignSpace, point: &DesignPoint) -> Evaluation {
        self.evaluate_batch(space, std::slice::from_ref(point))
            .pop()
            .expect("evaluate_batch returned no result for a one-point batch")
    }

    /// Counters of the evaluator's own persistent memo, when it has one.
    fn cache_stats(&self) -> CacheStats {
        CacheStats::default()
    }

    /// Model-time units one fresh (non-memoized) evaluation costs.
    ///
    /// The unit is one simulated trace: the HF simulator reports its
    /// trace count, the analytical proxy a ~1000x smaller figure, so a
    /// ledger's cumulative `model_time_units` compare across fidelities.
    fn cost_per_eval(&self) -> f64 {
        1.0
    }
}

/// A cost model expressed as plain batch evaluations at a fixed tier.
///
/// This is the one adapter every proxy in the workspace shares: instead
/// of each crate hand-rolling an [`Evaluator`] impl that forwards
/// `fidelity`/`cost_per_eval` and maps CPIs into [`Evaluation`]s, a
/// proxy implements `CpiModel` (usually three one-line methods) and the
/// blanket impl below makes it an [`Evaluator`] wherever one is needed.
pub trait CpiModel {
    /// The tier this model answers at.
    fn fidelity(&self) -> Fidelity;

    /// Evaluates every design in `points`, in input order (see
    /// [`Evaluation::batch`] for the common bare-CPI case).
    fn evaluations(&mut self, space: &DesignSpace, points: &[DesignPoint]) -> Vec<Evaluation>;

    /// Model-time units one fresh evaluation costs
    /// (see [`Evaluator::cost_per_eval`]).
    fn cost_per_eval(&self) -> f64 {
        1.0
    }

    /// Counters of the model's own persistent memo, when it has one.
    fn cache_stats(&self) -> CacheStats {
        CacheStats::default()
    }
}

impl<M: CpiModel + ?Sized> Evaluator for M {
    fn fidelity(&self) -> Fidelity {
        CpiModel::fidelity(self)
    }

    fn evaluate_batch(&mut self, space: &DesignSpace, points: &[DesignPoint]) -> Vec<Evaluation> {
        self.evaluations(space, points)
    }

    fn cache_stats(&self) -> CacheStats {
        CpiModel::cache_stats(self)
    }

    fn cost_per_eval(&self) -> f64 {
        CpiModel::cost_per_eval(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tier_stack_orders_labels_and_round_trips() {
        assert!(Fidelity::Low < Fidelity::Learned && Fidelity::Learned < Fidelity::High);
        assert_eq!(Fidelity::Low.next(), Some(Fidelity::Learned));
        assert_eq!(Fidelity::Learned.next(), Some(Fidelity::High));
        assert_eq!(Fidelity::High.next(), None);
        assert_eq!(Fidelity::Learned.tier(), 1);
        assert_eq!(Fidelity::from_key("hf"), Some(Fidelity::High));
        assert_eq!(Fidelity::from_key("LF"), Some(Fidelity::Low));
        assert_eq!(Fidelity::from_key("Learned"), Some(Fidelity::Learned));
        assert_eq!(Fidelity::from_key("medium"), None);
        for fidelity in Fidelity::STACK {
            let content = fidelity.to_content();
            assert_eq!(Fidelity::from_content(&content).unwrap(), fidelity);
        }
        assert!(Fidelity::from_content(&Content::Str("warp".into())).is_err());
    }

    #[test]
    fn cpi_model_blanket_impl_is_a_full_evaluator() {
        struct Flat;
        impl CpiModel for Flat {
            fn fidelity(&self) -> Fidelity {
                Fidelity::Learned
            }
            fn evaluations(
                &mut self,
                _space: &DesignSpace,
                points: &[DesignPoint],
            ) -> Vec<Evaluation> {
                Evaluation::batch(vec![2.5; points.len()], Fidelity::Learned)
            }
            fn cost_per_eval(&self) -> f64 {
                0.25
            }
        }
        let space = DesignSpace::boom();
        let mut flat = Flat;
        let evaluator: &mut dyn Evaluator = &mut flat;
        assert_eq!(evaluator.fidelity(), Fidelity::Learned);
        assert_eq!(evaluator.cost_per_eval(), 0.25);
        let ev = evaluator.evaluate(&space, &space.decode(3));
        assert_eq!((ev.cpi, ev.fidelity), (2.5, Fidelity::Learned));
    }

    #[test]
    fn evaluation_carries_provenance() {
        let ev = Evaluation::new(2.0, Fidelity::High).cached(true);
        assert_eq!(ev.ipc(), 0.5);
        assert!(ev.cached);
        assert_eq!(ev.area_mm2, None);
        assert_eq!(ev.feasible, None);
        assert_eq!(format!("{}", ev.fidelity), "HF");
    }

    #[test]
    fn single_evaluate_defaults_to_a_one_point_batch() {
        struct Doubler;
        impl Evaluator for Doubler {
            fn fidelity(&self) -> Fidelity {
                Fidelity::Low
            }
            fn evaluate_batch(
                &mut self,
                space: &DesignSpace,
                points: &[DesignPoint],
            ) -> Vec<Evaluation> {
                points
                    .iter()
                    .map(|p| Evaluation::new(2.0 * space.encode(p) as f64, Fidelity::Low))
                    .collect()
            }
        }
        let space = DesignSpace::boom();
        let point = space.decode(21);
        assert_eq!(Doubler.evaluate(&space, &point).cpi, 42.0);
        assert_eq!(Doubler.cost_per_eval(), 1.0);
        assert_eq!(Doubler.cache_stats(), CacheStats::default());
    }
}
