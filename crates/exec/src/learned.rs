//! The online-learned mid-fidelity tier: an incremental ridge regressor
//! over design-point features, with split-conformal residual quantiles
//! as its uncertainty estimate.
//!
//! The tier trains from the HF evaluations a [`CostLedger`] commits
//! (see [`TieredEvaluator`](crate::TieredEvaluator), which feeds every
//! fresh HF charge into [`LearnedTier::observe`]) and answers
//! [`predict_with_uncertainty`](LearnedTier::predict_with_uncertainty):
//! the predicted CPI plus a conformal error bound the router gates on.
//!
//! # Determinism
//!
//! Training must be bit-identical at any thread count and under any
//! request interleaving, so the model is a *canonical function of the
//! observation set*: observations live in a `BTreeMap` keyed by the
//! design's encoded index, [`refit`](LearnedTier::refit) runs only at
//! batch boundaries on the driver thread, and the split-conformal
//! train/calibration split is by position in that canonical key order —
//! never by arrival order. Two runs that commit the same HF results end
//! up with the same model, no matter how the commits interleaved.

use std::collections::BTreeMap;

use dse_linalg::{Cholesky, Matrix};
use dse_space::{DesignPoint, DesignSpace};

use crate::{Evaluation, Evaluator, Fidelity};

/// The feature map of the learned tier: encoded design point (and
/// whatever workload-profile context the caller bakes in) → regressor
/// input. The first feature is conventionally a constant 1.0 bias.
pub type FeatureFn = Box<dyn Fn(&DesignSpace, &DesignPoint) -> Vec<f64> + Send>;

/// Hyper-parameters of the learned tier.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LearnedConfig {
    /// Ridge regularization strength (λ on the Gram diagonal).
    pub lambda: f64,
    /// Conformal miscoverage rate α: the gate quantile is the
    /// ⌈(1−α)(n+1)⌉-th smallest calibration residual (α = 0.1 → a 90%
    /// coverage bound).
    pub alpha: f64,
    /// Fewest training observations before the model fits at all.
    pub min_train: usize,
    /// Fewest calibration residuals before the gate can open.
    pub min_calibration: usize,
    /// Model-time units one learned prediction costs, in simulated-trace
    /// units (a forward pass is cheap, but not LF-cheap).
    pub cost_per_eval: f64,
}

impl Default for LearnedConfig {
    fn default() -> Self {
        Self { lambda: 1e-3, alpha: 0.1, min_train: 3, min_calibration: 2, cost_per_eval: 0.01 }
    }
}

/// The online mid-tier regressor (tier [`Fidelity::Learned`]).
pub struct LearnedTier {
    features: FeatureFn,
    config: LearnedConfig,
    /// Canonical observation set: encoded design → (features, HF CPI).
    observations: BTreeMap<u64, (Vec<f64>, f64)>,
    weights: Option<Vec<f64>>,
    quantile: Option<f64>,
    prior: Option<f64>,
    dirty: bool,
}

impl std::fmt::Debug for LearnedTier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LearnedTier")
            .field("config", &self.config)
            .field("observations", &self.observations.len())
            .field("fit", &self.weights.is_some())
            .field("quantile", &self.quantile)
            .finish()
    }
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

impl LearnedTier {
    /// A fresh, untrained tier over the given feature map.
    pub fn new(features: FeatureFn) -> Self {
        Self::with_config(features, LearnedConfig::default())
    }

    /// A fresh tier with explicit hyper-parameters.
    pub fn with_config(features: FeatureFn, config: LearnedConfig) -> Self {
        Self {
            features,
            config,
            observations: BTreeMap::new(),
            weights: None,
            quantile: None,
            prior: None,
            dirty: false,
        }
    }

    /// The default feature map: a 1.0 bias plus the design's normalized
    /// candidate indices ([`DesignPoint::feature_vector`]).
    pub fn point_features() -> FeatureFn {
        Box::new(|space, point| {
            let mut x = Vec::with_capacity(1 + dse_space::Param::ALL.len());
            x.push(1.0);
            x.extend(point.feature_vector(space));
            x
        })
    }

    /// The active hyper-parameters.
    pub fn config(&self) -> &LearnedConfig {
        &self.config
    }

    /// How many HF observations the tier has absorbed.
    pub fn observations(&self) -> usize {
        self.observations.len()
    }

    /// Records one committed HF evaluation. Cheap; the model refits only
    /// at the next [`refit`](Self::refit) call (a batch boundary).
    pub fn observe(&mut self, space: &DesignSpace, point: &DesignPoint, cpi: f64) {
        let key = space.encode(point);
        let x = (self.features)(space, point);
        if self.observations.insert(key, (x, cpi)).is_none() {
            self.dirty = true;
        }
    }

    /// Refits the regressor and the conformal quantile from the current
    /// observation set. Call at batch boundaries on the driver thread.
    ///
    /// The split is canonical: walking observations in encoded-key order,
    /// even positions train the ridge, odd positions calibrate the
    /// residual quantile. The fit therefore depends only on *which*
    /// observations exist, not on when they arrived.
    pub fn refit(&mut self) {
        if !self.dirty {
            return;
        }
        self.dirty = false;
        self.weights = None;
        self.quantile = None;
        let n = self.observations.len();
        self.prior = if n == 0 {
            None
        } else {
            Some(self.observations.values().map(|(_, y)| y).sum::<f64>() / n as f64)
        };
        let mut train: Vec<(&Vec<f64>, f64)> = Vec::new();
        let mut calibration: Vec<(&Vec<f64>, f64)> = Vec::new();
        for (i, (x, y)) in self.observations.values().enumerate() {
            if i % 2 == 0 {
                train.push((x, *y));
            } else {
                calibration.push((x, *y));
            }
        }
        if train.len() < self.config.min_train {
            return;
        }
        let d = train[0].0.len();
        let mut gram = Matrix::zeros(d, d);
        let mut rhs = vec![0.0; d];
        for (x, y) in &train {
            for i in 0..d {
                rhs[i] += y * x[i];
                for j in 0..d {
                    gram[(i, j)] += x[i] * x[j];
                }
            }
        }
        for i in 0..d {
            gram[(i, i)] += self.config.lambda;
        }
        let Ok(chol) = Cholesky::new(&gram) else {
            return; // degenerate features: stay unfit, gate stays closed
        };
        let weights = chol.solve(&rhs);
        // Split-conformal bound: residuals of the *held-out* half, at the
        // finite-sample-corrected (1−α) rank.
        let mut residuals: Vec<f64> =
            calibration.iter().map(|(x, y)| (y - dot(&weights, x)).abs()).collect();
        self.weights = Some(weights);
        if residuals.len() < self.config.min_calibration {
            return;
        }
        residuals.sort_by(f64::total_cmp);
        let rank = ((1.0 - self.config.alpha) * (residuals.len() + 1) as f64).ceil() as usize;
        if rank > residuals.len() {
            // Too few residuals for the requested coverage: the honest
            // bound is the max residual (still a valid, conservative gate).
            self.quantile = residuals.last().copied();
        } else {
            self.quantile = Some(residuals[rank - 1]);
        }
    }

    /// The point prediction (the fitted model, else the observation mean,
    /// else a neutral 1.0 CPI prior).
    pub fn predict(&self, space: &DesignSpace, point: &DesignPoint) -> f64 {
        match &self.weights {
            Some(w) => dot(w, &(self.features)(space, point)),
            None => self.prior.unwrap_or(1.0),
        }
    }

    /// The prediction plus its conformal error bound, or `None` while
    /// the model is unfit or uncalibrated (the gate stays closed).
    pub fn predict_with_uncertainty(
        &self,
        space: &DesignSpace,
        point: &DesignPoint,
    ) -> Option<(f64, f64)> {
        let weights = self.weights.as_ref()?;
        let bound = self.quantile?;
        Some((dot(weights, &(self.features)(space, point)), bound))
    }
}

impl Evaluator for LearnedTier {
    fn fidelity(&self) -> Fidelity {
        Fidelity::Learned
    }

    fn evaluate_batch(&mut self, space: &DesignSpace, points: &[DesignPoint]) -> Vec<Evaluation> {
        points.iter().map(|p| Evaluation::new(self.predict(space, p), Fidelity::Learned)).collect()
    }

    fn cost_per_eval(&self) -> f64 {
        self.config.cost_per_eval
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dse_space::DesignSpace;

    fn linear_cpi(space: &DesignSpace, point: &DesignPoint) -> f64 {
        // A noiseless linear target over the default features.
        let f = point.feature_vector(space);
        2.0 - 0.5 * f.iter().sum::<f64>() / f.len() as f64
    }

    fn trained(space: &DesignSpace, codes: impl IntoIterator<Item = u64>) -> LearnedTier {
        let mut tier = LearnedTier::new(LearnedTier::point_features());
        for code in codes {
            let p = space.decode(code);
            let y = linear_cpi(space, &p);
            tier.observe(space, &p, y);
        }
        tier.refit();
        tier
    }

    #[test]
    fn unfit_model_keeps_the_gate_closed_but_still_answers() {
        let space = DesignSpace::boom();
        let mut tier = LearnedTier::new(LearnedTier::point_features());
        let p = space.decode(5);
        assert_eq!(tier.predict_with_uncertainty(&space, &p), None);
        assert_eq!(tier.predict(&space, &p), 1.0, "neutral prior");
        tier.observe(&space, &p, 2.5);
        tier.refit();
        assert_eq!(tier.predict_with_uncertainty(&space, &p), None, "one point cannot calibrate");
        assert_eq!(tier.predict(&space, &p), 2.5, "observation-mean prior");
    }

    #[test]
    fn learns_a_linear_target_and_calibrates_tightly() {
        let space = DesignSpace::boom();
        let tier = trained(&space, (0..40).map(|i| i * 97 + 5));
        let probe = space.decode(4_321);
        let (cpi, bound) = tier.predict_with_uncertainty(&space, &probe).expect("gate open");
        // Ridge shrinkage (λ = 1e-3) keeps the fit from being bit-exact,
        // but on a noiseless linear target both the prediction error and
        // the conformal bound must be far below any useful gate threshold.
        let err = (cpi - linear_cpi(&space, &probe)).abs();
        assert!(err < 1e-2, "noiseless fit error {err}");
        assert!(bound < 1e-2, "conformal bound stays tight on a noiseless target: {bound}");
        assert!(bound >= 0.0);
    }

    #[test]
    fn fit_is_a_function_of_the_observation_set_not_its_order() {
        let space = DesignSpace::boom();
        let codes: Vec<u64> = (0..24).map(|i| i * 131 + 7).collect();
        let forward = trained(&space, codes.iter().copied());
        let reversed = trained(&space, codes.iter().rev().copied());
        let probe = space.decode(999);
        let a = forward.predict_with_uncertainty(&space, &probe).unwrap();
        let b = reversed.predict_with_uncertainty(&space, &probe).unwrap();
        assert_eq!(a.0.to_bits(), b.0.to_bits(), "prediction must be order-independent");
        assert_eq!(a.1.to_bits(), b.1.to_bits(), "bound must be order-independent");
    }

    #[test]
    fn duplicate_observations_do_not_retrain() {
        let space = DesignSpace::boom();
        let mut tier = trained(&space, (0..10).map(|i| i * 11));
        let before = tier.predict(&space, &space.decode(500));
        let p = space.decode(0);
        let y = linear_cpi(&space, &p);
        tier.observe(&space, &p, y); // same key: no-op
        tier.refit();
        let after = tier.predict(&space, &space.decode(500));
        assert_eq!(before.to_bits(), after.to_bits());
    }

    #[test]
    fn evaluator_impl_answers_at_the_learned_tier() {
        let space = DesignSpace::boom();
        let mut tier = trained(&space, (0..20).map(|i| i * 53 + 1));
        assert_eq!(Evaluator::fidelity(&tier), Fidelity::Learned);
        assert_eq!(Evaluator::cost_per_eval(&tier), 0.01);
        let p = space.decode(77);
        let ev = tier.evaluate(&space, &p);
        assert_eq!(ev.fidelity, Fidelity::Learned);
        assert_eq!(ev.cpi.to_bits(), tier.predict(&space, &p).to_bits());
    }
}
