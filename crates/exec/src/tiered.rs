//! Uncertainty-gated routing across the fidelity tier stack.
//!
//! A [`TieredEvaluator`] answers each proposal at the cheapest tier
//! whose conformal error bound clears the gate threshold, escalating to
//! the next tier otherwise. Every answer still flows through the
//! [`CostLedger`] — one `evaluate_batch` per tier per window — so the
//! per-tier accounting stays counter-exact, and every fresh HF charge
//! is fed back into the [`LearnedTier`] at the batch boundary.

use std::sync::OnceLock;

use dse_obs::Counter;
use dse_space::{DesignPoint, DesignSpace};

use crate::{CostLedger, Evaluator, Fidelity, LearnedTier, LedgerEntry};

/// Why a proposal was answered at the tier it was.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RouteReason {
    /// The run memo already held this design at the chosen tier.
    Replay,
    /// The learned tier's conformal bound cleared the gate threshold.
    Confident,
    /// Even the optimistic end of the conformal interval cannot beat
    /// the best HF-confirmed CPI: a learned answer suffices to rule the
    /// design out, so no simulation is spent on a sure loser.
    RuledOut,
    /// The gate refused (bound too wide or model unfit): escalated.
    Escalated,
    /// The gate is off: straight to the terminal tier.
    Direct,
}

impl RouteReason {
    fn key(self) -> &'static str {
        match self {
            RouteReason::Replay => "replay",
            RouteReason::Confident => "confident",
            RouteReason::RuledOut => "ruled_out",
            RouteReason::Escalated => "escalated",
            RouteReason::Direct => "direct",
        }
    }
}

/// Cached handle for one `tier_route_total{tier,reason}` series.
fn route_counter(tier: Fidelity, reason: RouteReason) -> &'static Counter {
    static CELLS: [[OnceLock<Counter>; 5]; Fidelity::COUNT] =
        [const { [const { OnceLock::new() }; 5] }; Fidelity::COUNT];
    let slot = match reason {
        RouteReason::Replay => 0,
        RouteReason::Confident => 1,
        RouteReason::RuledOut => 2,
        RouteReason::Escalated => 3,
        RouteReason::Direct => 4,
    };
    CELLS[tier.tier()][slot].get_or_init(|| {
        dse_obs::global()
            .counter_with("tier_route_total", &[("tier", tier.key()), ("reason", reason.key())])
    })
}

/// Cached handle for the gate-escalation counter.
fn escalations_total() -> &'static Counter {
    static CELL: OnceLock<Counter> = OnceLock::new();
    CELL.get_or_init(|| dse_obs::global().counter("tier_gate_escalations_total"))
}

/// The uncertainty gate of the tier router.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TierGate {
    /// Whether routing through the learned tier is allowed at all. Off,
    /// the router degenerates to the plain two-fidelity flow — every
    /// proposal goes straight to HF, bit-identical to the pre-stack
    /// behavior.
    pub enabled: bool,
    /// Largest acceptable conformal CPI-error bound for a learned-tier
    /// answer, *relative to the predicted CPI* (0.05 = a 5% error bar).
    /// Relative because CPI scales vary wildly across workloads and
    /// trace lengths; an absolute threshold would be meaningless across
    /// them. Tighter thresholds escalate more proposals to HF.
    pub threshold: f64,
}

impl Default for TierGate {
    fn default() -> Self {
        Self { enabled: false, threshold: 0.05 }
    }
}

impl TierGate {
    /// An open gate with the given error-bound threshold.
    pub fn enabled(threshold: f64) -> Self {
        Self { enabled: true, threshold }
    }
}

/// The tier router: a learned mid tier in front of a terminal HF
/// evaluator, gated by conformal uncertainty.
///
/// The router is driven like an evaluator but *through* the ledger
/// (see [`LedgerRouter`](crate::LedgerRouter)): each batch is routed on
/// the driver thread, submitted as at most one ledger batch per tier
/// (cheapest first), stitched back into input order, and closed with a
/// training step that feeds every fresh HF charge into the learned tier
/// — the batch-boundary discipline that keeps training deterministic.
#[derive(Debug)]
pub struct TieredEvaluator<'a, E: Evaluator + ?Sized> {
    /// The online-learned mid tier.
    pub learned: &'a mut LearnedTier,
    /// The terminal high-fidelity evaluator.
    pub hf: &'a mut E,
    /// The routing gate.
    pub gate: TierGate,
    /// Best HF-confirmed CPI this router has witnessed — the incumbent
    /// the rule-out route compares conformal intervals against.
    best_hf: Option<f64>,
}

impl<'a, E: Evaluator + ?Sized> TieredEvaluator<'a, E> {
    /// Builds a router over a learned tier and a terminal evaluator.
    pub fn new(learned: &'a mut LearnedTier, hf: &'a mut E, gate: TierGate) -> Self {
        Self { learned, hf, gate, best_hf: None }
    }

    /// Routes one batch and also reports, per point, the tier that
    /// answered it (what the serve layer stamps into responses).
    pub fn evaluate_batch_routed(
        &mut self,
        ledger: &mut CostLedger,
        space: &DesignSpace,
        points: &[DesignPoint],
    ) -> (Vec<LedgerEntry>, Vec<Fidelity>) {
        // Routing happens before any evaluation, on the driver thread:
        // every decision in this window sees the same model state.
        self.learned.refit();
        let mut routes: Vec<Fidelity> = Vec::with_capacity(points.len());
        let mut escalations = 0u64;
        for point in points {
            let key = space.encode(point);
            let (tier, reason) = if ledger.knows(Fidelity::High, key) {
                (Fidelity::High, RouteReason::Replay)
            } else if ledger.knows(Fidelity::Learned, key) {
                (Fidelity::Learned, RouteReason::Replay)
            } else if !self.gate.enabled {
                (Fidelity::High, RouteReason::Direct)
            } else {
                match self.learned.predict_with_uncertainty(space, point) {
                    Some((prediction, bound))
                        if bound <= self.gate.threshold * prediction.abs() =>
                    {
                        (Fidelity::Learned, RouteReason::Confident)
                    }
                    // A wide interval can still settle a design's fate:
                    // when even `prediction - bound` loses to the HF
                    // incumbent, the learned answer is good enough to
                    // rule it out — the winner-selection path only ever
                    // rests on HF-confirmed CPIs.
                    Some((prediction, bound))
                        if self.best_hf.is_some_and(|best| prediction - bound > best) =>
                    {
                        (Fidelity::Learned, RouteReason::RuledOut)
                    }
                    _ => {
                        escalations += 1;
                        (Fidelity::High, RouteReason::Escalated)
                    }
                }
            };
            route_counter(tier, reason).inc();
            routes.push(tier);
        }
        if escalations > 0 {
            escalations_total().add(escalations);
        }
        // One ledger batch per tier, cheapest first, then stitch the
        // entries back into input order.
        let mut entries: Vec<Option<LedgerEntry>> = vec![None; points.len()];
        for tier in [Fidelity::Learned, Fidelity::High] {
            let group: Vec<usize> = (0..points.len()).filter(|&i| routes[i] == tier).collect();
            if group.is_empty() {
                continue;
            }
            let batch: Vec<DesignPoint> = group.iter().map(|&i| points[i].clone()).collect();
            let answered = if tier == Fidelity::Learned {
                ledger.evaluate_batch(self.learned, space, &batch)
            } else {
                ledger.evaluate_batch(self.hf, space, &batch)
            };
            for (&i, entry) in group.iter().zip(answered) {
                entries[i] = Some(entry);
            }
            if tier == Fidelity::High {
                // Batch-boundary training: every fresh HF charge becomes
                // a learned-tier observation (replays were observed when
                // first charged; denials carry no result).
                for (point, entry) in batch.iter().zip(group.iter().map(|&i| &entries[i])) {
                    if let Some(LedgerEntry::Charged(ev)) = entry {
                        self.learned.observe(space, point, ev.cpi);
                    }
                    // Any HF-answered CPI (fresh or replayed) can become
                    // the rule-out incumbent.
                    if let Some(cpi) = entry.as_ref().and_then(LedgerEntry::cpi) {
                        self.best_hf = Some(self.best_hf.map_or(cpi, |b| b.min(cpi)));
                    }
                }
                self.learned.refit();
            }
        }
        (entries.into_iter().map(|e| e.expect("every point routed")).collect(), routes)
    }
}

/// Anything that can answer proposals through a [`CostLedger`]: either a
/// plain [`Evaluator`] (one tier, the blanket impl) or a
/// [`TieredEvaluator`] (gated routing across the stack). The MFRL
/// phases are generic over this, which is how LF→HF promotion became
/// tier escalation without the phases knowing the stack depth.
pub trait LedgerRouter {
    /// Proposes a batch, in input order, through the ledger.
    fn route_batch(
        &mut self,
        ledger: &mut CostLedger,
        space: &DesignSpace,
        points: &[DesignPoint],
    ) -> Vec<LedgerEntry>;

    /// Proposes one design (a one-point batch).
    fn route(
        &mut self,
        ledger: &mut CostLedger,
        space: &DesignSpace,
        point: &DesignPoint,
    ) -> LedgerEntry {
        self.route_batch(ledger, space, std::slice::from_ref(point))
            .pop()
            .expect("one-point batch produced no entry")
    }
}

impl<E: Evaluator + ?Sized> LedgerRouter for E {
    fn route_batch(
        &mut self,
        ledger: &mut CostLedger,
        space: &DesignSpace,
        points: &[DesignPoint],
    ) -> Vec<LedgerEntry> {
        ledger.evaluate_batch(self, space, points)
    }
}

impl<E: Evaluator + ?Sized> LedgerRouter for TieredEvaluator<'_, E> {
    fn route_batch(
        &mut self,
        ledger: &mut CostLedger,
        space: &DesignSpace,
        points: &[DesignPoint],
    ) -> Vec<LedgerEntry> {
        self.evaluate_batch_routed(ledger, space, points).0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Evaluation;
    use dse_space::DesignSpace;

    /// Ground truth for these tests: CPI = a fixed linear map.
    fn truth(space: &DesignSpace, point: &DesignPoint) -> f64 {
        let f = point.feature_vector(space);
        2.0 - 0.5 * f.iter().sum::<f64>() / f.len() as f64
    }

    struct TruthHf {
        runs: usize,
    }

    impl Evaluator for TruthHf {
        fn fidelity(&self) -> Fidelity {
            Fidelity::High
        }
        fn evaluate_batch(
            &mut self,
            space: &DesignSpace,
            points: &[DesignPoint],
        ) -> Vec<Evaluation> {
            self.runs += points.len();
            points.iter().map(|p| Evaluation::new(truth(space, p), Fidelity::High)).collect()
        }
        fn cost_per_eval(&self) -> f64 {
            10.0
        }
    }

    fn batch(space: &DesignSpace, codes: &[u64]) -> Vec<DesignPoint> {
        codes.iter().map(|&c| space.decode(c)).collect()
    }

    #[test]
    fn gate_off_degenerates_to_the_plain_hf_flow() {
        let space = DesignSpace::boom();
        let codes: Vec<u64> = (0..12).map(|i| i * 37 + 1).collect();

        let mut plain_hf = TruthHf { runs: 0 };
        let mut plain = CostLedger::new().with_hf_budget(8);
        let expected = plain.evaluate_batch(&mut plain_hf, &space, &batch(&space, &codes));

        let mut learned = LearnedTier::new(LearnedTier::point_features());
        let mut routed_hf = TruthHf { runs: 0 };
        let mut router = TieredEvaluator::new(&mut learned, &mut routed_hf, TierGate::default());
        let mut ledger = CostLedger::new().with_hf_budget(8);
        let got = router.route_batch(&mut ledger, &space, &batch(&space, &codes));

        assert_eq!(got, expected);
        assert_eq!(ledger.summary(), plain.summary(), "bit-identical degenerate accounting");
        // Even with the gate off the HF commits train the learned tier,
        // so a later run can open the gate warm.
        assert_eq!(router.learned.observations(), 8);
    }

    #[test]
    fn confident_answers_come_from_the_learned_tier_without_hf_cost() {
        let space = DesignSpace::boom();
        let mut learned = LearnedTier::new(LearnedTier::point_features());
        let mut hf = TruthHf { runs: 0 };
        let mut ledger = CostLedger::new();
        let mut router = TieredEvaluator::new(&mut learned, &mut hf, TierGate::enabled(0.05));

        // Cold model: the whole first window escalates (gate closed).
        let warmup: Vec<u64> = (0..60).map(|i| i * 97 + 3).collect();
        let (entries, routes) =
            router.evaluate_batch_routed(&mut ledger, &space, &batch(&space, &warmup));
        assert!(routes.iter().all(|&t| t == Fidelity::High));
        assert!(entries.iter().all(|e| !e.is_denied()));
        assert_eq!(ledger.evaluations(Fidelity::High), 60);

        // Warm model on a noiseless target: the next window is answered
        // by the learned tier, no new HF runs, and the predictions match
        // the ground truth the regressor recovered.
        let probe: Vec<u64> = (0..6).map(|i| i * 1_003 + 11).collect();
        let before = router.hf.runs;
        let (entries, routes) =
            router.evaluate_batch_routed(&mut ledger, &space, &batch(&space, &probe));
        assert!(routes.iter().all(|&t| t == Fidelity::Learned), "{routes:?}");
        assert_eq!(router.hf.runs, before, "no HF model runs for confident answers");
        assert_eq!(ledger.evaluations(Fidelity::Learned), 6);
        for (code, entry) in probe.iter().zip(&entries) {
            let cpi = entry.cpi().expect("answered");
            assert!((cpi - truth(&space, &space.decode(*code))).abs() < 1e-2);
        }
        // Learned answers are metered at the learned tier's own rate.
        let learned_time = ledger.section(Fidelity::Learned).model_time_units;
        assert!((learned_time - 6.0 * 0.01).abs() < 1e-12, "{learned_time}");
    }

    #[test]
    fn tighter_thresholds_escalate_no_fewer_proposals() {
        let space = DesignSpace::boom();
        // A *noisy* target: the regressor cannot collapse the conformal
        // bound to zero, so the gate decision actually varies with the
        // threshold. The tier is deterministic in its observation set, so
        // rebuilding it per threshold yields identical models.
        let noisy_tier = |space: &DesignSpace| {
            let mut tier = LearnedTier::new(LearnedTier::point_features());
            for i in 0..30u64 {
                let p = space.decode(i * 211 + 7);
                let noise = if i % 3 == 0 { 0.04 } else { -0.02 };
                let cpi = truth(space, &p) + noise;
                tier.observe(space, &p, cpi);
            }
            tier.refit();
            tier
        };

        let probe = batch(&space, &(0..16).map(|i| i * 509 + 13).collect::<Vec<u64>>());
        let mut escalated_at = Vec::new();
        for threshold in [0.0, 0.01, 0.03, 0.1, f64::INFINITY] {
            let mut tier = noisy_tier(&space);
            let mut hf = TruthHf { runs: 0 };
            let mut router = TieredEvaluator::new(&mut tier, &mut hf, TierGate::enabled(threshold));
            let mut ledger = CostLedger::new();
            let (_, routes) = router.evaluate_batch_routed(&mut ledger, &space, &probe);
            escalated_at.push(routes.iter().filter(|&&t| t == Fidelity::High).count());
        }
        assert!(
            escalated_at.windows(2).all(|w| w[0] >= w[1]),
            "tighter gate must escalate no fewer: {escalated_at:?}"
        );
        assert_eq!(*escalated_at.first().unwrap(), probe.len(), "zero threshold escalates all");
        assert_eq!(*escalated_at.last().unwrap(), 0, "infinite threshold escalates none");
    }

    #[test]
    fn budget_floor_shares_the_budget_across_routed_tiers() {
        let space = DesignSpace::boom();
        let mut learned = LearnedTier::new(LearnedTier::point_features());
        for i in 0..20u64 {
            let p = space.decode(i * 97 + 3);
            learned.observe(&space, &p, truth(&space, &p));
        }
        let mut hf = TruthHf { runs: 0 };
        let mut router = TieredEvaluator::new(&mut learned, &mut hf, TierGate::enabled(0.05));
        let mut ledger = CostLedger::new().with_hf_budget(4);
        ledger.set_budget_floor(Fidelity::Learned);
        // Six fresh proposals against a budget of 4: exactly two denials,
        // regardless of which tier would have answered them.
        let probe = batch(&space, &(0..6).map(|i| i * 1_003 + 11).collect::<Vec<u64>>());
        let (entries, _) = router.evaluate_batch_routed(&mut ledger, &space, &probe);
        assert_eq!(entries.iter().filter(|e| e.is_denied()).count(), 2);
        assert_eq!(ledger.budgeted_evaluations(), 4);
        assert_eq!(ledger.hf_remaining(), Some(0));
    }
}
