//! Random-forest regression (bagged trees with feature subsampling).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use dse_linalg::vector;

use crate::RegressionTree;

/// A random-forest regressor \[Breiman 2001\]: bootstrap-bagged CART
/// trees with per-tree feature masking. The spread of per-tree
/// predictions doubles as an uncertainty estimate for acquisition.
///
/// # Examples
///
/// ```
/// use dse_baselines::RandomForest;
///
/// let x: Vec<Vec<f64>> = (0..30).map(|i| vec![i as f64 / 29.0]).collect();
/// let y: Vec<f64> = x.iter().map(|p| p[0] * 2.0).collect();
/// let rf = RandomForest::fit(&x, &y, 20, 4, 7);
/// let (mean, _std) = rf.predict(&[0.5]);
/// assert!((mean - 1.0).abs() < 0.3);
/// ```
#[derive(Debug, Clone)]
pub struct RandomForest {
    trees: Vec<(RegressionTree, Vec<usize>)>,
}

impl RandomForest {
    /// Fits `n_trees` trees of depth `max_depth` on bootstrap samples.
    ///
    /// Each tree sees a random subset of ⌈√d⌉·2 features (clamped to
    /// `d`), the usual de-correlation device.
    ///
    /// # Panics
    ///
    /// Panics if the data is empty or `n_trees` is zero.
    pub fn fit(x: &[Vec<f64>], y: &[f64], n_trees: usize, max_depth: usize, seed: u64) -> Self {
        assert!(!x.is_empty(), "cannot fit a forest to no data");
        assert!(n_trees > 0, "need at least one tree");
        let mut rng = StdRng::seed_from_u64(seed);
        let dim = x[0].len();
        let n_feats = ((dim as f64).sqrt().ceil() as usize * 2).clamp(1, dim);
        let trees = (0..n_trees)
            .map(|_| {
                // Bootstrap rows.
                let rows: Vec<usize> = (0..x.len()).map(|_| rng.gen_range(0..x.len())).collect();
                // Random feature subset.
                let mut feats: Vec<usize> = (0..dim).collect();
                for i in (1..feats.len()).rev() {
                    feats.swap(i, rng.gen_range(0..=i));
                }
                feats.truncate(n_feats);
                let bx: Vec<Vec<f64>> =
                    rows.iter().map(|&r| feats.iter().map(|&f| x[r][f]).collect()).collect();
                let by: Vec<f64> = rows.iter().map(|&r| y[r]).collect();
                (RegressionTree::fit(&bx, &by, None, max_depth, 2), feats)
            })
            .collect();
        Self { trees }
    }

    /// Posterior-style prediction: mean and standard deviation of the
    /// per-tree predictions.
    pub fn predict(&self, x: &[f64]) -> (f64, f64) {
        let preds: Vec<f64> = self
            .trees
            .iter()
            .map(|(t, feats)| {
                let proj: Vec<f64> = feats.iter().map(|&f| x[f]).collect();
                t.predict(&proj)
            })
            .collect();
        (vector::mean(&preds), vector::variance(&preds).sqrt())
    }

    /// Number of trees.
    pub fn len(&self) -> usize {
        self.trees.len()
    }

    /// Whether the forest is empty (never true after `fit`).
    pub fn is_empty(&self) -> bool {
        self.trees.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn linear_data() -> (Vec<Vec<f64>>, Vec<f64>) {
        let x: Vec<Vec<f64>> =
            (0..60).map(|i| vec![(i % 10) as f64 / 9.0, (i / 10) as f64 / 5.0]).collect();
        let y: Vec<f64> = x.iter().map(|p| 3.0 * p[0] - p[1]).collect();
        (x, y)
    }

    #[test]
    fn forest_tracks_a_linear_target() {
        let (x, y) = linear_data();
        let rf = RandomForest::fit(&x, &y, 40, 5, 1);
        let mut worst: f64 = 0.0;
        for (xi, yi) in x.iter().zip(&y) {
            let (m, _) = rf.predict(xi);
            worst = worst.max((m - yi).abs());
        }
        assert!(worst < 1.0, "training-set error {worst} too large");
    }

    #[test]
    fn uncertainty_is_nonnegative_and_finite() {
        let (x, y) = linear_data();
        let rf = RandomForest::fit(&x, &y, 10, 4, 2);
        let (_, s) = rf.predict(&[0.5, 0.5]);
        assert!(s.is_finite() && s >= 0.0);
    }

    #[test]
    fn deterministic_given_seed() {
        let (x, y) = linear_data();
        let a = RandomForest::fit(&x, &y, 10, 4, 3).predict(&[0.3, 0.3]);
        let b = RandomForest::fit(&x, &y, 10, 4, 3).predict(&[0.3, 0.3]);
        assert_eq!(a, b);
    }

    #[test]
    fn more_trees_tighten_the_estimate() {
        let (x, y) = linear_data();
        let small = RandomForest::fit(&x, &y, 3, 5, 4);
        let big = RandomForest::fit(&x, &y, 60, 5, 4);
        let err = |rf: &RandomForest| {
            x.iter().zip(&y).map(|(xi, yi)| (rf.predict(xi).0 - yi).abs()).sum::<f64>()
        };
        assert!(err(&big) <= err(&small) * 1.2, "bagging should not hurt much");
    }
}
