//! Re-implementations of the paper's baseline DSE optimizers (§4.2).
//!
//! Fig. 5 compares the proposed FNN+MFRL method against five baselines
//! under an identical high-fidelity simulation budget. Each baseline's
//! published algorithmic core is re-implemented here on our substrate:
//!
//! * [`RandomForestOptimizer`] — the classic Random Forest regression
//!   surrogate \[Breiman 2001\] with lower-confidence-bound selection;
//! * [`ActBoostOptimizer`] — AdaBoost.R2 regression with statistical
//!   sampling and an active-learning acquisition \[Li et al., DAC'16\];
//! * [`BagGbrtOptimizer`] — bagging-based gradient-boosted regression
//!   trees \[Wang et al., GLSVLSI'23\];
//! * [`BoomExplorerOptimizer`] — Bayesian optimization with a
//!   (deep-kernel-style) Gaussian process and expected improvement,
//!   diversity-initialized \[Bai et al., ICCAD'21\];
//! * [`ScboOptimizer`] — scalable constrained BO: trust region +
//!   Thompson sampling \[Eriksson & Poloczek, AISTATS'21\];
//! * [`RandomSearchOptimizer`] — the sanity floor.
//!
//! All optimizers speak the same [`Optimizer`]/[`Objective`] interface,
//! evaluate only feasible candidates (the paper assigns constraint
//! violators "a low reward and \[they\] do not go through simulation",
//! except SCBO which may spend budget on them), and are deterministic
//! given a seed.
//!
//! The supporting model zoo ([`RegressionTree`], [`RandomForest`],
//! [`Gbrt`], [`AdaBoostR2`], [`GaussianProcess`], [`mod@kmeans`]) is public
//! so downstream users can fit the surrogates directly (e.g. for
//! surrogate-quality diagnostics) outside the optimizer loops.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod boost;
mod forest;
mod gp;
pub mod kmeans;
mod optimizer;
mod optimizers;
pub mod stats;
mod tree;

pub use boost::{AdaBoostR2, Gbrt};
pub use dse_exec::{CostLedger, Evaluation, Evaluator, Fidelity, LedgerSummary};
pub use forest::RandomForest;
pub use gp::GaussianProcess;
pub use kmeans::{kmeans, Clustering};
pub use optimizer::{
    sample_feasible, Objective, OptimizationResult, Optimizer, SampleFeasibleError,
};
pub use optimizers::{
    ActBoostOptimizer, BagGbrtOptimizer, BoomExplorerOptimizer, RandomForestOptimizer,
    RandomSearchOptimizer, ScboOptimizer,
};
pub use tree::RegressionTree;
