//! Small statistical helpers (normal distribution, weighted median).

/// Standard normal probability density.
pub fn normal_pdf(z: f64) -> f64 {
    (-0.5 * z * z).exp() / (2.0 * std::f64::consts::PI).sqrt()
}

/// Standard normal cumulative distribution, via the Abramowitz–Stegun
/// erf approximation (max absolute error ≈ 1.5e-7 — ample for
/// acquisition functions).
pub fn normal_cdf(z: f64) -> f64 {
    0.5 * (1.0 + erf(z / std::f64::consts::SQRT_2))
}

/// Error function approximation (Abramowitz & Stegun 7.1.26).
pub fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let poly = t
        * (0.254_829_592
            + t * (-0.284_496_736
                + t * (1.421_413_741 + t * (-1.453_152_027 + t * 1.061_405_429))));
    sign * (1.0 - poly * (-x * x).exp())
}

/// Expected improvement for *minimization*: how much below `best` the
/// posterior `N(mean, std²)` is expected to land.
pub fn expected_improvement(mean: f64, std: f64, best: f64) -> f64 {
    if std <= 1e-12 {
        return (best - mean).max(0.0);
    }
    let z = (best - mean) / std;
    // Clamp at zero: the erf approximation's ~1e-7 absolute error can
    // push the analytically-nonnegative EI fractionally below zero deep
    // in the no-improvement tail.
    ((best - mean) * normal_cdf(z) + std * normal_pdf(z)).max(0.0)
}

/// Weighted median of `(value, weight)` pairs — the AdaBoost.R2
/// combination rule.
///
/// # Panics
///
/// Panics if `pairs` is empty or all weights are non-positive.
pub fn weighted_median(pairs: &mut [(f64, f64)]) -> f64 {
    assert!(!pairs.is_empty(), "weighted median of nothing");
    pairs.sort_by(|a, b| a.0.total_cmp(&b.0));
    let total: f64 = pairs.iter().map(|(_, w)| w).sum();
    assert!(total > 0.0, "weights must be positive");
    let mut acc = 0.0;
    for &(v, w) in pairs.iter() {
        acc += w;
        if acc >= total / 2.0 {
            return v;
        }
    }
    pairs.last().expect("non-empty").0
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn cdf_known_values() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-7);
        assert!((normal_cdf(1.96) - 0.975).abs() < 1e-3);
        assert!((normal_cdf(-1.96) - 0.025).abs() < 1e-3);
    }

    #[test]
    fn ei_is_zero_far_above_best() {
        // Posterior mean far worse than the incumbent, tiny std.
        assert!(expected_improvement(10.0, 0.01, 1.0) < 1e-12);
    }

    #[test]
    fn ei_grows_with_uncertainty() {
        let tight = expected_improvement(2.0, 0.1, 1.0);
        let loose = expected_improvement(2.0, 2.0, 1.0);
        assert!(loose > tight);
    }

    #[test]
    fn deterministic_ei_at_zero_std() {
        assert_eq!(expected_improvement(0.5, 0.0, 1.0), 0.5);
        assert_eq!(expected_improvement(1.5, 0.0, 1.0), 0.0);
    }

    #[test]
    fn weighted_median_simple() {
        let mut pairs = vec![(1.0, 1.0), (2.0, 1.0), (10.0, 1.0)];
        assert_eq!(weighted_median(&mut pairs), 2.0);
        let mut pairs = vec![(1.0, 5.0), (2.0, 1.0), (10.0, 1.0)];
        assert_eq!(weighted_median(&mut pairs), 1.0);
    }

    proptest! {
        #[test]
        fn cdf_is_monotone(a in -5.0_f64..5.0, b in -5.0_f64..5.0) {
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            prop_assert!(normal_cdf(lo) <= normal_cdf(hi) + 1e-12);
        }

        #[test]
        fn ei_is_nonnegative(mean in -5.0_f64..5.0, std in 0.0_f64..3.0, best in -5.0_f64..5.0) {
            prop_assert!(expected_improvement(mean, std, best) >= 0.0);
        }

        #[test]
        fn weighted_median_is_one_of_the_values(
            vals in proptest::collection::vec((-100.0_f64..100.0, 0.1_f64..5.0), 1..20)
        ) {
            let mut pairs = vals.clone();
            let m = weighted_median(&mut pairs);
            prop_assert!(vals.iter().any(|&(v, _)| v == m));
        }
    }
}
