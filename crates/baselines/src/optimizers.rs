//! The five baseline optimizers of Fig. 5 (plus random search).

use dse_linalg::vector;
use dse_space::{DesignPoint, DesignSpace, Param};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::optimizer::{candidate_pool, random_unseen, EvalLog};
use crate::stats::expected_improvement;
use crate::{
    AdaBoostR2, GaussianProcess, Gbrt, Objective, OptimizationResult, Optimizer, RandomForest,
};

/// Size of the random candidate pool ranked by each acquisition step.
const POOL: usize = 512;
/// Random feasible evaluations before the surrogate takes over.
const N_INIT: usize = 3;

fn init_phase(
    space: &DesignSpace,
    objective: &mut dyn Objective,
    log: &mut EvalLog,
    n: usize,
    rng: &mut StdRng,
) {
    for _ in 0..n.min(log.remaining()) {
        let p = random_unseen(space, objective, log, rng);
        log.evaluate(space, objective, &p);
    }
}

/// Pure random search — the sanity floor for Fig. 5.
#[derive(Debug, Clone, Copy, Default)]
pub struct RandomSearchOptimizer;

impl Optimizer for RandomSearchOptimizer {
    fn name(&self) -> &'static str {
        "Random"
    }

    fn optimize(
        &mut self,
        space: &DesignSpace,
        objective: &mut dyn Objective,
        budget: usize,
        seed: u64,
    ) -> OptimizationResult {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut log = EvalLog::new(budget);
        while log.remaining() > 0 {
            let p = random_unseen(space, objective, &log, &mut rng);
            log.evaluate(space, objective, &p);
        }
        log.into_result()
    }
}

/// Random-forest surrogate with lower-confidence-bound acquisition
/// \[Breiman 2001\] — the paper's "classic baseline".
#[derive(Debug, Clone, Copy, Default)]
pub struct RandomForestOptimizer;

impl Optimizer for RandomForestOptimizer {
    fn name(&self) -> &'static str {
        "Random Forest"
    }

    fn optimize(
        &mut self,
        space: &DesignSpace,
        objective: &mut dyn Objective,
        budget: usize,
        seed: u64,
    ) -> OptimizationResult {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut log = EvalLog::new(budget);
        init_phase(space, objective, &mut log, N_INIT, &mut rng);
        while log.remaining() > 0 {
            let (x, y) = log.training_data(space);
            let rf = RandomForest::fit(&x, &y, 30, 6, seed ^ log.history.len() as u64);
            let pool = candidate_pool(space, objective, &log, POOL, &mut rng);
            let pick = pool
                .into_iter()
                .min_by(|a, b| {
                    let sa = lcb(&rf.predict(&a.feature_vector(space)));
                    let sb = lcb(&rf.predict(&b.feature_vector(space)));
                    sa.total_cmp(&sb)
                })
                .unwrap_or_else(|| random_unseen(space, objective, &log, &mut rng));
            log.evaluate(space, objective, &pick);
        }
        log.into_result()
    }
}

fn lcb(&(mean, std): &(f64, f64)) -> f64 {
    mean - std
}

/// ActBoost \[Li et al., DAC'16\]: AdaBoost.R2 surrogate with an
/// active-learning acquisition that alternates between exploiting the
/// predicted minimum and exploring the committee's maximum-disagreement
/// candidate.
#[derive(Debug, Clone, Copy, Default)]
pub struct ActBoostOptimizer;

impl Optimizer for ActBoostOptimizer {
    fn name(&self) -> &'static str {
        "ActBoost"
    }

    fn optimize(
        &mut self,
        space: &DesignSpace,
        objective: &mut dyn Objective,
        budget: usize,
        seed: u64,
    ) -> OptimizationResult {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut log = EvalLog::new(budget);
        init_phase(space, objective, &mut log, N_INIT, &mut rng);
        let mut round = 0usize;
        while log.remaining() > 0 {
            let (x, y) = log.training_data(space);
            let model = AdaBoostR2::fit(&x, &y, 25, 3, seed ^ round as u64);
            let pool = candidate_pool(space, objective, &log, POOL, &mut rng);
            let explore = round % 3 == 2; // every third pick is active learning
            let pick = pool
                .into_iter()
                .min_by(|a, b| {
                    let fa = a.feature_vector(space);
                    let fb = b.feature_vector(space);
                    let (sa, sb) = if explore {
                        (-model.disagreement(&fa), -model.disagreement(&fb))
                    } else {
                        (model.predict(&fa), model.predict(&fb))
                    };
                    sa.total_cmp(&sb)
                })
                .unwrap_or_else(|| random_unseen(space, objective, &log, &mut rng));
            log.evaluate(space, objective, &pick);
            round += 1;
        }
        log.into_result()
    }
}

/// BagGBRT \[Wang et al., GLSVLSI'23\]: a bag of gradient-boosted tree
/// ensembles; the bag spread provides the uncertainty for an LCB pick.
#[derive(Debug, Clone, Copy, Default)]
pub struct BagGbrtOptimizer;

impl Optimizer for BagGbrtOptimizer {
    fn name(&self) -> &'static str {
        "BagGBRT"
    }

    fn optimize(
        &mut self,
        space: &DesignSpace,
        objective: &mut dyn Objective,
        budget: usize,
        seed: u64,
    ) -> OptimizationResult {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut log = EvalLog::new(budget);
        init_phase(space, objective, &mut log, N_INIT, &mut rng);
        while log.remaining() > 0 {
            let (x, y) = log.training_data(space);
            let bag = fit_bag(&x, &y, 8, &mut rng);
            let pool = candidate_pool(space, objective, &log, POOL, &mut rng);
            let pick = pool
                .into_iter()
                .min_by(|a, b| {
                    let sa = lcb(&bag_predict(&bag, &a.feature_vector(space)));
                    let sb = lcb(&bag_predict(&bag, &b.feature_vector(space)));
                    sa.total_cmp(&sb)
                })
                .unwrap_or_else(|| random_unseen(space, objective, &log, &mut rng));
            log.evaluate(space, objective, &pick);
        }
        log.into_result()
    }
}

fn fit_bag(x: &[Vec<f64>], y: &[f64], bags: usize, rng: &mut StdRng) -> Vec<Gbrt> {
    (0..bags)
        .map(|_| {
            let rows: Vec<usize> = (0..x.len()).map(|_| rng.gen_range(0..x.len())).collect();
            let bx: Vec<Vec<f64>> = rows.iter().map(|&r| x[r].clone()).collect();
            let by: Vec<f64> = rows.iter().map(|&r| y[r]).collect();
            Gbrt::fit(&bx, &by, 30, 3, 0.3)
        })
        .collect()
}

fn bag_predict(bag: &[Gbrt], x: &[f64]) -> (f64, f64) {
    let preds: Vec<f64> = bag.iter().map(|m| m.predict(x)).collect();
    (vector::mean(&preds), vector::variance(&preds).sqrt())
}

/// BOOM-Explorer \[Bai et al., ICCAD'21\]: deep-kernel GP surrogate with
/// expected-improvement acquisition and a MicroAL-style diversity
/// initialization — the candidate pool is k-means-clustered and the
/// member nearest each centroid is simulated first.
#[derive(Debug, Clone, Copy, Default)]
pub struct BoomExplorerOptimizer;

impl Optimizer for BoomExplorerOptimizer {
    fn name(&self) -> &'static str {
        "BOOM-Explorer"
    }

    fn optimize(
        &mut self,
        space: &DesignSpace,
        objective: &mut dyn Objective,
        budget: usize,
        seed: u64,
    ) -> OptimizationResult {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut log = EvalLog::new(budget);
        // MicroAL-style diversity init: cluster the feasible pool and
        // simulate the representative of each cluster.
        let pool = candidate_pool(space, objective, &log, POOL, &mut rng);
        if !pool.is_empty() {
            let feats: Vec<Vec<f64>> = pool.iter().map(|p| p.feature_vector(space)).collect();
            let clustering = crate::kmeans(&feats, N_INIT.min(pool.len()), 25, &mut rng);
            for c in 0..clustering.centroids.len() {
                let member = clustering.nearest_member(&feats, c);
                log.evaluate(space, objective, &pool[member]);
            }
        }
        while log.remaining() > 0 {
            let (x, y) = log.training_data(space);
            let pool = candidate_pool(space, objective, &log, POOL, &mut rng);
            let pick = match GaussianProcess::fit(&x, &y, true, seed) {
                Ok(gp) => {
                    let best = log.best_feasible_value();
                    pool.into_iter()
                        .max_by(|a, b| {
                            let (ma, sa) = gp.predict(&a.feature_vector(space));
                            let (mb, sb) = gp.predict(&b.feature_vector(space));
                            expected_improvement(ma, sa, best)
                                .total_cmp(&expected_improvement(mb, sb, best))
                        })
                        .unwrap_or_else(|| random_unseen(space, objective, &log, &mut rng))
                }
                Err(_) => random_unseen(space, objective, &log, &mut rng),
            };
            log.evaluate(space, objective, &pick);
        }
        log.into_result()
    }
}

/// SCBO \[Eriksson & Poloczek, AISTATS'21\]: trust-region Bayesian
/// optimization with Thompson sampling. Uniquely among the baselines it
/// may spend budget on constraint-violating designs ("SCBO requires the
/// invalid HF results to make inferences", §4.2); violations inform the
/// surrogate but never become the incumbent.
#[derive(Debug, Clone, Copy)]
pub struct ScboOptimizer {
    /// Initial trust-region half-width in candidate-index steps.
    pub initial_radius: usize,
}

impl Default for ScboOptimizer {
    fn default() -> Self {
        Self { initial_radius: 3 }
    }
}

impl Optimizer for ScboOptimizer {
    fn name(&self) -> &'static str {
        "SCBO"
    }

    fn optimize(
        &mut self,
        space: &DesignSpace,
        objective: &mut dyn Objective,
        budget: usize,
        seed: u64,
    ) -> OptimizationResult {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut log = EvalLog::new(budget);
        init_phase(space, objective, &mut log, N_INIT, &mut rng);
        let mut radius = self.initial_radius.max(1);
        let mut failures = 0usize;
        while log.remaining() > 0 {
            let incumbent = log
                .history
                .iter()
                .zip(&log.feasible)
                .filter(|(_, &f)| f)
                .map(|(h, _)| h)
                .min_by(|a, b| a.1.total_cmp(&b.1))
                .map(|(p, _)| p.clone())
                .unwrap_or_else(|| space.smallest());
            let best_before = log.best_feasible_value();

            // Candidates inside the L∞ trust region around the incumbent
            // (no feasibility filter — SCBO learns from violations).
            let candidates: Vec<DesignPoint> = (0..POOL)
                .map(|_| perturb(space, &incumbent, radius, &mut rng))
                .filter(|p| !log.contains(space, p))
                .collect();
            let (x, y) = log.training_data(space);
            let pick = match GaussianProcess::fit(&x, &y, false, seed) {
                Ok(gp) if !candidates.is_empty() => {
                    let feats: Vec<Vec<f64>> =
                        candidates.iter().map(|p| p.feature_vector(space)).collect();
                    let draws = gp.sample_at(&feats, &mut rng);
                    let idx = vector::argmin(&draws).expect("non-empty candidate set");
                    candidates[idx].clone()
                }
                _ => random_unseen(space, objective, &log, &mut rng),
            };
            log.evaluate(space, objective, &pick);

            // Trust-region schedule.
            if log.best_feasible_value() < best_before - 1e-12 {
                failures = 0;
                radius = (radius + 1).min(6);
            } else {
                failures += 1;
                if failures >= 2 {
                    failures = 0;
                    if radius > 1 {
                        radius -= 1;
                    } else {
                        radius = self.initial_radius.max(1); // restart
                    }
                }
            }
        }
        log.into_result()
    }
}

fn perturb(
    space: &DesignSpace,
    center: &DesignPoint,
    radius: usize,
    rng: &mut StdRng,
) -> DesignPoint {
    let r = radius as i64;
    let idx = Param::ALL
        .iter()
        .zip(center.indices())
        .map(|(&p, &c)| {
            if rng.gen_bool(0.5) {
                let n = space.cardinality(p) as i64;
                (c as i64 + rng.gen_range(-r..=r)).clamp(0, n - 1) as usize
            } else {
                c
            }
        })
        .collect();
    DesignPoint::from_indices(idx)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimizer::testutil::SphereObjective;

    fn all_optimizers() -> Vec<Box<dyn Optimizer>> {
        vec![
            Box::new(RandomSearchOptimizer),
            Box::new(RandomForestOptimizer),
            Box::new(ActBoostOptimizer),
            Box::new(BagGbrtOptimizer),
            Box::new(BoomExplorerOptimizer),
            Box::new(ScboOptimizer::default()),
        ]
    }

    #[test]
    fn every_optimizer_respects_the_budget() {
        let space = DesignSpace::boom();
        for mut opt in all_optimizers() {
            let mut obj = SphereObjective::default();
            let result = opt.optimize(&space, &mut obj, 10, 7);
            assert_eq!(result.history.len(), 10, "{} made wrong eval count", opt.name());
            assert_eq!(obj.evals, 10, "{} bypassed the objective", opt.name());
            // The ledger is the budget's single source of truth: every
            // charged evaluation appears there, none beyond the budget.
            assert_eq!(result.ledger.high.evaluations, 10, "{}", opt.name());
            assert_eq!(result.ledger.hf_budget, Some(10), "{}", opt.name());
            assert_eq!(result.ledger.low.evaluations, 0, "{}", opt.name());
        }
    }

    #[test]
    fn every_optimizer_returns_its_history_minimum() {
        let space = DesignSpace::boom();
        for mut opt in all_optimizers() {
            let mut obj = SphereObjective::default();
            let result = opt.optimize(&space, &mut obj, 8, 3);
            let min_feasible = result
                .history
                .iter()
                .filter(|(p, _)| obj.is_feasible(&space, p))
                .map(|(_, v)| *v)
                .fold(f64::INFINITY, f64::min);
            assert_eq!(result.best_value, min_feasible, "{}", opt.name());
        }
    }

    #[test]
    fn non_scbo_optimizers_only_evaluate_feasible_designs() {
        let space = DesignSpace::boom();
        for mut opt in all_optimizers() {
            if opt.name() == "SCBO" {
                continue;
            }
            let mut obj = SphereObjective::default();
            let result = opt.optimize(&space, &mut obj, 8, 11);
            for (p, _) in &result.history {
                assert!(obj.is_feasible(&space, p), "{} evaluated an infeasible point", opt.name());
            }
        }
    }

    #[test]
    fn scbo_best_is_always_feasible() {
        let space = DesignSpace::boom();
        let mut opt = ScboOptimizer::default();
        let mut obj = SphereObjective::default();
        let result = opt.optimize(&space, &mut obj, 12, 5);
        assert!(obj.is_feasible(&space, &result.best_point));
    }

    #[test]
    fn surrogates_beat_random_search_on_a_smooth_objective() {
        // With a smooth single-basin objective and a modest budget, the
        // model-based baselines should (on average over seeds) find
        // better designs than pure random search.
        let space = DesignSpace::boom();
        // Averaged over enough seeds that the comparison reflects the
        // optimizers rather than one PRNG stream's luck.
        let seeds = [1u64, 2, 3, 4, 5, 6, 7, 8, 9, 10];
        let avg = |opt: &mut dyn Optimizer| -> f64 {
            seeds
                .iter()
                .map(|&s| {
                    let mut obj = SphereObjective::default();
                    opt.optimize(&space, &mut obj, 12, s).best_value
                })
                .sum::<f64>()
                / seeds.len() as f64
        };
        let random = avg(&mut RandomSearchOptimizer);
        let rf = avg(&mut RandomForestOptimizer);
        let gp = avg(&mut BoomExplorerOptimizer);
        assert!(rf < random + 0.05, "random forest {rf} vs random {random}");
        assert!(gp < random + 0.05, "boom-explorer {gp} vs random {random}");
    }

    #[test]
    fn optimizers_are_deterministic_given_seed() {
        let space = DesignSpace::boom();
        for mut opt in all_optimizers() {
            let mut a = SphereObjective::default();
            let mut b = SphereObjective::default();
            let ra = opt.optimize(&space, &mut a, 6, 42);
            let rb = opt.optimize(&space, &mut b, 6, 42);
            assert_eq!(ra.best_point, rb.best_point, "{}", opt.name());
            assert_eq!(ra.best_value, rb.best_value, "{}", opt.name());
        }
    }
}
