//! Boosted-tree regressors: least-squares GBRT and AdaBoost.R2.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::stats::weighted_median;
use crate::RegressionTree;

/// Least-squares gradient-boosted regression trees — the base model of
/// the BagGBRT baseline \[Wang et al., GLSVLSI'23\].
///
/// # Examples
///
/// ```
/// use dse_baselines::Gbrt;
///
/// let x: Vec<Vec<f64>> = (0..40).map(|i| vec![i as f64 / 39.0]).collect();
/// let y: Vec<f64> = x.iter().map(|p| (p[0] * 6.0).sin()).collect();
/// let model = Gbrt::fit(&x, &y, 50, 3, 0.3);
/// assert!((model.predict(&[0.25]) - (0.25_f64 * 6.0).sin()).abs() < 0.2);
/// ```
#[derive(Debug, Clone)]
pub struct Gbrt {
    base: f64,
    learning_rate: f64,
    stages: Vec<RegressionTree>,
}

impl Gbrt {
    /// Fits `n_stages` depth-`max_depth` trees on the running residuals
    /// with shrinkage `learning_rate`.
    ///
    /// # Panics
    ///
    /// Panics on empty data or a non-positive learning rate.
    pub fn fit(
        x: &[Vec<f64>],
        y: &[f64],
        n_stages: usize,
        max_depth: usize,
        learning_rate: f64,
    ) -> Self {
        assert!(!x.is_empty(), "cannot fit GBRT to no data");
        assert!(learning_rate > 0.0, "learning rate must be positive");
        let base = y.iter().sum::<f64>() / y.len() as f64;
        let mut residuals: Vec<f64> = y.iter().map(|v| v - base).collect();
        let mut stages = Vec::with_capacity(n_stages);
        for _ in 0..n_stages {
            let tree = RegressionTree::fit(x, &residuals, None, max_depth, 2);
            for (r, xi) in residuals.iter_mut().zip(x) {
                *r -= learning_rate * tree.predict(xi);
            }
            stages.push(tree);
        }
        Self { base, learning_rate, stages }
    }

    /// Predicts the target at a feature vector.
    pub fn predict(&self, x: &[f64]) -> f64 {
        self.base + self.learning_rate * self.stages.iter().map(|t| t.predict(x)).sum::<f64>()
    }

    /// Number of boosting stages.
    pub fn stage_count(&self) -> usize {
        self.stages.len()
    }
}

/// AdaBoost.R2 regression — the surrogate of the ActBoost baseline
/// \[Li et al., DAC'16\] (Drucker's boosting for regression).
///
/// Weak learners are shallow trees fit on weight-proportional bootstrap
/// resamples; predictions combine by the weighted median.
#[derive(Debug, Clone)]
pub struct AdaBoostR2 {
    learners: Vec<(RegressionTree, f64)>,
    fallback: f64,
}

impl AdaBoostR2 {
    /// Fits up to `n_learners` weak trees of depth `max_depth`.
    ///
    /// Boosting stops early if a learner's weighted linear loss exceeds
    /// 0.5 (the AdaBoost.R2 termination rule).
    ///
    /// # Panics
    ///
    /// Panics on empty data.
    pub fn fit(x: &[Vec<f64>], y: &[f64], n_learners: usize, max_depth: usize, seed: u64) -> Self {
        assert!(!x.is_empty(), "cannot fit AdaBoost to no data");
        let n = x.len();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut weights = vec![1.0 / n as f64; n];
        let mut learners = Vec::new();
        for _ in 0..n_learners {
            // Weight-proportional bootstrap resample.
            let rows: Vec<usize> = (0..n).map(|_| sample_index(&weights, &mut rng)).collect();
            let bx: Vec<Vec<f64>> = rows.iter().map(|&r| x[r].clone()).collect();
            let by: Vec<f64> = rows.iter().map(|&r| y[r]).collect();
            let tree = RegressionTree::fit(&bx, &by, None, max_depth, 2);
            // Linear loss normalized by the worst error.
            let errors: Vec<f64> =
                x.iter().zip(y).map(|(xi, yi)| (tree.predict(xi) - yi).abs()).collect();
            let max_err = errors.iter().cloned().fold(0.0_f64, f64::max);
            if max_err <= 1e-12 {
                // Perfect learner: give it a large vote and stop.
                learners.push((tree, 10.0));
                break;
            }
            let losses: Vec<f64> = errors.iter().map(|e| e / max_err).collect();
            let avg_loss: f64 = weights.iter().zip(&losses).map(|(w, l)| w * l).sum();
            if avg_loss >= 0.5 {
                break; // AdaBoost.R2 termination
            }
            let beta = avg_loss / (1.0 - avg_loss);
            for (w, l) in weights.iter_mut().zip(&losses) {
                *w *= beta.powf(1.0 - l);
            }
            let sum: f64 = weights.iter().sum();
            for w in &mut weights {
                *w /= sum;
            }
            learners.push((tree, (1.0 / beta).ln()));
        }
        let fallback = y.iter().sum::<f64>() / n as f64;
        Self { learners, fallback }
    }

    /// Predicts via the weighted median of the weak learners (falls back
    /// to the training mean if boosting terminated immediately).
    pub fn predict(&self, x: &[f64]) -> f64 {
        if self.learners.is_empty() {
            return self.fallback;
        }
        let mut pairs: Vec<(f64, f64)> =
            self.learners.iter().map(|(t, w)| (t.predict(x), *w)).collect();
        weighted_median(&mut pairs)
    }

    /// Spread of the weak learners' predictions at `x` — the committee
    /// disagreement used by ActBoost's active learning.
    pub fn disagreement(&self, x: &[f64]) -> f64 {
        if self.learners.len() < 2 {
            return 0.0;
        }
        let preds: Vec<f64> = self.learners.iter().map(|(t, _)| t.predict(x)).collect();
        let lo = preds.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = preds.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        hi - lo
    }

    /// Number of committed weak learners.
    pub fn learner_count(&self) -> usize {
        self.learners.len()
    }
}

fn sample_index(weights: &[f64], rng: &mut StdRng) -> usize {
    let total: f64 = weights.iter().sum();
    let mut u = rng.gen_range(0.0..total.max(1e-300));
    for (i, &w) in weights.iter().enumerate() {
        if u < w {
            return i;
        }
        u -= w;
    }
    weights.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wavy() -> (Vec<Vec<f64>>, Vec<f64>) {
        let x: Vec<Vec<f64>> = (0..50).map(|i| vec![i as f64 / 49.0]).collect();
        let y: Vec<f64> = x.iter().map(|p| (p[0] * 8.0).sin() + p[0]).collect();
        (x, y)
    }

    #[test]
    fn gbrt_reduces_training_error_with_stages() {
        let (x, y) = wavy();
        let err = |m: &Gbrt| -> f64 {
            x.iter().zip(&y).map(|(xi, yi)| (m.predict(xi) - yi).powi(2)).sum()
        };
        let short = Gbrt::fit(&x, &y, 5, 3, 0.3);
        let long = Gbrt::fit(&x, &y, 80, 3, 0.3);
        assert!(err(&long) < err(&short) / 2.0);
    }

    #[test]
    fn gbrt_zero_stages_is_the_mean() {
        let (x, y) = wavy();
        let m = Gbrt::fit(&x, &y, 0, 3, 0.3);
        let mean = y.iter().sum::<f64>() / y.len() as f64;
        assert_eq!(m.predict(&[0.4]), mean);
    }

    #[test]
    fn adaboost_learns_the_trend() {
        let (x, y) = wavy();
        let m = AdaBoostR2::fit(&x, &y, 30, 3, 1);
        assert!(m.learner_count() > 1);
        let rmse: f64 =
            (x.iter().zip(&y).map(|(xi, yi)| (m.predict(xi) - yi).powi(2)).sum::<f64>()
                / x.len() as f64)
                .sqrt();
        assert!(rmse < 0.4, "rmse {rmse}");
    }

    #[test]
    fn adaboost_disagreement_is_nonnegative() {
        let (x, y) = wavy();
        let m = AdaBoostR2::fit(&x, &y, 20, 2, 2);
        for xi in &x {
            assert!(m.disagreement(xi) >= 0.0);
        }
    }

    #[test]
    fn adaboost_is_deterministic_given_seed() {
        let (x, y) = wavy();
        let a = AdaBoostR2::fit(&x, &y, 15, 3, 9).predict(&[0.37]);
        let b = AdaBoostR2::fit(&x, &y, 15, 3, 9).predict(&[0.37]);
        assert_eq!(a, b);
    }
}
