//! CART-style regression trees — the weak learner behind the forest and
//! boosting baselines.

use dse_linalg::vector;

/// A binary regression tree fit by variance-reduction splitting.
///
/// # Examples
///
/// ```
/// use dse_baselines::RegressionTree;
///
/// // y = step at x0 = 0.5
/// let x: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64 / 19.0]).collect();
/// let y: Vec<f64> = x.iter().map(|p| if p[0] < 0.5 { 0.0 } else { 1.0 }).collect();
/// let tree = RegressionTree::fit(&x, &y, None, 4, 2);
/// assert!(tree.predict(&[0.1]) < 0.2);
/// assert!(tree.predict(&[0.9]) > 0.8);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RegressionTree {
    root: Node,
}

#[derive(Debug, Clone, PartialEq)]
enum Node {
    Leaf(f64),
    Split { feature: usize, threshold: f64, left: Box<Node>, right: Box<Node> },
}

impl RegressionTree {
    /// Fits a tree to `(x, y)` with optional per-sample `weights`.
    ///
    /// `max_depth` bounds the tree height; nodes with fewer than
    /// `min_samples` points become leaves.
    ///
    /// # Panics
    ///
    /// Panics if `x` is empty, lengths mismatch, or rows are ragged.
    pub fn fit(
        x: &[Vec<f64>],
        y: &[f64],
        weights: Option<&[f64]>,
        max_depth: usize,
        min_samples: usize,
    ) -> Self {
        assert!(!x.is_empty(), "cannot fit a tree to no data");
        assert_eq!(x.len(), y.len(), "x/y length mismatch");
        let dim = x[0].len();
        assert!(x.iter().all(|r| r.len() == dim), "ragged feature rows");
        let w: Vec<f64> = match weights {
            Some(w) => {
                assert_eq!(w.len(), y.len(), "weight length mismatch");
                w.to_vec()
            }
            None => vec![1.0; y.len()],
        };
        let idx: Vec<usize> = (0..x.len()).collect();
        let root = build(x, y, &w, &idx, max_depth, min_samples.max(1));
        Self { root }
    }

    /// Predicts the target at a feature vector.
    pub fn predict(&self, x: &[f64]) -> f64 {
        let mut node = &self.root;
        loop {
            match node {
                Node::Leaf(v) => return *v,
                Node::Split { feature, threshold, left, right } => {
                    node = if x[*feature] < *threshold { left } else { right };
                }
            }
        }
    }

    /// Number of leaves (diagnostic).
    pub fn leaf_count(&self) -> usize {
        fn count(n: &Node) -> usize {
            match n {
                Node::Leaf(_) => 1,
                Node::Split { left, right, .. } => count(left) + count(right),
            }
        }
        count(&self.root)
    }
}

fn weighted_mean(y: &[f64], w: &[f64], idx: &[usize]) -> f64 {
    let sw: f64 = idx.iter().map(|&i| w[i]).sum();
    if sw <= 0.0 {
        return vector::mean(&idx.iter().map(|&i| y[i]).collect::<Vec<_>>());
    }
    idx.iter().map(|&i| w[i] * y[i]).sum::<f64>() / sw
}

/// Weighted sum of squared errors around the weighted mean.
fn wsse(y: &[f64], w: &[f64], idx: &[usize]) -> f64 {
    let m = weighted_mean(y, w, idx);
    idx.iter().map(|&i| w[i] * (y[i] - m) * (y[i] - m)).sum()
}

fn build(
    x: &[Vec<f64>],
    y: &[f64],
    w: &[f64],
    idx: &[usize],
    depth: usize,
    min_samples: usize,
) -> Node {
    if depth == 0 || idx.len() < 2 * min_samples {
        return Node::Leaf(weighted_mean(y, w, idx));
    }
    let parent_sse = wsse(y, w, idx);
    if parent_sse <= 1e-12 {
        return Node::Leaf(weighted_mean(y, w, idx));
    }
    let dim = x[0].len();
    let mut best: Option<(f64, usize, f64)> = None; // (sse, feature, threshold)
                                                    // Indexing by feature id is clearer than iterating columns here.
    #[allow(clippy::needless_range_loop)]
    for f in 0..dim {
        let mut values: Vec<f64> = idx.iter().map(|&i| x[i][f]).collect();
        values.sort_by(f64::total_cmp);
        values.dedup();
        for pair in values.windows(2) {
            let thr = (pair[0] + pair[1]) / 2.0;
            let (mut left, mut right) = (Vec::new(), Vec::new());
            for &i in idx {
                if x[i][f] < thr {
                    left.push(i);
                } else {
                    right.push(i);
                }
            }
            if left.len() < min_samples || right.len() < min_samples {
                continue;
            }
            let sse = wsse(y, w, &left) + wsse(y, w, &right);
            if best.as_ref().is_none_or(|(b, _, _)| sse < *b) {
                best = Some((sse, f, thr));
            }
        }
    }
    match best {
        Some((sse, feature, threshold)) if sse < parent_sse - 1e-12 => {
            let (mut left, mut right) = (Vec::new(), Vec::new());
            for &i in idx {
                if x[i][feature] < threshold {
                    left.push(i);
                } else {
                    right.push(i);
                }
            }
            Node::Split {
                feature,
                threshold,
                left: Box::new(build(x, y, w, &left, depth - 1, min_samples)),
                right: Box::new(build(x, y, w, &right, depth - 1, min_samples)),
            }
        }
        _ => Node::Leaf(weighted_mean(y, w, idx)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn grid2d(n: usize) -> Vec<Vec<f64>> {
        (0..n * n)
            .map(|k| vec![(k % n) as f64 / (n - 1) as f64, (k / n) as f64 / (n - 1) as f64])
            .collect()
    }

    #[test]
    fn fits_an_axis_aligned_quadrant() {
        let x = grid2d(8);
        let y: Vec<f64> =
            x.iter().map(|p| if p[0] > 0.5 && p[1] > 0.5 { 1.0 } else { 0.0 }).collect();
        let t = RegressionTree::fit(&x, &y, None, 4, 1);
        assert!(t.predict(&[0.9, 0.9]) > 0.9);
        assert!(t.predict(&[0.1, 0.9]) < 0.1);
        assert!(t.predict(&[0.9, 0.1]) < 0.1);
    }

    #[test]
    fn depth_zero_is_the_mean() {
        let x = vec![vec![0.0], vec![1.0]];
        let y = vec![2.0, 4.0];
        let t = RegressionTree::fit(&x, &y, None, 0, 1);
        assert_eq!(t.predict(&[0.0]), 3.0);
        assert_eq!(t.leaf_count(), 1);
    }

    #[test]
    fn weights_bias_the_leaf_values() {
        let x = vec![vec![0.0], vec![0.0]];
        let y = vec![0.0, 10.0];
        let t = RegressionTree::fit(&x, &y, Some(&[9.0, 1.0]), 2, 1);
        assert!((t.predict(&[0.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn constant_target_gives_single_leaf() {
        let x = grid2d(4);
        let y = vec![5.0; x.len()];
        let t = RegressionTree::fit(&x, &y, None, 6, 1);
        assert_eq!(t.leaf_count(), 1);
        assert_eq!(t.predict(&[0.3, 0.7]), 5.0);
    }

    #[test]
    #[should_panic(expected = "no data")]
    fn empty_data_panics() {
        let _ = RegressionTree::fit(&[], &[], None, 3, 1);
    }

    proptest! {
        #[test]
        fn predictions_stay_within_target_range(
            seed in 0u64..50,
            depth in 1usize..6,
        ) {
            // Targets in [0, 1] → every prediction is a (weighted) mean
            // of targets, so it must stay in [0, 1].
            let mut s = seed;
            let mut next = move || {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                (s >> 11) as f64 / (1u64 << 53) as f64
            };
            let x: Vec<Vec<f64>> = (0..40).map(|_| vec![next(), next(), next()]).collect();
            let y: Vec<f64> = (0..40).map(|_| next()).collect();
            let t = RegressionTree::fit(&x, &y, None, depth, 2);
            for p in &x {
                let v = t.predict(p);
                prop_assert!((-1e-9..=1.0 + 1e-9).contains(&v));
            }
        }
    }
}
