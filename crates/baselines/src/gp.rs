//! Gaussian-process regression with an optional feature-map ("deep")
//! kernel — the surrogate behind BOOM-Explorer and SCBO.

use dse_linalg::{vector, Cholesky, Matrix};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A Gaussian-process regressor with an RBF kernel.
///
/// BOOM-Explorer's deep-kernel GP learns a neural feature map jointly
/// with the GP; as a laptop-scale substitute (documented in `DESIGN.md`)
/// we optionally pass inputs through a fixed random two-layer tanh
/// feature map — the same *family* of kernels, with the lengthscale (the
/// remaining hyper-parameter) selected by marginal likelihood over a
/// small grid in [`GaussianProcess::fit`].
///
/// # Examples
///
/// ```
/// use dse_baselines::GaussianProcess;
///
/// let x: Vec<Vec<f64>> = (0..12).map(|i| vec![i as f64 / 11.0]).collect();
/// let y: Vec<f64> = x.iter().map(|p| p[0] * p[0]).collect();
/// let gp = GaussianProcess::fit(&x, &y, false, 0).expect("kernel is PD");
/// let (mean, std) = gp.predict(&[0.5]);
/// assert!((mean - 0.25).abs() < 0.1);
/// assert!(std >= 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct GaussianProcess {
    x: Vec<Vec<f64>>,
    alpha: Vec<f64>,
    chol: Cholesky,
    lengthscale: f64,
    signal: f64,
    noise: f64,
    y_mean: f64,
    feature_map: Option<FeatureMap>,
}

/// Fixed random two-layer tanh feature map (deep-kernel substitute).
#[derive(Debug, Clone)]
struct FeatureMap {
    w1: Vec<Vec<f64>>,
    w2: Vec<Vec<f64>>,
}

impl FeatureMap {
    fn new(dim: usize, hidden: usize, out: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xDEEF);
        let mut layer = |rows: usize, cols: usize| -> Vec<Vec<f64>> {
            (0..rows)
                .map(|_| {
                    (0..cols).map(|_| rng.gen_range(-1.0..1.0) / (cols as f64).sqrt()).collect()
                })
                .collect()
        };
        Self { w1: layer(hidden, dim), w2: layer(out, hidden) }
    }

    fn apply(&self, x: &[f64]) -> Vec<f64> {
        let h: Vec<f64> = self.w1.iter().map(|row| vector::dot(row, x).tanh()).collect();
        self.w2.iter().map(|row| vector::dot(row, &h).tanh()).collect()
    }
}

impl GaussianProcess {
    /// Fits a GP with lengthscale selected by log marginal likelihood
    /// over a logarithmic grid; `deep_kernel` enables the feature map.
    ///
    /// # Errors
    ///
    /// Returns the Cholesky error if no grid point yields a positive-
    /// definite kernel matrix (pathological duplicate data); callers can
    /// add jitter by perturbing inputs.
    ///
    /// # Panics
    ///
    /// Panics on empty or ragged data.
    pub fn fit(
        x: &[Vec<f64>],
        y: &[f64],
        deep_kernel: bool,
        seed: u64,
    ) -> Result<Self, dse_linalg::FactorizeError> {
        assert!(!x.is_empty(), "cannot fit a GP to no data");
        assert_eq!(x.len(), y.len(), "x/y length mismatch");
        let dim = x[0].len();
        let feature_map = deep_kernel.then(|| FeatureMap::new(dim, 16, 8, seed));
        let z: Vec<Vec<f64>> = match &feature_map {
            Some(fm) => x.iter().map(|xi| fm.apply(xi)).collect(),
            None => x.to_vec(),
        };
        let y_mean = vector::mean(y);
        let yc: Vec<f64> = y.iter().map(|v| v - y_mean).collect();
        let signal = vector::variance(&yc).max(1e-6);
        let noise = signal * 1e-4 + 1e-8;

        let mut best: Option<(f64, f64, Cholesky)> = None; // (lml, ℓ, chol)
        let mut last_err = dse_linalg::FactorizeError::NotSquare;
        for &lengthscale in &[0.1, 0.2, 0.4, 0.8, 1.6, 3.2] {
            let k = kernel_matrix(&z, lengthscale, signal, noise);
            match Cholesky::new(&k) {
                Ok(chol) => {
                    let alpha = chol.solve(&yc);
                    let lml = -0.5 * vector::dot(&yc, &alpha)
                        - 0.5 * chol.log_det()
                        - 0.5 * (z.len() as f64) * (2.0 * std::f64::consts::PI).ln();
                    if best.as_ref().is_none_or(|(b, _, _)| lml > *b) {
                        best = Some((lml, lengthscale, chol));
                    }
                }
                Err(e) => last_err = e,
            }
        }
        let (_, lengthscale, chol) = best.ok_or(last_err)?;
        let alpha = chol.solve(&yc);
        Ok(Self { x: z, alpha, chol, lengthscale, signal, noise, y_mean, feature_map })
    }

    /// Posterior mean and standard deviation at a query point.
    pub fn predict(&self, x: &[f64]) -> (f64, f64) {
        let z = match &self.feature_map {
            Some(fm) => fm.apply(x),
            None => x.to_vec(),
        };
        let k_star: Vec<f64> =
            self.x.iter().map(|xi| rbf(xi, &z, self.lengthscale, self.signal)).collect();
        let mean = self.y_mean + vector::dot(&k_star, &self.alpha);
        let v = self.chol.solve_lower(&k_star);
        let var = (self.signal + self.noise - vector::dot(&v, &v)).max(0.0);
        (mean, var.sqrt())
    }

    /// Draws an (independent-marginal) posterior sample at each query —
    /// the Thompson-sampling device used by SCBO. Marginal rather than
    /// joint sampling is a standard large-candidate-set approximation.
    pub fn sample_at(&self, xs: &[Vec<f64>], rng: &mut StdRng) -> Vec<f64> {
        xs.iter()
            .map(|x| {
                let (m, s) = self.predict(x);
                m + s * standard_normal(rng)
            })
            .collect()
    }

    /// The lengthscale selected by marginal likelihood.
    pub fn lengthscale(&self) -> f64 {
        self.lengthscale
    }
}

fn rbf(a: &[f64], b: &[f64], lengthscale: f64, signal: f64) -> f64 {
    signal * (-vector::squared_distance(a, b) / (2.0 * lengthscale * lengthscale)).exp()
}

fn kernel_matrix(x: &[Vec<f64>], lengthscale: f64, signal: f64, noise: f64) -> Matrix {
    let n = x.len();
    let mut k = Matrix::zeros(n, n);
    for i in 0..n {
        for j in 0..=i {
            let v = rbf(&x[i], &x[j], lengthscale, signal);
            k[(i, j)] = v;
            k[(j, i)] = v;
        }
        k[(i, i)] += noise;
    }
    k
}

/// Box–Muller standard normal.
fn standard_normal(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(1e-12..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn data() -> (Vec<Vec<f64>>, Vec<f64>) {
        let x: Vec<Vec<f64>> = (0..15).map(|i| vec![i as f64 / 14.0]).collect();
        let y: Vec<f64> = x.iter().map(|p| (3.0 * p[0]).sin()).collect();
        (x, y)
    }

    #[test]
    fn interpolates_training_points() {
        let (x, y) = data();
        let gp = GaussianProcess::fit(&x, &y, false, 0).unwrap();
        for (xi, yi) in x.iter().zip(&y) {
            let (m, s) = gp.predict(xi);
            assert!((m - yi).abs() < 0.05, "mean {m} vs {yi}");
            assert!(s < 0.1, "training-point std {s} should be small");
        }
    }

    #[test]
    fn uncertainty_grows_away_from_data() {
        let (x, y) = data();
        let gp = GaussianProcess::fit(&x, &y, false, 0).unwrap();
        let (_, near) = gp.predict(&[0.5]);
        let (_, far) = gp.predict(&[5.0]);
        assert!(far > near);
        assert!((far * far - (gp.signal + gp.noise)).abs() < 1e-6, "prior variance far away");
    }

    #[test]
    fn deep_kernel_variant_fits() {
        let (x, y) = data();
        let gp = GaussianProcess::fit(&x, &y, true, 3).unwrap();
        let (m, s) = gp.predict(&x[7]);
        assert!(m.is_finite() && s.is_finite());
    }

    #[test]
    fn thompson_samples_follow_the_posterior() {
        let (x, y) = data();
        let gp = GaussianProcess::fit(&x, &y, false, 0).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let qs = vec![vec![0.25], vec![0.75]];
        let draws: Vec<Vec<f64>> = (0..200).map(|_| gp.sample_at(&qs, &mut rng)).collect();
        let mean0 = draws.iter().map(|d| d[0]).sum::<f64>() / draws.len() as f64;
        let (m0, _) = gp.predict(&qs[0]);
        assert!((mean0 - m0).abs() < 0.1, "sample mean {mean0} vs posterior {m0}");
    }

    proptest! {
        #[test]
        fn posterior_variance_is_nonnegative(q in -3.0_f64..3.0) {
            let (x, y) = data();
            let gp = GaussianProcess::fit(&x, &y, false, 0).unwrap();
            let (_, s) = gp.predict(&[q]);
            prop_assert!(s.is_finite());
            prop_assert!(s >= 0.0);
        }
    }
}
