//! The common optimizer/objective interface and evaluation bookkeeping.

use std::collections::HashSet;

use dse_exec::{CostLedger, CpiModel, Evaluation, Fidelity, LedgerEntry, LedgerSummary};
use dse_space::{DesignPoint, DesignSpace};
use rand::rngs::StdRng;

/// The expensive black-box objective a baseline optimizes: HF CPI under
/// an area-feasibility predicate.
///
/// This trait is the optimizer-facing *adapter* over the workspace's
/// [`Evaluator`](dse_exec::Evaluator) layer: every call an optimizer
/// makes is routed through
/// the shared [`CostLedger`] inside the crate's evaluation log, so the
/// Fig. 5 baselines and FNN-MFRL share bit-identical budget accounting.
pub trait Objective {
    /// Runs the high-fidelity evaluation (counts against the budget).
    fn evaluate(&mut self, space: &DesignSpace, point: &DesignPoint) -> f64;

    /// Cheap feasibility check (the area model).
    fn is_feasible(&self, space: &DesignSpace, point: &DesignPoint) -> bool;

    /// The evaluation with full provenance. The default wraps
    /// [`Objective::evaluate`] and stamps the feasibility predicate;
    /// objectives backed by a real [`Evaluator`](dse_exec::Evaluator)
    /// override this to forward its provenance (memo hits, area
    /// figures) unchanged.
    fn evaluate_rich(&mut self, space: &DesignSpace, point: &DesignPoint) -> Evaluation {
        let mut ev = Evaluation::new(self.evaluate(space, point), Fidelity::High);
        ev.feasible = Some(self.is_feasible(space, point));
        ev
    }

    /// Model-time units one fresh evaluation costs (see
    /// [`Evaluator::cost_per_eval`](dse_exec::Evaluator::cost_per_eval)).
    fn cost_per_eval(&self) -> f64 {
        1.0
    }
}

/// The internal [`Evaluator`](dse_exec::Evaluator) view of an
/// [`Objective`] — via the [`CpiModel`] blanket adapter — so
/// [`EvalLog`] can drive it through a [`CostLedger`].
struct ObjectiveEvaluator<'a> {
    objective: &'a mut dyn Objective,
}

impl CpiModel for ObjectiveEvaluator<'_> {
    fn fidelity(&self) -> Fidelity {
        Fidelity::High
    }

    fn evaluations(&mut self, space: &DesignSpace, points: &[DesignPoint]) -> Vec<Evaluation> {
        points.iter().map(|p| self.objective.evaluate_rich(space, p)).collect()
    }

    fn cost_per_eval(&self) -> f64 {
        self.objective.cost_per_eval()
    }
}

/// Outcome of one optimization run.
#[derive(Debug, Clone)]
pub struct OptimizationResult {
    /// Best *feasible* evaluated design (overall best if nothing
    /// feasible was evaluated).
    pub best_point: DesignPoint,
    /// Its objective value.
    pub best_value: f64,
    /// Every evaluation in order `(design, value)`.
    pub history: Vec<(DesignPoint, f64)>,
    /// The run's cost-ledger roll-up (budget, charges, replays, denials).
    pub ledger: LedgerSummary,
}

/// A budgeted black-box optimizer (one of the Fig. 5 baselines).
pub trait Optimizer {
    /// Display name used in the experiment tables.
    fn name(&self) -> &'static str;

    /// Runs the optimizer for exactly `budget` objective evaluations.
    fn optimize(
        &mut self,
        space: &DesignSpace,
        objective: &mut dyn Objective,
        budget: usize,
        seed: u64,
    ) -> OptimizationResult;
}

/// Rejection sampling gave up: feasible designs are too rare under the
/// active constraint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SampleFeasibleError {
    /// How many distinct feasible designs were requested.
    pub requested: usize,
    /// How many were found before giving up.
    pub found: usize,
    /// How many random draws were attempted.
    pub attempts: usize,
}

impl std::fmt::Display for SampleFeasibleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "found only {} of {} requested feasible designs after {} random draws — \
             the feasibility constraint is too tight for rejection sampling",
            self.found, self.requested, self.attempts
        )
    }
}

impl std::error::Error for SampleFeasibleError {}

/// Draws `n` distinct feasible design points by rejection sampling.
///
/// # Errors
///
/// Returns [`SampleFeasibleError`] when 10 000·n rejections fail to find
/// enough feasible designs, so tight area limits degrade gracefully
/// instead of aborting a whole experiment run. With the Table 2 area
/// limits feasibility is plentiful and sampling always succeeds.
pub fn sample_feasible(
    space: &DesignSpace,
    objective: &dyn Objective,
    n: usize,
    rng: &mut StdRng,
) -> Result<Vec<DesignPoint>, SampleFeasibleError> {
    let mut out = Vec::with_capacity(n);
    let mut seen = HashSet::new();
    let mut attempts = 0usize;
    let max_attempts = 10_000 * n.max(1);
    while out.len() < n {
        if attempts >= max_attempts {
            return Err(SampleFeasibleError { requested: n, found: out.len(), attempts });
        }
        attempts += 1;
        let p = space.random_point(rng);
        if !objective.is_feasible(space, &p) {
            continue;
        }
        if seen.insert(space.encode(&p)) {
            out.push(p);
        }
    }
    Ok(out)
}

/// Shared evaluation bookkeeping for every baseline: best-feasible
/// tracking over a [`CostLedger`], which owns the budget, the per-run
/// dedup and all counters — the same accounting FNN-MFRL runs under.
#[derive(Debug)]
pub(crate) struct EvalLog {
    pub history: Vec<(DesignPoint, f64)>,
    pub feasible: Vec<bool>,
    ledger: CostLedger,
}

impl EvalLog {
    pub fn new(budget: usize) -> Self {
        Self {
            history: Vec::new(),
            feasible: Vec::new(),
            ledger: CostLedger::new().with_hf_budget(budget),
        }
    }

    pub fn remaining(&self) -> usize {
        self.ledger.hf_remaining().expect("EvalLog always installs a budget")
    }

    pub fn contains(&self, space: &DesignSpace, point: &DesignPoint) -> bool {
        self.ledger.knows(Fidelity::High, space.encode(point))
    }

    /// Evaluates `point` if budget remains and it is unseen; returns the
    /// value when a charged evaluation happened (replays and denials
    /// both return `None`, as the optimizers expect).
    pub fn evaluate(
        &mut self,
        space: &DesignSpace,
        objective: &mut dyn Objective,
        point: &DesignPoint,
    ) -> Option<f64> {
        let entry = self.ledger.evaluate(&mut ObjectiveEvaluator { objective }, space, point);
        match entry {
            LedgerEntry::Charged(ev) => {
                self.history.push((point.clone(), ev.cpi));
                self.feasible
                    .push(ev.feasible.unwrap_or_else(|| objective.is_feasible(space, point)));
                Some(ev.cpi)
            }
            LedgerEntry::Replayed(_) | LedgerEntry::Denied => None,
        }
    }

    /// Training data for surrogates: normalized features and values.
    pub fn training_data(&self, space: &DesignSpace) -> (Vec<Vec<f64>>, Vec<f64>) {
        let x = self.history.iter().map(|(p, _)| p.feature_vector(space)).collect();
        let y = self.history.iter().map(|(_, v)| *v).collect();
        (x, y)
    }

    /// Best feasible value so far (infinity if none).
    pub fn best_feasible_value(&self) -> f64 {
        self.history
            .iter()
            .zip(&self.feasible)
            .filter(|(_, &f)| f)
            .map(|((_, v), _)| *v)
            .fold(f64::INFINITY, f64::min)
    }

    pub fn into_result(self) -> OptimizationResult {
        assert!(!self.history.is_empty(), "optimizer made no evaluations");
        let best = self
            .history
            .iter()
            .zip(&self.feasible)
            .filter(|(_, &f)| f)
            .map(|(h, _)| h)
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .or_else(|| self.history.iter().min_by(|a, b| a.1.total_cmp(&b.1)))
            .expect("non-empty history");
        OptimizationResult {
            best_point: best.0.clone(),
            best_value: best.1,
            history: self.history.clone(),
            ledger: self.ledger.summary(),
        }
    }
}

/// Draws `n` random feasible candidates for acquisition ranking,
/// excluding already-evaluated designs.
pub(crate) fn candidate_pool(
    space: &DesignSpace,
    objective: &dyn Objective,
    log: &EvalLog,
    n: usize,
    rng: &mut StdRng,
) -> Vec<DesignPoint> {
    let mut out = Vec::with_capacity(n);
    let mut attempts = 0;
    while out.len() < n && attempts < 50 * n {
        attempts += 1;
        let p = space.random_point(rng);
        if objective.is_feasible(space, &p) && !log.contains(space, &p) {
            out.push(p);
        }
    }
    out
}

/// Draws one uniform feasible unseen point (fallback exploration).
pub(crate) fn random_unseen(
    space: &DesignSpace,
    objective: &dyn Objective,
    log: &EvalLog,
    rng: &mut StdRng,
) -> DesignPoint {
    loop {
        let p = space.random_point(rng);
        if objective.is_feasible(space, &p) && !log.contains(space, &p) {
            return p;
        }
    }
}

#[cfg(test)]
pub(crate) mod testutil {
    use super::*;

    /// A synthetic smooth objective with a known optimum at the largest
    /// feasible design.
    #[derive(Debug, Default)]
    pub struct SphereObjective {
        pub evals: usize,
    }

    impl Objective for SphereObjective {
        fn evaluate(&mut self, space: &DesignSpace, point: &DesignPoint) -> f64 {
            self.evals += 1;
            let f = point.feature_vector(space);
            // Minimum at all-ones, i.e. the largest design; feasibility
            // caps the reachable region.
            3.0 - f.iter().sum::<f64>() / f.len() as f64
                + 0.3 * f.iter().map(|v| (v - 0.7) * (v - 0.7)).sum::<f64>()
        }

        fn is_feasible(&self, _space: &DesignSpace, point: &DesignPoint) -> bool {
            point.indices().iter().sum::<usize>() <= 20
        }
    }
}

#[cfg(test)]
mod tests {
    use super::testutil::SphereObjective;
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn sample_feasible_respects_the_predicate() {
        let space = DesignSpace::boom();
        let obj = SphereObjective::default();
        let mut rng = StdRng::seed_from_u64(0);
        let samples = sample_feasible(&space, &obj, 20, &mut rng).expect("feasibility plentiful");
        assert_eq!(samples.len(), 20);
        for p in samples {
            assert!(obj.is_feasible(&space, &p));
        }
    }

    #[test]
    fn sample_feasible_reports_an_impossible_constraint_gracefully() {
        struct Impossible;
        impl Objective for Impossible {
            fn evaluate(&mut self, _space: &DesignSpace, _point: &DesignPoint) -> f64 {
                unreachable!("infeasible designs are never evaluated")
            }
            fn is_feasible(&self, _space: &DesignSpace, _point: &DesignPoint) -> bool {
                false
            }
        }
        let space = DesignSpace::boom();
        let mut rng = StdRng::seed_from_u64(1);
        let err = sample_feasible(&space, &Impossible, 3, &mut rng).unwrap_err();
        assert_eq!(err, SampleFeasibleError { requested: 3, found: 0, attempts: 30_000 });
        let msg = err.to_string();
        assert!(msg.contains("0 of 3") && msg.contains("30000 random draws"), "{msg}");
    }

    #[test]
    fn eval_log_enforces_budget_and_dedup() {
        let space = DesignSpace::boom();
        let mut obj = SphereObjective::default();
        let mut log = EvalLog::new(3);
        let p = space.smallest();
        assert!(log.evaluate(&space, &mut obj, &p).is_some());
        assert!(log.evaluate(&space, &mut obj, &p).is_none(), "duplicate rejected");
        assert_eq!(obj.evals, 1);
        let q = p.increased(&space, dse_space::Param::IntFu).unwrap();
        let r = q.increased(&space, dse_space::Param::IntFu).unwrap();
        assert!(log.evaluate(&space, &mut obj, &q).is_some());
        assert!(log.evaluate(&space, &mut obj, &r).is_some());
        assert_eq!(log.remaining(), 0);
        let s = r.increased(&space, dse_space::Param::IntFu).unwrap();
        assert!(log.evaluate(&space, &mut obj, &s).is_none(), "budget exhausted");
    }

    #[test]
    fn into_result_prefers_feasible_designs() {
        let space = DesignSpace::boom();
        let mut obj = SphereObjective::default();
        let mut log = EvalLog::new(2);
        // The largest design is infeasible but has the lowest objective.
        log.evaluate(&space, &mut obj, &space.largest());
        log.evaluate(&space, &mut obj, &space.smallest());
        let result = log.into_result();
        assert_eq!(result.best_point, space.smallest());
    }
}
