//! The common optimizer/objective interface and evaluation bookkeeping.

use std::collections::HashSet;

use dse_space::{DesignPoint, DesignSpace};
use rand::rngs::StdRng;

/// The expensive black-box objective a baseline optimizes: HF CPI under
/// an area-feasibility predicate.
pub trait Objective {
    /// Runs the high-fidelity evaluation (counts against the budget).
    fn evaluate(&mut self, space: &DesignSpace, point: &DesignPoint) -> f64;

    /// Cheap feasibility check (the area model).
    fn is_feasible(&self, space: &DesignSpace, point: &DesignPoint) -> bool;
}

/// Outcome of one optimization run.
#[derive(Debug, Clone)]
pub struct OptimizationResult {
    /// Best *feasible* evaluated design (overall best if nothing
    /// feasible was evaluated).
    pub best_point: DesignPoint,
    /// Its objective value.
    pub best_value: f64,
    /// Every evaluation in order `(design, value)`.
    pub history: Vec<(DesignPoint, f64)>,
}

/// A budgeted black-box optimizer (one of the Fig. 5 baselines).
pub trait Optimizer {
    /// Display name used in the experiment tables.
    fn name(&self) -> &'static str;

    /// Runs the optimizer for exactly `budget` objective evaluations.
    fn optimize(
        &mut self,
        space: &DesignSpace,
        objective: &mut dyn Objective,
        budget: usize,
        seed: u64,
    ) -> OptimizationResult;
}

/// Draws `n` distinct feasible design points by rejection sampling.
///
/// # Panics
///
/// Panics if feasible points are so rare that 10 000·n rejections fail —
/// with the Table 2 area limits feasibility is plentiful.
pub fn sample_feasible(
    space: &DesignSpace,
    objective: &dyn Objective,
    n: usize,
    rng: &mut StdRng,
) -> Vec<DesignPoint> {
    let mut out = Vec::with_capacity(n);
    let mut seen = HashSet::new();
    let mut attempts = 0usize;
    while out.len() < n {
        attempts += 1;
        assert!(attempts < 10_000 * n.max(1), "feasible designs too rare to sample");
        let p = space.random_point(rng);
        if !objective.is_feasible(space, &p) {
            continue;
        }
        if seen.insert(space.encode(&p)) {
            out.push(p);
        }
    }
    out
}

/// Shared evaluation bookkeeping: budget accounting, dedup, and
/// best-feasible tracking.
#[derive(Debug)]
pub(crate) struct EvalLog {
    pub history: Vec<(DesignPoint, f64)>,
    pub feasible: Vec<bool>,
    seen: HashSet<u64>,
    budget: usize,
}

impl EvalLog {
    pub fn new(budget: usize) -> Self {
        Self { history: Vec::new(), feasible: Vec::new(), seen: HashSet::new(), budget }
    }

    pub fn remaining(&self) -> usize {
        self.budget - self.history.len()
    }

    pub fn contains(&self, space: &DesignSpace, point: &DesignPoint) -> bool {
        self.seen.contains(&space.encode(point))
    }

    /// Evaluates `point` if budget remains and it is unseen; returns the
    /// value when an evaluation happened.
    pub fn evaluate(
        &mut self,
        space: &DesignSpace,
        objective: &mut dyn Objective,
        point: &DesignPoint,
    ) -> Option<f64> {
        if self.remaining() == 0 || !self.seen.insert(space.encode(point)) {
            return None;
        }
        let value = objective.evaluate(space, point);
        self.history.push((point.clone(), value));
        self.feasible.push(objective.is_feasible(space, point));
        Some(value)
    }

    /// Training data for surrogates: normalized features and values.
    pub fn training_data(&self, space: &DesignSpace) -> (Vec<Vec<f64>>, Vec<f64>) {
        let x = self.history.iter().map(|(p, _)| p.feature_vector(space)).collect();
        let y = self.history.iter().map(|(_, v)| *v).collect();
        (x, y)
    }

    /// Best feasible value so far (infinity if none).
    pub fn best_feasible_value(&self) -> f64 {
        self.history
            .iter()
            .zip(&self.feasible)
            .filter(|(_, &f)| f)
            .map(|((_, v), _)| *v)
            .fold(f64::INFINITY, f64::min)
    }

    pub fn into_result(self) -> OptimizationResult {
        assert!(!self.history.is_empty(), "optimizer made no evaluations");
        let best = self
            .history
            .iter()
            .zip(&self.feasible)
            .filter(|(_, &f)| f)
            .map(|(h, _)| h)
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .or_else(|| self.history.iter().min_by(|a, b| a.1.total_cmp(&b.1)))
            .expect("non-empty history");
        OptimizationResult {
            best_point: best.0.clone(),
            best_value: best.1,
            history: self.history.clone(),
        }
    }
}

/// Draws `n` random feasible candidates for acquisition ranking,
/// excluding already-evaluated designs.
pub(crate) fn candidate_pool(
    space: &DesignSpace,
    objective: &dyn Objective,
    log: &EvalLog,
    n: usize,
    rng: &mut StdRng,
) -> Vec<DesignPoint> {
    let mut out = Vec::with_capacity(n);
    let mut attempts = 0;
    while out.len() < n && attempts < 50 * n {
        attempts += 1;
        let p = space.random_point(rng);
        if objective.is_feasible(space, &p) && !log.contains(space, &p) {
            out.push(p);
        }
    }
    out
}

/// Draws one uniform feasible unseen point (fallback exploration).
pub(crate) fn random_unseen(
    space: &DesignSpace,
    objective: &dyn Objective,
    log: &EvalLog,
    rng: &mut StdRng,
) -> DesignPoint {
    loop {
        let p = space.random_point(rng);
        if objective.is_feasible(space, &p) && !log.contains(space, &p) {
            return p;
        }
    }
}

#[cfg(test)]
pub(crate) mod testutil {
    use super::*;

    /// A synthetic smooth objective with a known optimum at the largest
    /// feasible design.
    #[derive(Debug, Default)]
    pub struct SphereObjective {
        pub evals: usize,
    }

    impl Objective for SphereObjective {
        fn evaluate(&mut self, space: &DesignSpace, point: &DesignPoint) -> f64 {
            self.evals += 1;
            let f = point.feature_vector(space);
            // Minimum at all-ones, i.e. the largest design; feasibility
            // caps the reachable region.
            3.0 - f.iter().sum::<f64>() / f.len() as f64
                + 0.3 * f.iter().map(|v| (v - 0.7) * (v - 0.7)).sum::<f64>()
        }

        fn is_feasible(&self, _space: &DesignSpace, point: &DesignPoint) -> bool {
            point.indices().iter().sum::<usize>() <= 20
        }
    }
}

#[cfg(test)]
mod tests {
    use super::testutil::SphereObjective;
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn sample_feasible_respects_the_predicate() {
        let space = DesignSpace::boom();
        let obj = SphereObjective::default();
        let mut rng = StdRng::seed_from_u64(0);
        for p in sample_feasible(&space, &obj, 20, &mut rng) {
            assert!(obj.is_feasible(&space, &p));
        }
    }

    #[test]
    fn eval_log_enforces_budget_and_dedup() {
        let space = DesignSpace::boom();
        let mut obj = SphereObjective::default();
        let mut log = EvalLog::new(3);
        let p = space.smallest();
        assert!(log.evaluate(&space, &mut obj, &p).is_some());
        assert!(log.evaluate(&space, &mut obj, &p).is_none(), "duplicate rejected");
        assert_eq!(obj.evals, 1);
        let q = p.increased(&space, dse_space::Param::IntFu).unwrap();
        let r = q.increased(&space, dse_space::Param::IntFu).unwrap();
        assert!(log.evaluate(&space, &mut obj, &q).is_some());
        assert!(log.evaluate(&space, &mut obj, &r).is_some());
        assert_eq!(log.remaining(), 0);
        let s = r.increased(&space, dse_space::Param::IntFu).unwrap();
        assert!(log.evaluate(&space, &mut obj, &s).is_none(), "budget exhausted");
    }

    #[test]
    fn into_result_prefers_feasible_designs() {
        let space = DesignSpace::boom();
        let mut obj = SphereObjective::default();
        let mut log = EvalLog::new(2);
        // The largest design is infeasible but has the lowest objective.
        log.evaluate(&space, &mut obj, &space.largest());
        log.evaluate(&space, &mut obj, &space.smallest());
        let result = log.into_result();
        assert_eq!(result.best_point, space.smallest());
    }
}
