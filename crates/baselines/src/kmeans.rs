//! Lloyd's k-means over feature vectors — the diversity-initialization
//! device behind BOOM-Explorer's MicroAL.
//!
//! BOOM-Explorer initializes its GP with a *diversity-maximizing* set of
//! designs (its "MicroAL" uses domain-informed clustering). We cluster
//! the candidate pool with k-means and seed the surrogate with the
//! member nearest each centroid, which spreads the initial simulations
//! across the feasible region's modes rather than wherever max–min
//! greedy happens to walk.

use dse_linalg::vector;
use rand::rngs::StdRng;
use rand::Rng;

/// Result of one k-means run.
#[derive(Debug, Clone, PartialEq)]
pub struct Clustering {
    /// Final centroids (k × dim).
    pub centroids: Vec<Vec<f64>>,
    /// Cluster assignment per input point.
    pub assignment: Vec<usize>,
}

impl Clustering {
    /// Index of the input point nearest to centroid `c`.
    ///
    /// # Panics
    ///
    /// Panics if `c` is out of range or `points` is empty.
    pub fn nearest_member(&self, points: &[Vec<f64>], c: usize) -> usize {
        assert!(c < self.centroids.len(), "cluster index out of range");
        points
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| {
                vector::squared_distance(a, &self.centroids[c])
                    .total_cmp(&vector::squared_distance(b, &self.centroids[c]))
            })
            .map(|(i, _)| i)
            .expect("points non-empty")
    }

    /// Sum of squared distances of points to their assigned centroids.
    pub fn inertia(&self, points: &[Vec<f64>]) -> f64 {
        points
            .iter()
            .zip(&self.assignment)
            .map(|(p, &c)| vector::squared_distance(p, &self.centroids[c]))
            .sum()
    }
}

/// Runs Lloyd's algorithm with k-means++-style seeding for `iters`
/// rounds (converges much earlier on the small pools used here).
///
/// `k` is clamped to the number of points.
///
/// # Panics
///
/// Panics on an empty input or `k == 0`.
pub fn kmeans(points: &[Vec<f64>], k: usize, iters: usize, rng: &mut StdRng) -> Clustering {
    assert!(!points.is_empty(), "cannot cluster no points");
    assert!(k > 0, "need at least one cluster");
    let k = k.min(points.len());

    // k-means++ seeding: first centroid uniform, the rest proportional
    // to squared distance from the nearest chosen centroid.
    let mut centroids: Vec<Vec<f64>> = vec![points[rng.gen_range(0..points.len())].clone()];
    while centroids.len() < k {
        let d2: Vec<f64> = points
            .iter()
            .map(|p| {
                centroids
                    .iter()
                    .map(|c| vector::squared_distance(p, c))
                    .fold(f64::INFINITY, f64::min)
            })
            .collect();
        let total: f64 = d2.iter().sum();
        let next = if total <= 1e-30 {
            rng.gen_range(0..points.len()) // all points coincide
        } else {
            let mut u = rng.gen_range(0.0..total);
            let mut pick = points.len() - 1;
            for (i, &d) in d2.iter().enumerate() {
                if u < d {
                    pick = i;
                    break;
                }
                u -= d;
            }
            pick
        };
        centroids.push(points[next].clone());
    }

    let mut assignment = vec![0usize; points.len()];
    for _ in 0..iters {
        // Assign.
        let mut changed = false;
        for (i, p) in points.iter().enumerate() {
            let best = (0..k)
                .min_by(|&a, &b| {
                    vector::squared_distance(p, &centroids[a])
                        .total_cmp(&vector::squared_distance(p, &centroids[b]))
                })
                .expect("k > 0");
            if assignment[i] != best {
                assignment[i] = best;
                changed = true;
            }
        }
        // Update.
        let dim = points[0].len();
        for (c, centroid) in centroids.iter_mut().enumerate() {
            let members: Vec<&Vec<f64>> =
                points.iter().zip(&assignment).filter(|(_, &a)| a == c).map(|(p, _)| p).collect();
            if members.is_empty() {
                continue; // keep the old centroid for empty clusters
            }
            *centroid = (0..dim)
                .map(|d| members.iter().map(|m| m[d]).sum::<f64>() / members.len() as f64)
                .collect();
        }
        if !changed {
            break;
        }
    }
    Clustering { centroids, assignment }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn two_blobs() -> Vec<Vec<f64>> {
        let mut pts = Vec::new();
        for i in 0..20 {
            let j = (i % 5) as f64 * 0.01;
            pts.push(vec![0.0 + j, 0.0 + j]);
            pts.push(vec![5.0 + j, 5.0 + j]);
        }
        pts
    }

    #[test]
    fn separates_two_obvious_blobs() {
        let pts = two_blobs();
        let mut rng = StdRng::seed_from_u64(1);
        let c = kmeans(&pts, 2, 50, &mut rng);
        // Points of the same blob share a cluster.
        for i in (0..pts.len()).step_by(2) {
            assert_eq!(c.assignment[i], c.assignment[0], "blob A split");
        }
        for i in (1..pts.len()).step_by(2) {
            assert_eq!(c.assignment[i], c.assignment[1], "blob B split");
        }
        assert_ne!(c.assignment[0], c.assignment[1]);
        assert!(c.inertia(&pts) < 0.1, "tight blobs → tiny inertia");
    }

    #[test]
    fn nearest_member_is_an_input_point() {
        let pts = two_blobs();
        let mut rng = StdRng::seed_from_u64(2);
        let c = kmeans(&pts, 3, 30, &mut rng);
        for cluster in 0..c.centroids.len() {
            let m = c.nearest_member(&pts, cluster);
            assert!(m < pts.len());
        }
    }

    #[test]
    fn k_clamped_to_point_count() {
        let pts = vec![vec![1.0], vec![2.0]];
        let mut rng = StdRng::seed_from_u64(3);
        let c = kmeans(&pts, 10, 10, &mut rng);
        assert_eq!(c.centroids.len(), 2);
    }

    #[test]
    fn identical_points_do_not_panic() {
        let pts = vec![vec![1.0, 1.0]; 8];
        let mut rng = StdRng::seed_from_u64(4);
        let c = kmeans(&pts, 3, 10, &mut rng);
        assert_eq!(c.assignment.len(), 8);
        assert!(c.inertia(&pts) < 1e-12);
    }

    #[test]
    fn more_clusters_never_increase_inertia() {
        let pts = two_blobs();
        let mut inertias = Vec::new();
        for k in [1usize, 2, 4] {
            // Best of a few seeds to dodge unlucky initializations.
            let best = (0..5)
                .map(|s| {
                    let mut rng = StdRng::seed_from_u64(s);
                    kmeans(&pts, k, 50, &mut rng).inertia(&pts)
                })
                .fold(f64::INFINITY, f64::min);
            inertias.push(best);
        }
        assert!(inertias[1] <= inertias[0] + 1e-9);
        assert!(inertias[2] <= inertias[1] + 1e-9);
    }
}
