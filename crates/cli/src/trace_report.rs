//! Offline summarization of a `--trace-out` JSONL trace.
//!
//! `archdse trace-report` reads the per-run trace the observability
//! layer writes and answers the two questions a tuning session starts
//! with: *where did the wall time go* (per-phase span totals, hottest
//! individual spans) and *what did the budget buy* (per-fidelity ledger
//! deltas summed back together). Because every ledger mutation flows
//! through `CostLedger::evaluate_batch`, which emits one `ledger_batch`
//! delta event per call, the summed deltas must reproduce the run's
//! final `LedgerSummary` exactly — the report cross-checks that against
//! the `run_summary` event and fails loudly on any drift.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use serde_json::Value;

/// Totals accumulated from `ledger_batch` events for one fidelity.
#[derive(Debug, Default, Clone, Copy, PartialEq)]
pub struct FidelityTotals {
    /// `ledger_batch` events seen.
    pub batches: u64,
    /// Design points proposed across those batches.
    pub proposals: u64,
    /// Charged (fresh) evaluations.
    pub evaluations: u64,
    /// Run-memo replays.
    pub cache_hits: u64,
    /// Run-memo misses (charged or denied).
    pub cache_misses: u64,
    /// Proposals denied for lack of budget.
    pub denied: u64,
    /// Model time charged, in trace-simulation units.
    pub model_time_units: f64,
    /// Wall time spent inside the evaluator, microseconds.
    pub eval_wall_us: u64,
}

/// The final ledger state as recorded by the `run_summary` event.
#[derive(Debug, Default, Clone, Copy, PartialEq)]
pub struct RunLedger {
    /// `(evaluations, cache_hits, cache_misses, denied, model_time_units)`
    /// for the LF section.
    pub lf: (u64, u64, u64, u64, f64),
    /// The same five counters for the learned mid tier (all zero in a
    /// two-tier trace, which predates the field and reconciles as such).
    pub learned: (u64, u64, u64, u64, f64),
    /// The same five counters for the HF section.
    pub hf: (u64, u64, u64, u64, f64),
}

/// Everything `trace-report` extracts from one trace file.
#[derive(Debug, Default)]
pub struct TraceSummary {
    /// Non-empty lines read.
    pub lines: u64,
    /// `event` records seen.
    pub events: u64,
    /// Completed spans (`span_end` records).
    pub spans: u64,
    /// Span name → `(count, total duration in µs)`.
    pub phase_wall_us: BTreeMap<String, (u64, u64)>,
    /// Fidelity label → summed `ledger_batch` deltas.
    pub per_fidelity: BTreeMap<String, FidelityTotals>,
    /// `episode` events per phase label.
    pub episodes: BTreeMap<String, u64>,
    /// The slowest individual spans, `(name, duration µs)`, descending.
    pub hottest: Vec<(String, u64)>,
    /// The `run_summary` event, when the trace carries one.
    pub run_summary: Option<RunLedger>,
}

fn get_u64(v: &Value, key: &str) -> u64 {
    v.get(key).and_then(Value::as_u64).unwrap_or(0)
}

fn get_f64(v: &Value, key: &str) -> f64 {
    v.get(key).and_then(Value::as_f64).unwrap_or(0.0)
}

/// Parses and aggregates a JSONL trace, keeping the `top` slowest spans.
///
/// # Errors
///
/// Returns a message naming the first malformed line.
pub fn summarize(text: &str, top: usize) -> Result<TraceSummary, String> {
    let mut summary = TraceSummary::default();
    let mut all_spans: Vec<(String, u64)> = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let value: Value =
            serde_json::from_str(line).map_err(|e| format!("line {}: {e}", idx + 1))?;
        summary.lines += 1;
        let kind = value
            .get("type")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("line {}: missing `type`", idx + 1))?
            .to_string();
        match kind.as_str() {
            "span_begin" => {}
            "span_end" => {
                summary.spans += 1;
                let name = value
                    .get("name")
                    .and_then(Value::as_str)
                    .ok_or_else(|| format!("line {}: span_end without `name`", idx + 1))?
                    .to_string();
                let dur = get_u64(&value, "dur_us");
                let slot = summary.phase_wall_us.entry(name.clone()).or_insert((0, 0));
                slot.0 += 1;
                slot.1 += dur;
                all_spans.push((name, dur));
            }
            "event" => {
                summary.events += 1;
                let name = value.get("name").and_then(Value::as_str).unwrap_or("");
                match name {
                    "ledger_batch" => {
                        let fidelity = value
                            .get("fidelity")
                            .and_then(Value::as_str)
                            .unwrap_or("unknown")
                            .to_string();
                        let t = summary.per_fidelity.entry(fidelity).or_default();
                        t.batches += 1;
                        t.proposals += get_u64(&value, "proposals");
                        t.evaluations += get_u64(&value, "evaluations");
                        t.cache_hits += get_u64(&value, "cache_hits");
                        t.cache_misses += get_u64(&value, "cache_misses");
                        t.denied += get_u64(&value, "denied");
                        t.model_time_units += get_f64(&value, "model_time_units");
                        t.eval_wall_us += get_u64(&value, "dur_us");
                    }
                    "episode" => {
                        let phase =
                            value.get("phase").and_then(Value::as_str).unwrap_or("?").to_string();
                        *summary.episodes.entry(phase).or_insert(0) += 1;
                    }
                    "run_summary" => {
                        summary.run_summary = Some(RunLedger {
                            lf: (
                                get_u64(&value, "lf_evaluations"),
                                get_u64(&value, "lf_cache_hits"),
                                get_u64(&value, "lf_cache_misses"),
                                get_u64(&value, "lf_denied"),
                                get_f64(&value, "lf_model_time_units"),
                            ),
                            learned: (
                                get_u64(&value, "learned_evaluations"),
                                get_u64(&value, "learned_cache_hits"),
                                get_u64(&value, "learned_cache_misses"),
                                get_u64(&value, "learned_denied"),
                                get_f64(&value, "learned_model_time_units"),
                            ),
                            hf: (
                                get_u64(&value, "hf_evaluations"),
                                get_u64(&value, "hf_cache_hits"),
                                get_u64(&value, "hf_cache_misses"),
                                get_u64(&value, "hf_denied"),
                                get_f64(&value, "hf_model_time_units"),
                            ),
                        });
                    }
                    _ => {}
                }
            }
            other => return Err(format!("line {}: unknown record type {other:?}", idx + 1)),
        }
    }
    all_spans.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    all_spans.truncate(top);
    summary.hottest = all_spans;
    Ok(summary)
}

/// Checks the summed `ledger_batch` deltas against the `run_summary`
/// event.
///
/// # Errors
///
/// One message per counter that disagrees, or a single message when the
/// trace has no `run_summary` to check against.
pub fn reconcile(summary: &TraceSummary) -> Result<(), Vec<String>> {
    let Some(run) = &summary.run_summary else {
        return Err(vec!["trace carries no run_summary event to reconcile against".into()]);
    };
    let mut errors = Vec::new();
    for (label, expected) in [("lf", run.lf), ("learned", run.learned), ("hf", run.hf)] {
        let got = summary.per_fidelity.get(label).copied().unwrap_or_default();
        let pairs = [
            ("evaluations", got.evaluations, expected.0),
            ("cache_hits", got.cache_hits, expected.1),
            ("cache_misses", got.cache_misses, expected.2),
            ("denied", got.denied, expected.3),
        ];
        for (field, got, want) in pairs {
            if got != want {
                errors.push(format!("{label}.{field}: deltas sum to {got}, ledger says {want}"));
            }
        }
        if (got.model_time_units - expected.4).abs() > 1e-6 {
            errors.push(format!(
                "{label}.model_time_units: deltas sum to {}, ledger says {}",
                got.model_time_units, expected.4
            ));
        }
    }
    if errors.is_empty() {
        Ok(())
    } else {
        Err(errors)
    }
}

fn ms(us: u64) -> f64 {
    us as f64 / 1_000.0
}

/// Renders the human-readable report the CLI prints.
pub fn render(summary: &TraceSummary) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "trace report: {} lines ({} spans, {} events)",
        summary.lines, summary.spans, summary.events
    );
    if !summary.phase_wall_us.is_empty() {
        let _ = writeln!(out, "\nper-phase wall time:");
        for (name, (count, total)) in &summary.phase_wall_us {
            let _ = writeln!(out, "  {name:<14} {:>10.3} ms  ({count} span(s))", ms(*total));
        }
    }
    if !summary.per_fidelity.is_empty() {
        let _ = writeln!(out, "\nper-fidelity budget totals (summed ledger_batch deltas):");
        for (label, t) in &summary.per_fidelity {
            let _ = writeln!(
                out,
                "  {label}: {} batches, {} proposals -> {} evaluations, {} hits, {} misses, \
                 {} denied, {:.3} model time units, {:.3} ms eval wall",
                t.batches,
                t.proposals,
                t.evaluations,
                t.cache_hits,
                t.cache_misses,
                t.denied,
                t.model_time_units,
                ms(t.eval_wall_us)
            );
        }
    }
    if !summary.episodes.is_empty() {
        let rendered: Vec<String> =
            summary.episodes.iter().map(|(phase, n)| format!("{phase} {n}")).collect();
        let _ = writeln!(out, "\nepisodes: {}", rendered.join(", "));
    }
    match reconcile(summary) {
        Ok(()) => {
            let _ = writeln!(out, "\nreconciliation vs run_summary: exact match");
        }
        Err(errors) => {
            let _ = writeln!(out, "\nreconciliation vs run_summary: FAILED");
            for error in &errors {
                let _ = writeln!(out, "  {error}");
            }
        }
    }
    if !summary.hottest.is_empty() {
        let _ = writeln!(out, "\nhottest spans:");
        for (rank, (name, dur)) in summary.hottest.iter().enumerate() {
            let _ = writeln!(out, "  {:>2}. {name:<14} {:>10.3} ms", rank + 1, ms(*dur));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const TRACE: &str = r#"{"type":"span_begin","id":1,"parent":null,"name":"mfrl_run","ts_us":0}
{"type":"span_begin","id":2,"parent":1,"name":"lf_phase","ts_us":1}
{"type":"event","name":"episode","span":2,"ts_us":2,"phase":"lf","episode":0,"cpi":1.5}
{"type":"event","name":"ledger_batch","span":2,"ts_us":3,"fidelity":"lf","proposals":4,"evaluations":3,"cache_hits":1,"cache_misses":3,"denied":0,"model_time_units":3.0,"dur_us":120}
{"type":"span_end","id":2,"name":"lf_phase","ts_us":10,"dur_us":9}
{"type":"event","name":"ledger_batch","span":1,"ts_us":11,"fidelity":"learned","proposals":2,"evaluations":1,"cache_hits":1,"cache_misses":1,"denied":0,"model_time_units":0.01,"dur_us":40}
{"type":"event","name":"ledger_batch","span":1,"ts_us":12,"fidelity":"hf","proposals":2,"evaluations":2,"cache_hits":0,"cache_misses":2,"denied":0,"model_time_units":2.0,"dur_us":300}
{"type":"span_end","id":1,"name":"mfrl_run","ts_us":20,"dur_us":20}
{"type":"event","name":"run_summary","span":null,"ts_us":21,"lf_evaluations":3,"lf_cache_hits":1,"lf_cache_misses":3,"lf_denied":0,"lf_model_time_units":3.0,"learned_evaluations":1,"learned_cache_hits":1,"learned_cache_misses":1,"learned_denied":0,"learned_model_time_units":0.01,"budget_floor":"learned","hf_evaluations":2,"hf_cache_hits":0,"hf_cache_misses":2,"hf_denied":0,"hf_model_time_units":2.0}
"#;

    #[test]
    fn summarize_aggregates_spans_and_deltas() {
        let s = summarize(TRACE, 5).unwrap();
        assert_eq!((s.lines, s.spans, s.events), (9, 2, 5));
        assert_eq!(s.phase_wall_us["lf_phase"], (1, 9));
        assert_eq!(s.per_fidelity["lf"].evaluations, 3);
        assert_eq!(s.per_fidelity["learned"].cache_hits, 1);
        assert_eq!(s.per_fidelity["hf"].eval_wall_us, 300);
        assert_eq!(s.episodes["lf"], 1);
        assert_eq!(s.hottest[0], ("mfrl_run".to_string(), 20));
        assert!(reconcile(&s).is_ok());
    }

    #[test]
    fn reconcile_catches_drift() {
        let tampered = TRACE.replace(r#""lf_evaluations":3"#, r#""lf_evaluations":4"#);
        let s = summarize(&tampered, 5).unwrap();
        let errors = reconcile(&s).unwrap_err();
        assert_eq!(errors.len(), 1);
        assert!(errors[0].contains("lf.evaluations"), "{errors:?}");
    }

    #[test]
    fn two_tier_trace_without_learned_fields_still_reconciles() {
        // Traces written before the learned tier existed carry no
        // learned_* fields and no "learned" ledger_batch events; both
        // sides default to zero and must agree.
        let trace = r#"{"type":"event","name":"ledger_batch","span":null,"ts_us":1,"fidelity":"hf","proposals":1,"evaluations":1,"cache_hits":0,"cache_misses":1,"denied":0,"model_time_units":1.0,"dur_us":10}
{"type":"event","name":"run_summary","span":null,"ts_us":2,"lf_evaluations":0,"lf_cache_hits":0,"lf_cache_misses":0,"lf_denied":0,"lf_model_time_units":0.0,"hf_evaluations":1,"hf_cache_hits":0,"hf_cache_misses":1,"hf_denied":0,"hf_model_time_units":1.0}
"#;
        let s = summarize(trace, 5).unwrap();
        assert_eq!(s.run_summary.unwrap().learned, (0, 0, 0, 0, 0.0));
        assert!(reconcile(&s).is_ok());
    }

    #[test]
    fn missing_run_summary_is_an_error() {
        let truncated: String = TRACE.lines().take(7).map(|l| format!("{l}\n")).collect();
        let s = summarize(&truncated, 5).unwrap();
        assert!(reconcile(&s).is_err());
    }

    #[test]
    fn malformed_lines_are_named() {
        let err = summarize("{\"type\":\"span_end\"}\nnot json\n", 3).unwrap_err();
        assert!(err.contains("line 1") || err.contains("line 2"), "{err}");
    }

    #[test]
    fn render_mentions_every_section() {
        let s = summarize(TRACE, 5).unwrap();
        let text = render(&s);
        for needle in
            ["per-phase wall time", "budget totals", "episodes:", "exact match", "hottest spans"]
        {
            assert!(text.contains(needle), "report lacks {needle:?}:\n{text}");
        }
    }
}
