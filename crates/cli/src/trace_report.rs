//! Offline summarization of a `--trace-out` JSONL trace.
//!
//! `archdse trace-report` reads the per-run trace the observability
//! layer writes and answers the two questions a tuning session starts
//! with: *where did the wall time go* (per-phase span totals, hottest
//! individual spans) and *what did the budget buy* (per-fidelity ledger
//! deltas summed back together). Because every ledger mutation flows
//! through `CostLedger::evaluate_batch`, which emits one `ledger_batch`
//! delta event per call, the summed deltas must reproduce the run's
//! final `LedgerSummary` exactly — the report cross-checks that against
//! the `run_summary` event and fails loudly on any drift.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use serde_json::Value;

/// Totals accumulated from `ledger_batch` events for one fidelity.
#[derive(Debug, Default, Clone, Copy, PartialEq)]
pub struct FidelityTotals {
    /// `ledger_batch` events seen.
    pub batches: u64,
    /// Design points proposed across those batches.
    pub proposals: u64,
    /// Charged (fresh) evaluations.
    pub evaluations: u64,
    /// Run-memo replays.
    pub cache_hits: u64,
    /// Run-memo misses (charged or denied).
    pub cache_misses: u64,
    /// Proposals denied for lack of budget.
    pub denied: u64,
    /// Model time charged, in trace-simulation units.
    pub model_time_units: f64,
    /// Wall time spent inside the evaluator, microseconds.
    pub eval_wall_us: u64,
}

/// The final ledger state as recorded by the `run_summary` event.
#[derive(Debug, Default, Clone, Copy, PartialEq)]
pub struct RunLedger {
    /// `(evaluations, cache_hits, cache_misses, denied, model_time_units)`
    /// for the LF section.
    pub lf: (u64, u64, u64, u64, f64),
    /// The same five counters for the learned mid tier (all zero in a
    /// two-tier trace, which predates the field and reconciles as such).
    pub learned: (u64, u64, u64, u64, f64),
    /// The same five counters for the HF section.
    pub hf: (u64, u64, u64, u64, f64),
}

/// Everything `trace-report` extracts from one trace file.
#[derive(Debug, Default)]
pub struct TraceSummary {
    /// Non-empty lines read.
    pub lines: u64,
    /// `event` records seen.
    pub events: u64,
    /// Completed spans (`span_end` records).
    pub spans: u64,
    /// Span name → `(count, total duration in µs)`.
    pub phase_wall_us: BTreeMap<String, (u64, u64)>,
    /// Fidelity label → summed `ledger_batch` deltas.
    pub per_fidelity: BTreeMap<String, FidelityTotals>,
    /// `episode` events per phase label.
    pub episodes: BTreeMap<String, u64>,
    /// The slowest individual spans, `(name, duration µs)`, descending.
    pub hottest: Vec<(String, u64)>,
    /// `request` records seen (per-request timelines; summarized in
    /// depth by `--requests` mode).
    pub requests: u64,
    /// The `run_summary` event, when the trace carries one.
    pub run_summary: Option<RunLedger>,
}

fn get_u64(v: &Value, key: &str) -> u64 {
    v.get(key).and_then(Value::as_u64).unwrap_or(0)
}

fn get_f64(v: &Value, key: &str) -> f64 {
    v.get(key).and_then(Value::as_f64).unwrap_or(0.0)
}

/// Parses and aggregates a JSONL trace, keeping the `top` slowest spans.
///
/// # Errors
///
/// Returns a message naming the first malformed line.
pub fn summarize(text: &str, top: usize) -> Result<TraceSummary, String> {
    let mut summary = TraceSummary::default();
    let mut all_spans: Vec<(String, u64)> = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let value: Value =
            serde_json::from_str(line).map_err(|e| format!("line {}: {e}", idx + 1))?;
        summary.lines += 1;
        let kind = value
            .get("type")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("line {}: missing `type`", idx + 1))?
            .to_string();
        match kind.as_str() {
            "span_begin" => {}
            "request" => summary.requests += 1,
            "span_end" => {
                summary.spans += 1;
                let name = value
                    .get("name")
                    .and_then(Value::as_str)
                    .ok_or_else(|| format!("line {}: span_end without `name`", idx + 1))?
                    .to_string();
                let dur = get_u64(&value, "dur_us");
                let slot = summary.phase_wall_us.entry(name.clone()).or_insert((0, 0));
                slot.0 += 1;
                slot.1 += dur;
                all_spans.push((name, dur));
            }
            "event" => {
                summary.events += 1;
                let name = value.get("name").and_then(Value::as_str).unwrap_or("");
                match name {
                    "ledger_batch" => {
                        let fidelity = value
                            .get("fidelity")
                            .and_then(Value::as_str)
                            .unwrap_or("unknown")
                            .to_string();
                        let t = summary.per_fidelity.entry(fidelity).or_default();
                        t.batches += 1;
                        t.proposals += get_u64(&value, "proposals");
                        t.evaluations += get_u64(&value, "evaluations");
                        t.cache_hits += get_u64(&value, "cache_hits");
                        t.cache_misses += get_u64(&value, "cache_misses");
                        t.denied += get_u64(&value, "denied");
                        t.model_time_units += get_f64(&value, "model_time_units");
                        t.eval_wall_us += get_u64(&value, "dur_us");
                    }
                    "episode" => {
                        let phase =
                            value.get("phase").and_then(Value::as_str).unwrap_or("?").to_string();
                        *summary.episodes.entry(phase).or_insert(0) += 1;
                    }
                    "run_summary" => {
                        summary.run_summary = Some(RunLedger {
                            lf: (
                                get_u64(&value, "lf_evaluations"),
                                get_u64(&value, "lf_cache_hits"),
                                get_u64(&value, "lf_cache_misses"),
                                get_u64(&value, "lf_denied"),
                                get_f64(&value, "lf_model_time_units"),
                            ),
                            learned: (
                                get_u64(&value, "learned_evaluations"),
                                get_u64(&value, "learned_cache_hits"),
                                get_u64(&value, "learned_cache_misses"),
                                get_u64(&value, "learned_denied"),
                                get_f64(&value, "learned_model_time_units"),
                            ),
                            hf: (
                                get_u64(&value, "hf_evaluations"),
                                get_u64(&value, "hf_cache_hits"),
                                get_u64(&value, "hf_cache_misses"),
                                get_u64(&value, "hf_denied"),
                                get_f64(&value, "hf_model_time_units"),
                            ),
                        });
                    }
                    _ => {}
                }
            }
            other => return Err(format!("line {}: unknown record type {other:?}", idx + 1)),
        }
    }
    all_spans.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    all_spans.truncate(top);
    summary.hottest = all_spans;
    Ok(summary)
}

/// Checks the summed `ledger_batch` deltas against the `run_summary`
/// event.
///
/// # Errors
///
/// One message per counter that disagrees, or a single message when the
/// trace has no `run_summary` to check against.
pub fn reconcile(summary: &TraceSummary) -> Result<(), Vec<String>> {
    let Some(run) = &summary.run_summary else {
        return Err(vec!["trace carries no run_summary event to reconcile against".into()]);
    };
    let mut errors = Vec::new();
    for (label, expected) in [("lf", run.lf), ("learned", run.learned), ("hf", run.hf)] {
        let got = summary.per_fidelity.get(label).copied().unwrap_or_default();
        let pairs = [
            ("evaluations", got.evaluations, expected.0),
            ("cache_hits", got.cache_hits, expected.1),
            ("cache_misses", got.cache_misses, expected.2),
            ("denied", got.denied, expected.3),
        ];
        for (field, got, want) in pairs {
            if got != want {
                errors.push(format!("{label}.{field}: deltas sum to {got}, ledger says {want}"));
            }
        }
        if (got.model_time_units - expected.4).abs() > 1e-6 {
            errors.push(format!(
                "{label}.model_time_units: deltas sum to {}, ledger says {}",
                got.model_time_units, expected.4
            ));
        }
    }
    if errors.is_empty() {
        Ok(())
    } else {
        Err(errors)
    }
}

fn ms(us: u64) -> f64 {
    us as f64 / 1_000.0
}

/// Renders the human-readable report the CLI prints.
pub fn render(summary: &TraceSummary) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "trace report: {} lines ({} spans, {} events)",
        summary.lines, summary.spans, summary.events
    );
    if summary.requests > 0 {
        let _ = writeln!(
            out,
            "{} per-request timeline(s) present (summarize with --requests)",
            summary.requests
        );
    }
    if !summary.phase_wall_us.is_empty() {
        let _ = writeln!(out, "\nper-phase wall time:");
        for (name, (count, total)) in &summary.phase_wall_us {
            let _ = writeln!(out, "  {name:<14} {:>10.3} ms  ({count} span(s))", ms(*total));
        }
    }
    if !summary.per_fidelity.is_empty() {
        let _ = writeln!(out, "\nper-fidelity budget totals (summed ledger_batch deltas):");
        for (label, t) in &summary.per_fidelity {
            let _ = writeln!(
                out,
                "  {label}: {} batches, {} proposals -> {} evaluations, {} hits, {} misses, \
                 {} denied, {:.3} model time units, {:.3} ms eval wall",
                t.batches,
                t.proposals,
                t.evaluations,
                t.cache_hits,
                t.cache_misses,
                t.denied,
                t.model_time_units,
                ms(t.eval_wall_us)
            );
        }
    }
    if !summary.episodes.is_empty() {
        let rendered: Vec<String> =
            summary.episodes.iter().map(|(phase, n)| format!("{phase} {n}")).collect();
        let _ = writeln!(out, "\nepisodes: {}", rendered.join(", "));
    }
    match reconcile(summary) {
        Ok(()) => {
            let _ = writeln!(out, "\nreconciliation vs run_summary: exact match");
        }
        Err(errors) => {
            let _ = writeln!(out, "\nreconciliation vs run_summary: FAILED");
            for error in &errors {
                let _ = writeln!(out, "  {error}");
            }
        }
    }
    if !summary.hottest.is_empty() {
        let _ = writeln!(out, "\nhottest spans:");
        for (rank, (name, dur)) in summary.hottest.iter().enumerate() {
            let _ = writeln!(out, "  {:>2}. {name:<14} {:>10.3} ms", rank + 1, ms(*dur));
        }
    }
    out
}

// ---------------------------------------------------------------------------
// `--requests` mode: merged per-request timelines across shard traces.
// ---------------------------------------------------------------------------

/// Nearest-rank percentiles over µs samples.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct Percentiles {
    /// Samples the percentiles were taken over.
    pub samples: u64,
    /// Medians and tails, µs.
    pub p50: u64,
    /// 95th percentile, µs.
    pub p95: u64,
    /// 99th percentile, µs.
    pub p99: u64,
    /// The largest sample, µs.
    pub max: u64,
}

fn percentiles(mut samples: Vec<u64>) -> Percentiles {
    if samples.is_empty() {
        return Percentiles::default();
    }
    samples.sort_unstable();
    let rank = |p: f64| {
        let n = samples.len();
        let idx = ((p / 100.0 * n as f64).ceil() as usize).clamp(1, n) - 1;
        samples[idx]
    };
    Percentiles {
        samples: samples.len() as u64,
        p50: rank(50.0),
        p95: rank(95.0),
        p99: rank(99.0),
        max: *samples.last().expect("samples is non-empty"),
    }
}

/// One `{"type":"request"}` record pulled out of a trace file.
#[derive(Debug, Clone)]
pub struct RequestRow {
    /// The propagated trace id.
    pub trace: String,
    /// `"router"` or `"server"`.
    pub role: String,
    /// Low-cardinality endpoint label.
    pub endpoint: String,
    /// Answering HTTP status.
    pub status: u64,
    /// Shard id, when the record came from a shard worker process.
    pub shard: Option<u64>,
    /// Record timestamp (µs from that process's tracer epoch).
    pub ts_us: u64,
    /// End-to-end wall time, µs.
    pub dur_us: u64,
    /// Named phase durations (`("parse", µs)`, …), record order.
    pub phases: Vec<(String, u64)>,
}

impl RequestRow {
    /// Total µs attributed to named phases.
    pub fn phase_sum(&self) -> u64 {
        self.phases.iter().map(|(_, us)| *us).sum()
    }
}

/// Router endpoints that proxy to shard workers with the trace id
/// attached; a 200 from one of these must join at least one shard-side
/// request record. (`healthz` is answered locally; `metrics` and
/// `shutdown` fan out without trace context by design.)
const PROXIED_ENDPOINTS: [&str; 6] =
    ["evaluate", "explain", "explore", "workloads", "jobs", "debug"];

/// What `trace-report --requests` extracts from a merged trace set.
#[derive(Debug, Default)]
pub struct RequestsReport {
    /// Trace files merged.
    pub files: usize,
    /// All request rows, causally grouped: router span first, then its
    /// shard spans by timestamp; single-process rows in file order.
    pub rows: Vec<RequestRow>,
    /// Rows by role.
    pub router_rows: u64,
    /// Rows recorded shard/server-side.
    pub server_rows: u64,
    /// Router rows on proxied endpoints that joined ≥ 1 shard row.
    pub joined: u64,
    /// Of those, rows that joined more than one shard leg (an evaluate
    /// batch spanning several shard owners).
    pub multi_leg: u64,
    /// Trace ids of router rows on proxied 200s with no shard-side row.
    pub unjoined: Vec<String>,
    /// Trace ids recorded shard-side whose id the router never saw
    /// (only meaningful when router rows exist at all).
    pub orphaned: Vec<String>,
    /// Trace ids whose phase sum exceeds the recorded wall time.
    pub overruns: Vec<String>,
    /// Smallest phase-attribution fraction across rows (1.0 = every µs
    /// of wall time is named).
    pub attribution_min: f64,
    /// Mean phase-attribution fraction across rows.
    pub attribution_mean: f64,
    /// Per-phase percentiles across server-side rows (router rows when
    /// no server rows exist).
    pub phase_pcts: BTreeMap<String, Percentiles>,
    /// End-to-end wall-time percentiles per role.
    pub total_pcts: BTreeMap<String, Percentiles>,
}

fn parse_request_row(value: &Value) -> Option<RequestRow> {
    let mut phases = Vec::new();
    for (key, field) in value.as_map()? {
        if key == "ts_us" || key == "dur_us" {
            continue;
        }
        if let Some(name) = key.strip_suffix("_us") {
            phases.push((name.to_string(), field.as_u64().unwrap_or(0)));
        }
    }
    Some(RequestRow {
        trace: value.get("trace")?.as_str()?.to_string(),
        role: value.get("role").and_then(Value::as_str).unwrap_or("server").to_string(),
        endpoint: value.get("endpoint").and_then(Value::as_str).unwrap_or("other").to_string(),
        status: get_u64(value, "status"),
        shard: value.get("shard").and_then(Value::as_u64),
        ts_us: get_u64(value, "ts_us"),
        dur_us: get_u64(value, "dur_us"),
        phases,
    })
}

/// Merges `request` records from several trace files (typically the
/// router's plus one per shard) into one joined report.
///
/// # Errors
///
/// Returns a message naming the first malformed line; non-`request`
/// record types are skipped, so span/event traces mix in freely.
pub fn summarize_requests(files: &[(String, String)]) -> Result<RequestsReport, String> {
    let mut report = RequestsReport { files: files.len(), ..Default::default() };
    let mut rows: Vec<RequestRow> = Vec::new();
    for (label, text) in files {
        for (idx, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let value: Value =
                serde_json::from_str(line).map_err(|e| format!("{label}:{}: {e}", idx + 1))?;
            if value.get("type").and_then(Value::as_str) != Some("request") {
                continue;
            }
            let row = parse_request_row(&value)
                .ok_or_else(|| format!("{label}:{}: request record without a trace id", idx + 1))?;
            rows.push(row);
        }
    }

    // Join: group shard-side rows under the router row carrying the
    // same trace id.
    let mut server_by_trace: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    let mut router_traces: std::collections::BTreeSet<&str> = std::collections::BTreeSet::new();
    for (idx, row) in rows.iter().enumerate() {
        if row.role == "router" {
            router_traces.insert(&row.trace);
        } else {
            server_by_trace.entry(&row.trace).or_default().push(idx);
        }
    }
    for row in &rows {
        match row.role.as_str() {
            "router" => {
                report.router_rows += 1;
                if !PROXIED_ENDPOINTS.contains(&row.endpoint.as_str()) || row.status != 200 {
                    continue;
                }
                match server_by_trace.get(row.trace.as_str()).map_or(0, Vec::len) {
                    0 => report.unjoined.push(row.trace.clone()),
                    legs => {
                        report.joined += 1;
                        if legs > 1 {
                            report.multi_leg += 1;
                        }
                    }
                }
            }
            _ => {
                report.server_rows += 1;
                if report.files > 1
                    && row.trace.starts_with('r')
                    && !router_traces.contains(row.trace.as_str())
                {
                    // A router-assigned id ("r…") the router never
                    // recorded finishing: a lost front-door span.
                    report.orphaned.push(row.trace.clone());
                }
            }
        }
    }

    // Phase attribution and percentiles.
    let mut fractions: Vec<f64> = Vec::new();
    let mut phase_samples: BTreeMap<String, Vec<u64>> = BTreeMap::new();
    let mut total_samples: BTreeMap<String, Vec<u64>> = BTreeMap::new();
    let phase_role = if rows.iter().any(|r| r.role != "router") { "server" } else { "router" };
    for row in &rows {
        let sum = row.phase_sum();
        if sum > row.dur_us {
            report.overruns.push(row.trace.clone());
        }
        if row.dur_us > 0 {
            fractions.push((sum as f64 / row.dur_us as f64).min(1.0));
        }
        if row.role == phase_role {
            for (name, us) in &row.phases {
                phase_samples.entry(name.clone()).or_default().push(*us);
            }
        }
        total_samples.entry(row.role.clone()).or_default().push(row.dur_us);
    }
    report.attribution_min = fractions.iter().copied().fold(f64::INFINITY, f64::min);
    if !fractions.is_empty() {
        report.attribution_mean = fractions.iter().sum::<f64>() / fractions.len() as f64;
    } else {
        report.attribution_min = 0.0;
    }
    report.phase_pcts =
        phase_samples.into_iter().map(|(name, samples)| (name, percentiles(samples))).collect();
    report.total_pcts =
        total_samples.into_iter().map(|(role, samples)| (role, percentiles(samples))).collect();

    // Causal ordering: router span first, then its shard legs by
    // timestamp, then everything that never crossed the router.
    let mut ordered: Vec<RequestRow> = Vec::with_capacity(rows.len());
    let mut placed = vec![false; rows.len()];
    let index_of: BTreeMap<(String, u64), usize> = rows
        .iter()
        .enumerate()
        .filter(|(_, r)| r.role == "router")
        .map(|(i, r)| ((r.trace.clone(), r.ts_us), i))
        .collect();
    for &ri in index_of.values() {
        ordered.push(rows[ri].clone());
        placed[ri] = true;
        if let Some(legs) = server_by_trace.get(rows[ri].trace.as_str()) {
            let mut legs: Vec<usize> = legs.iter().copied().filter(|&i| !placed[i]).collect();
            legs.sort_by_key(|&i| rows[i].ts_us);
            for i in legs {
                ordered.push(rows[i].clone());
                placed[i] = true;
            }
        }
    }
    for (i, row) in rows.iter().enumerate() {
        if !placed[i] {
            ordered.push(row.clone());
        }
    }
    report.rows = ordered;
    Ok(report)
}

/// Hard verification of a merged request trace, the `--requests` exit
/// criterion.
///
/// # Errors
///
/// One message per failed check: an unjoined router span, a shard span
/// orphaned from its router, or a row whose phase sums exceed its wall
/// time.
pub fn verify_requests(report: &RequestsReport) -> Result<(), Vec<String>> {
    let mut errors = Vec::new();
    if report.rows.is_empty() {
        errors.push("no request records found (was the run traced?)".into());
    }
    for trace in &report.unjoined {
        errors.push(format!("router span {trace} joined no shard request span"));
    }
    for trace in &report.orphaned {
        errors.push(format!("shard span {trace} has no matching router span"));
    }
    for trace in &report.overruns {
        errors.push(format!("request {trace}: phase sums exceed its wall time"));
    }
    if errors.is_empty() {
        Ok(())
    } else {
        Err(errors)
    }
}

/// Renders the `--requests` report the CLI prints.
pub fn render_requests(report: &RequestsReport) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "request trace report: {} file(s), {} request record(s) \
         ({} router, {} server)",
        report.files,
        report.rows.len(),
        report.router_rows,
        report.server_rows
    );
    if report.router_rows > 0 {
        let _ = writeln!(
            out,
            "joins: {} of {} proxied router spans joined ({} multi-leg), {} unjoined, \
             {} orphaned shard spans",
            report.joined,
            report.joined + report.unjoined.len() as u64,
            report.multi_leg,
            report.unjoined.len(),
            report.orphaned.len()
        );
    }
    if !report.rows.is_empty() {
        let _ = writeln!(
            out,
            "phase attribution: min {:.1}%, mean {:.1}% of wall time named ({} overrun(s))",
            report.attribution_min * 100.0,
            report.attribution_mean * 100.0,
            report.overruns.len()
        );
    }
    if !report.phase_pcts.is_empty() {
        let _ = writeln!(out, "\nper-phase percentiles (µs):");
        let _ = writeln!(
            out,
            "  {:<12} {:>8} {:>10} {:>10} {:>10} {:>10}",
            "phase", "samples", "p50", "p95", "p99", "max"
        );
        for (name, p) in &report.phase_pcts {
            let _ = writeln!(
                out,
                "  {name:<12} {:>8} {:>10} {:>10} {:>10} {:>10}",
                p.samples, p.p50, p.p95, p.p99, p.max
            );
        }
    }
    if !report.total_pcts.is_empty() {
        let _ = writeln!(out, "\nend-to-end wall time (µs):");
        for (role, p) in &report.total_pcts {
            let _ = writeln!(
                out,
                "  {role:<12} {:>8} samples  p50 {:>8}  p95 {:>8}  p99 {:>8}  max {:>8}",
                p.samples, p.p50, p.p95, p.p99, p.max
            );
        }
    }
    match verify_requests(report) {
        Ok(()) => {
            let _ = writeln!(out, "\nverification: every check passed");
        }
        Err(errors) => {
            let _ = writeln!(out, "\nverification: FAILED ({} problem(s))", errors.len());
            for error in errors.iter().take(20) {
                let _ = writeln!(out, "  {error}");
            }
            if errors.len() > 20 {
                let _ = writeln!(out, "  … and {} more", errors.len() - 20);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const TRACE: &str = r#"{"type":"span_begin","id":1,"parent":null,"name":"mfrl_run","ts_us":0}
{"type":"span_begin","id":2,"parent":1,"name":"lf_phase","ts_us":1}
{"type":"event","name":"episode","span":2,"ts_us":2,"phase":"lf","episode":0,"cpi":1.5}
{"type":"event","name":"ledger_batch","span":2,"ts_us":3,"fidelity":"lf","proposals":4,"evaluations":3,"cache_hits":1,"cache_misses":3,"denied":0,"model_time_units":3.0,"dur_us":120}
{"type":"span_end","id":2,"name":"lf_phase","ts_us":10,"dur_us":9}
{"type":"event","name":"ledger_batch","span":1,"ts_us":11,"fidelity":"learned","proposals":2,"evaluations":1,"cache_hits":1,"cache_misses":1,"denied":0,"model_time_units":0.01,"dur_us":40}
{"type":"event","name":"ledger_batch","span":1,"ts_us":12,"fidelity":"hf","proposals":2,"evaluations":2,"cache_hits":0,"cache_misses":2,"denied":0,"model_time_units":2.0,"dur_us":300}
{"type":"span_end","id":1,"name":"mfrl_run","ts_us":20,"dur_us":20}
{"type":"event","name":"run_summary","span":null,"ts_us":21,"lf_evaluations":3,"lf_cache_hits":1,"lf_cache_misses":3,"lf_denied":0,"lf_model_time_units":3.0,"learned_evaluations":1,"learned_cache_hits":1,"learned_cache_misses":1,"learned_denied":0,"learned_model_time_units":0.01,"budget_floor":"learned","hf_evaluations":2,"hf_cache_hits":0,"hf_cache_misses":2,"hf_denied":0,"hf_model_time_units":2.0}
"#;

    #[test]
    fn summarize_aggregates_spans_and_deltas() {
        let s = summarize(TRACE, 5).unwrap();
        assert_eq!((s.lines, s.spans, s.events), (9, 2, 5));
        assert_eq!(s.phase_wall_us["lf_phase"], (1, 9));
        assert_eq!(s.per_fidelity["lf"].evaluations, 3);
        assert_eq!(s.per_fidelity["learned"].cache_hits, 1);
        assert_eq!(s.per_fidelity["hf"].eval_wall_us, 300);
        assert_eq!(s.episodes["lf"], 1);
        assert_eq!(s.hottest[0], ("mfrl_run".to_string(), 20));
        assert!(reconcile(&s).is_ok());
    }

    #[test]
    fn reconcile_catches_drift() {
        let tampered = TRACE.replace(r#""lf_evaluations":3"#, r#""lf_evaluations":4"#);
        let s = summarize(&tampered, 5).unwrap();
        let errors = reconcile(&s).unwrap_err();
        assert_eq!(errors.len(), 1);
        assert!(errors[0].contains("lf.evaluations"), "{errors:?}");
    }

    #[test]
    fn two_tier_trace_without_learned_fields_still_reconciles() {
        // Traces written before the learned tier existed carry no
        // learned_* fields and no "learned" ledger_batch events; both
        // sides default to zero and must agree.
        let trace = r#"{"type":"event","name":"ledger_batch","span":null,"ts_us":1,"fidelity":"hf","proposals":1,"evaluations":1,"cache_hits":0,"cache_misses":1,"denied":0,"model_time_units":1.0,"dur_us":10}
{"type":"event","name":"run_summary","span":null,"ts_us":2,"lf_evaluations":0,"lf_cache_hits":0,"lf_cache_misses":0,"lf_denied":0,"lf_model_time_units":0.0,"hf_evaluations":1,"hf_cache_hits":0,"hf_cache_misses":1,"hf_denied":0,"hf_model_time_units":1.0}
"#;
        let s = summarize(trace, 5).unwrap();
        assert_eq!(s.run_summary.unwrap().learned, (0, 0, 0, 0, 0.0));
        assert!(reconcile(&s).is_ok());
    }

    #[test]
    fn missing_run_summary_is_an_error() {
        let truncated: String = TRACE.lines().take(7).map(|l| format!("{l}\n")).collect();
        let s = summarize(&truncated, 5).unwrap();
        assert!(reconcile(&s).is_err());
    }

    #[test]
    fn malformed_lines_are_named() {
        let err = summarize("{\"type\":\"span_end\"}\nnot json\n", 3).unwrap_err();
        assert!(err.contains("line 1") || err.contains("line 2"), "{err}");
    }

    fn req_line(trace: &str, role: &str, endpoint: &str, status: u64, extra: &str) -> String {
        format!(
            r#"{{"type":"request","trace":"{trace}","role":"{role}","endpoint":"{endpoint}","status":{status},"ts_us":10,"dur_us":1000,"parse_us":50,"queue_us":200,"coalesce_us":100,"exec_us":600,"serialize_us":20,"write_us":30{extra}}}"#
        )
    }

    #[test]
    fn requests_mode_joins_router_and_shard_spans() {
        let router = format!(
            "{}\n{}\n{}\n",
            req_line("a", "router", "evaluate", 200, ""),
            req_line("b", "router", "evaluate", 200, ""),
            req_line("h", "router", "healthz", 200, ""), // local: no join needed
        );
        let shard0 = format!("{}\n", req_line("a", "server", "evaluate", 200, r#","shard":0"#));
        let shard1 = format!(
            "{}\n{}\n",
            req_line("a", "server", "evaluate", 200, r#","shard":1"#),
            req_line("b", "server", "evaluate", 200, r#","shard":1"#),
        );
        let report = summarize_requests(&[
            ("router".into(), router),
            ("s0".into(), shard0),
            ("s1".into(), shard1),
        ])
        .unwrap();
        assert_eq!((report.router_rows, report.server_rows), (3, 3));
        assert_eq!((report.joined, report.multi_leg), (2, 1));
        assert!(report.unjoined.is_empty() && report.orphaned.is_empty());
        assert!(verify_requests(&report).is_ok());
        // Causal ordering: each router span is directly followed by its
        // shard legs.
        let order: Vec<(&str, &str)> =
            report.rows.iter().map(|r| (r.trace.as_str(), r.role.as_str())).collect();
        let a_router = order.iter().position(|&(t, r)| t == "a" && r == "router").unwrap();
        assert_eq!(order[a_router + 1], ("a", "server"));
        assert_eq!(order[a_router + 2], ("a", "server"));
    }

    #[test]
    fn requests_mode_flags_unjoined_and_orphaned_spans() {
        let router = format!("{}\n", req_line("lost", "router", "evaluate", 200, ""));
        let shard = format!("{}\n", req_line("r0000002a", "server", "evaluate", 200, ""));
        let report =
            summarize_requests(&[("router".into(), router), ("s0".into(), shard)]).unwrap();
        assert_eq!(report.unjoined, vec!["lost".to_string()]);
        assert_eq!(report.orphaned, vec!["r0000002a".to_string()]);
        let errors = verify_requests(&report).unwrap_err();
        assert!(errors.iter().any(|e| e.contains("joined no shard")), "{errors:?}");
        assert!(errors.iter().any(|e| e.contains("no matching router")), "{errors:?}");
    }

    #[test]
    fn requests_mode_catches_phase_overruns() {
        // dur_us 1000 but phases sum to 1500: impossible attribution.
        let line = r#"{"type":"request","trace":"x","role":"server","endpoint":"evaluate","status":200,"ts_us":1,"dur_us":1000,"parse_us":500,"exec_us":1000}"#;
        let report = summarize_requests(&[("t".into(), format!("{line}\n"))]).unwrap();
        assert_eq!(report.overruns, vec!["x".to_string()]);
        assert!(verify_requests(&report).is_err());
    }

    #[test]
    fn requests_mode_computes_phase_percentiles() {
        let mut text = String::new();
        for i in 1..=100u64 {
            text.push_str(&format!(
                r#"{{"type":"request","trace":"t{i}","role":"server","endpoint":"evaluate","status":200,"ts_us":{i},"dur_us":{},"exec_us":{}}}"#,
                i * 10,
                i * 10,
            ));
            text.push('\n');
        }
        let report = summarize_requests(&[("t".into(), text)]).unwrap();
        let exec = &report.phase_pcts["exec"];
        assert_eq!(
            (exec.samples, exec.p50, exec.p95, exec.p99, exec.max),
            (100, 500, 950, 990, 1000)
        );
        assert_eq!(report.total_pcts["server"].p99, 990);
        assert!((report.attribution_min - 1.0).abs() < 1e-9);
        let rendered = render_requests(&report);
        assert!(rendered.contains("per-phase percentiles"), "{rendered}");
        assert!(rendered.contains("every check passed"), "{rendered}");
    }

    #[test]
    fn requests_mode_errors_on_malformed_lines() {
        let err = summarize_requests(&[("bad.jsonl".into(), "not json\n".into())]).unwrap_err();
        assert!(err.contains("bad.jsonl:1"), "{err}");
    }

    #[test]
    fn render_mentions_every_section() {
        let s = summarize(TRACE, 5).unwrap();
        let text = render(&s);
        for needle in
            ["per-phase wall time", "budget totals", "episodes:", "exact match", "hottest spans"]
        {
            assert!(text.contains(needle), "report lacks {needle:?}:\n{text}");
        }
    }
}
