//! Minimal `--flag value` / `--switch` argument parsing.

use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

/// Error produced while parsing or extracting arguments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArgError {
    /// A `--flag` appeared at the end of the line with no value and was
    /// requested as a valued option.
    MissingValue(String),
    /// A flag's value failed to parse as the requested type.
    InvalidValue {
        /// The flag name.
        flag: String,
        /// The raw value.
        value: String,
    },
    /// A positional/unknown token appeared.
    Unexpected(String),
}

impl fmt::Display for ArgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArgError::MissingValue(flag) => write!(f, "missing value for --{flag}"),
            ArgError::InvalidValue { flag, value } => {
                write!(f, "invalid value {value:?} for --{flag}")
            }
            ArgError::Unexpected(token) => write!(f, "unexpected argument {token:?}"),
        }
    }
}

impl Error for ArgError {}

/// Parsed arguments: a subcommand plus `--flag [value]` options and
/// positional operands.
///
/// # Examples
///
/// ```
/// use archdse_cli::Args;
///
/// let args = Args::parse(["explore", "--area", "7.5", "--full"].map(String::from))?;
/// assert_eq!(args.command(), Some("explore"));
/// assert_eq!(args.value_of::<f64>("area")?, Some(7.5));
/// assert!(args.switch("full"));
/// # Ok::<(), archdse_cli::ArgError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct Args {
    command: Option<String>,
    options: BTreeMap<String, Option<String>>,
    positionals: Vec<String>,
}

impl Args {
    /// Parses a token stream (excluding the program name).
    ///
    /// The first non-flag token is the subcommand; later non-flag
    /// tokens collect as positional operands (each command decides how
    /// many it accepts — see [`Args::positionals`]). A flag's value is
    /// the following token unless that token is itself a flag.
    pub fn parse(tokens: impl IntoIterator<Item = String>) -> Result<Self, ArgError> {
        let mut args = Args::default();
        let mut iter = tokens.into_iter().peekable();
        while let Some(token) = iter.next() {
            if let Some(flag) = token.strip_prefix("--") {
                let value = match iter.peek() {
                    Some(next) if !next.starts_with("--") => iter.next(),
                    _ => None,
                };
                args.options.insert(flag.to_string(), value);
            } else if args.command.is_none() {
                args.command = Some(token);
            } else {
                args.positionals.push(token);
            }
        }
        Ok(args)
    }

    /// The subcommand, if any.
    pub fn command(&self) -> Option<&str> {
        self.command.as_deref()
    }

    /// Positional operands after the subcommand, in order (e.g. the ELF
    /// path of `ingest <elf>`). Commands that take none reject any.
    pub fn positionals(&self) -> &[String] {
        &self.positionals
    }

    /// Whether a bare `--switch` (or valued flag) was present.
    pub fn switch(&self, name: &str) -> bool {
        self.options.contains_key(name)
    }

    /// A flag's value parsed as `T`; `Ok(None)` when absent.
    ///
    /// # Errors
    ///
    /// [`ArgError::MissingValue`] if the flag was present without a
    /// value, [`ArgError::InvalidValue`] if parsing failed.
    pub fn value_of<T: std::str::FromStr>(&self, name: &str) -> Result<Option<T>, ArgError> {
        match self.options.get(name) {
            None => Ok(None),
            Some(None) => Err(ArgError::MissingValue(name.to_string())),
            Some(Some(raw)) => raw
                .parse()
                .map(Some)
                .map_err(|_| ArgError::InvalidValue { flag: name.to_string(), value: raw.clone() }),
        }
    }

    /// Like [`Args::value_of`] with a default for absence.
    ///
    /// # Errors
    ///
    /// Propagates [`Args::value_of`] errors.
    pub fn value_or<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, ArgError> {
        Ok(self.value_of(name)?.unwrap_or(default))
    }

    /// Every `--flag` name that was passed, in sorted order — so
    /// commands can reject misspelled options instead of silently
    /// ignoring them.
    pub fn flag_names(&self) -> impl Iterator<Item = &str> {
        self.options.keys().map(String::as_str)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(tokens: &[&str]) -> Result<Args, ArgError> {
        Args::parse(tokens.iter().map(|s| s.to_string()))
    }

    #[test]
    fn subcommand_and_flags() {
        let a = parse(&["table2", "--full", "--seed", "7"]).unwrap();
        assert_eq!(a.command(), Some("table2"));
        assert!(a.switch("full"));
        assert_eq!(a.value_of::<u64>("seed").unwrap(), Some(7));
        assert_eq!(a.value_of::<u64>("missing").unwrap(), None);
    }

    #[test]
    fn flag_followed_by_flag_is_a_switch() {
        let a = parse(&["explore", "--quick", "--area", "8.0"]).unwrap();
        assert!(a.switch("quick"));
        assert_eq!(a.value_of::<f64>("area").unwrap(), Some(8.0));
    }

    #[test]
    fn positionals_collect_in_order() {
        let a = parse(&["ingest", "a.elf", "--name", "x", "b.elf"]).unwrap();
        assert_eq!(a.command(), Some("ingest"));
        assert_eq!(a.positionals(), ["a.elf".to_string(), "b.elf".to_string()]);
        assert_eq!(a.value_of::<String>("name").unwrap().as_deref(), Some("x"));
    }

    #[test]
    fn bad_value_reports_the_flag() {
        let a = parse(&["explore", "--seed", "banana"]).unwrap();
        assert_eq!(
            a.value_of::<u64>("seed").unwrap_err(),
            ArgError::InvalidValue { flag: "seed".to_string(), value: "banana".to_string() }
        );
    }

    #[test]
    fn value_or_supplies_default() {
        let a = parse(&["explore"]).unwrap();
        assert_eq!(a.value_or("seed", 42u64).unwrap(), 42);
    }

    #[test]
    fn flag_names_lists_everything_passed() {
        let a = parse(&["explore", "--seed", "1", "--quikc"]).unwrap();
        let names: Vec<&str> = a.flag_names().collect();
        assert_eq!(names, vec!["quikc", "seed"]);
    }
}
