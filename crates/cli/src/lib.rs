//! Library backing the `archdse` command-line tool.
//!
//! The CLI wraps the [`archdse`] crate's `Explorer` and experiment
//! drivers behind subcommands, so the whole reproduction is usable
//! without writing Rust:
//!
//! ```text
//! archdse space
//! archdse explore --benchmark mm --area 7.5 --seed 42
//! archdse table2 --full
//! archdse fig5 | fig6 | fig7 | ablations [--full] [--json FILE]
//! ```
//!
//! Argument parsing is hand-rolled (see [`args`]) to stay within the
//! workspace's dependency budget; it supports `--flag value` and bare
//! `--switch` forms only, which is all the tool needs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod args;
pub mod commands;
pub mod trace_report;

pub use args::{ArgError, Args};
