//! Subcommand implementations.

use std::error::Error;

use serde::Serialize;

use archdse::experiments::{
    ablations, fig5, fig6, fig7, table2, AblationConfig, Fig5Config, Fig6Config, Fig7Config,
    Table2Config,
};
use archdse::{DesignSpace, Explorer, Fnn, Param};
use dse_fnn::explain_top_action;
use dse_mfrl::{Constraint as _, LowFidelity as _};
use dse_workloads::Benchmark;

use crate::Args;

/// Usage text printed by `archdse help` or on a bad invocation.
pub const USAGE: &str = "\
archdse — explainable FNN + multi-fidelity RL micro-architecture DSE

USAGE:
  archdse <COMMAND> [OPTIONS]

COMMANDS:
  space                      print the Table 1 design space
  explore                    run one DSE flow and print design + rules
      --benchmark <name>     dijkstra|mm|fp-vvadd|quicksort|fft|ss
      --general              optimize the six-benchmark average instead
      --area <mm2>           area limit (default 8.0)
      --leakage <mw>         optional static-power budget
      --seed <n>             master seed (default 0)
      --lf-episodes <n>      LF training episodes (default 300)
      --hf-budget <n>        HF simulations (default 9)
      --trace-len <n>        trace length (default 30000)
      --save-fnn <file>      persist the trained network as JSON
  explain                    walk a saved network greedily, explaining
                             each decision's top rules
      --fnn <file>           trained network from `explore --save-fnn`
      --benchmark <name>     workload for the CPI observations
      --area <mm2>           area limit (default 8.0)
      --steps <n>            decisions to explain (default 5)
  table2 | fig5 | fig6 | fig7 | ablations
                             regenerate a paper artifact
      --full                 paper-scale budgets (default: quick)
      --json <file>          also write the result as JSON
  help                       show this text
";

fn parse_benchmark(name: &str) -> Result<Benchmark, dse_workloads::ParseBenchmarkError> {
    name.parse()
}

fn maybe_write_json<T: Serialize>(args: &Args, value: &T) -> Result<(), Box<dyn Error>> {
    if let Some(path) = args.value_of::<String>("json")? {
        std::fs::write(&path, serde_json::to_string_pretty(value)?)?;
        println!("(wrote JSON to {path})");
    }
    Ok(())
}

/// Dispatches a parsed invocation; returns the process exit code.
///
/// # Errors
///
/// Returns any argument, IO or serialization error for `main` to print.
pub fn run(args: &Args) -> Result<i32, Box<dyn Error>> {
    match args.command() {
        Some("space") => cmd_space(),
        Some("explore") => cmd_explore(args),
        Some("explain") => cmd_explain(args),
        Some("table2") => {
            let config =
                if args.switch("full") { Table2Config::default() } else { Table2Config::quick() };
            let result = table2(&config);
            println!("{}", result.to_markdown());
            maybe_write_json(args, &result)?;
            Ok(0)
        }
        Some("fig5") => {
            let config =
                if args.switch("full") { Fig5Config::default() } else { Fig5Config::quick() };
            let result = fig5(&config);
            println!("{}", result.to_markdown());
            maybe_write_json(args, &result)?;
            Ok(0)
        }
        Some("fig6") => {
            let config =
                if args.switch("full") { Fig6Config::default() } else { Fig6Config::quick() };
            let result = fig6(&config);
            println!("{}", result.to_markdown());
            maybe_write_json(args, &result)?;
            Ok(0)
        }
        Some("fig7") => {
            let config =
                if args.switch("full") { Fig7Config::default() } else { Fig7Config::quick() };
            let result = fig7(&config);
            println!("{}", result.to_markdown());
            maybe_write_json(args, &result)?;
            Ok(0)
        }
        Some("ablations") => {
            let config =
                if args.switch("full") { AblationConfig::default() } else { AblationConfig::quick() };
            let result = ablations(&config);
            println!("{}", result.to_markdown());
            maybe_write_json(args, &result)?;
            Ok(0)
        }
        Some("help") | None => {
            println!("{USAGE}");
            Ok(0)
        }
        Some(other) => {
            eprintln!("unknown command {other:?}\n\n{USAGE}");
            Ok(2)
        }
    }
}

fn cmd_space() -> Result<i32, Box<dyn Error>> {
    let space = DesignSpace::boom();
    println!("{:<18} candidates", "parameter");
    for p in Param::ALL {
        let cands: Vec<String> = space.candidates(p).iter().map(|v| format!("{v}")).collect();
        println!("{:<18} {}", p.name(), cands.join(", "));
    }
    println!("total designs: {}", space.size());
    Ok(0)
}

fn cmd_explore(args: &Args) -> Result<i32, Box<dyn Error>> {
    let mut explorer = if args.switch("general") {
        Explorer::general_purpose()
    } else {
        let name = args.value_or("benchmark", "mm".to_string())?;
        Explorer::for_benchmark(parse_benchmark(&name)?)
    };
    explorer = explorer
        .area_limit_mm2(args.value_or("area", 8.0)?)
        .seed(args.value_or("seed", 0)?)
        .lf_episodes(args.value_or("lf-episodes", 300)?)
        .hf_budget(args.value_or("hf-budget", 9)?)
        .trace_len(args.value_or("trace-len", 30_000)?);
    if let Some(leakage) = args.value_of::<f64>("leakage")? {
        explorer = explorer.leakage_limit_mw(leakage);
    }

    let report = explorer.run();
    println!("best design  : {}", report.best_point.describe(explorer.space()));
    println!(
        "area         : {:.2} mm2 (limit {:.2})",
        explorer.area().area_mm2(explorer.space(), &report.best_point),
        explorer.area().limit_mm2()
    );
    println!("simulated CPI: {:.4}", report.best_cpi);
    println!("HF sims used : {}", report.hf.evaluations);
    println!("\nlearned rules:");
    for rule in report.rules.iter().take(12) {
        println!("  {rule}");
    }
    if let Some(path) = args.value_of::<String>("save-fnn")? {
        std::fs::write(&path, serde_json::to_string_pretty(&report.fnn)?)?;
        println!("\n(saved trained network to {path})");
    }
    Ok(0)
}

fn cmd_explain(args: &Args) -> Result<i32, Box<dyn Error>> {
    let Some(path) = args.value_of::<String>("fnn")? else {
        eprintln!("explain requires --fnn <file> (produce one with explore --save-fnn)");
        return Ok(2);
    };
    let fnn: Fnn = serde_json::from_str(&std::fs::read_to_string(&path)?)?;
    let name = args.value_or("benchmark", "mm".to_string())?;
    let benchmark = parse_benchmark(&name)?;
    let steps: usize = args.value_or("steps", 5)?;
    let explorer =
        Explorer::for_benchmark(benchmark).area_limit_mm2(args.value_or("area", 8.0)?);
    let space = explorer.space();
    let lf = explorer.lf_model();
    let area = explorer.area();

    let mut point = space.smallest();
    for step in 0..steps {
        let obs = fnn.observation(space, &point, lf.cpi(space, &point));
        let explanation = explain_top_action(&fnn, &obs, 3);
        println!("step {step}: grow `{}`\n{explanation}\n", explanation.output_name);
        let Some(param) = Param::from_index(explanation.output) else { break };
        match point.increased(space, param) {
            Some(next) if area.fits(space, &next) => point = next,
            _ => {
                println!("(area limit reached)");
                break;
            }
        }
    }
    println!("reached design: {}", point.describe(space));
    Ok(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(tokens: &[&str]) -> Args {
        Args::parse(tokens.iter().map(|s| s.to_string())).unwrap()
    }

    #[test]
    fn benchmark_names_parse() {
        for b in Benchmark::ALL {
            assert_eq!(parse_benchmark(b.name()).unwrap(), b);
        }
        assert!(parse_benchmark("nope").is_err());
    }

    #[test]
    fn help_and_space_succeed() {
        assert_eq!(run(&args(&["help"])).unwrap(), 0);
        assert_eq!(run(&args(&["space"])).unwrap(), 0);
    }

    #[test]
    fn unknown_command_exits_nonzero() {
        assert_eq!(run(&args(&["frobnicate"])).unwrap(), 2);
    }

    #[test]
    fn explore_quick_runs_end_to_end() {
        let a = args(&[
            "explore",
            "--benchmark",
            "ss",
            "--area",
            "6.0",
            "--lf-episodes",
            "15",
            "--hf-budget",
            "2",
            "--trace-len",
            "1000",
        ]);
        assert_eq!(run(&a).unwrap(), 0);
    }

    #[test]
    fn explore_saves_a_network_that_explain_can_load() {
        let dir = std::env::temp_dir().join("archdse_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("fnn.json");
        let path_str = path.to_str().unwrap();
        let a = args(&[
            "explore",
            "--benchmark",
            "ss",
            "--area",
            "6.0",
            "--lf-episodes",
            "10",
            "--hf-budget",
            "2",
            "--trace-len",
            "1000",
            "--save-fnn",
            path_str,
        ]);
        assert_eq!(run(&a).unwrap(), 0);
        assert!(path.exists());
        let e = args(&["explain", "--fnn", path_str, "--benchmark", "ss", "--steps", "3"]);
        assert_eq!(run(&e).unwrap(), 0);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn explain_without_fnn_exits_nonzero() {
        assert_eq!(run(&args(&["explain"])).unwrap(), 2);
    }
}
