//! Subcommand implementations.

use std::error::Error;

use serde::{Deserialize, Serialize};

use archdse::eval::SimulatorHf;
use archdse::experiments::{
    ablations, fig5, fig6, fig7, table2, AblationConfig, Fig5Config, Fig6Config, Fig7Config,
    Table2Config,
};
use archdse::{CostLedger, DesignSpace, Explorer, Fnn, LedgerSummary, Param};
use archdse_serve::{
    run_loadgen, spawn, spawn_router, LoadgenConfig, LoadgenReport, RouterConfig, ServeConfig,
};
use dse_fnn::explain_top_action;
use dse_mfrl::{Constraint as _, LowFidelity as _};
use dse_workloads::Benchmark;

use crate::Args;

/// Usage text printed by `archdse help` or on a bad invocation.
pub const USAGE: &str = "\
archdse — explainable FNN + multi-fidelity RL micro-architecture DSE

USAGE:
  archdse <COMMAND> [OPTIONS]

COMMANDS:
  space                      print the Table 1 design space
  explore                    run one DSE flow and print design + rules
      --benchmark <name>     dijkstra|mm|fp-vvadd|quicksort|fft|ss
      --general              optimize the six-benchmark average instead
      --area <mm2>           area limit (default 8.0)
      --leakage <mw>         optional static-power budget
      --seed <n>             master seed (default 0)
      --lf-episodes <n>      LF training episodes (default 300)
      --hf-budget <n>        HF simulations (default 9)
      --tiers <2|3>          fidelity tiers: 2 = LF+HF, 3 adds the
                             online-learned mid tier with gate routing
                             (default 2)
      --gate-threshold <e>   learned-tier confidence gate: answer when
                             the conformal error bound is below e
                             (default 0.05; 3-tier runs only)
      --trace-len <n>        trace length (default 30000)
      --threads <n>          HF worker threads (default: DSE_THREADS env
                             var, else all cores; results are identical)
      --save-fnn <file>      persist the trained network as JSON
      --trace-out <file>     write a JSONL span/event trace of the run
      --metrics-out <file>   dump the metrics registry as Prometheus text
  sweep                      simulate a spread of designs in one parallel
                             batch and tabulate their CPIs
      --benchmark <name>     workload (default mm)
      --general              sweep the six-benchmark average instead
      --count <n>            designs, evenly spaced over the space (default 24)
      --trace-len <n>        trace length (default 10000)
      --threads <n>          worker threads (default as for explore)
      --seed <n>             trace seed (default 0)
      --json <file>          also write { rows, ledger } as JSON
  explain                    walk a saved network greedily, explaining
                             each decision's top rules
      --fnn <file>           trained network from `explore --save-fnn`
      --benchmark <name>     workload for the CPI observations
      --area <mm2>           area limit (default 8.0)
      --steps <n>            decisions to explain (default 5)
  serve                      run the HTTP evaluation service (endpoints:
                             /healthz /metrics /v1/evaluate /v1/explain
                             /v1/explore /v1/jobs/<id> /v1/shutdown)
      --addr <host:port>     bind address (default 127.0.0.1:8711; port 0
                             picks an ephemeral port)
      --benchmark <name>     workload behind /v1/evaluate (default mm)
      --general              serve the six-benchmark average instead
      --area <mm2>           area limit for feasibility stamps (default 8.0)
      --trace-len <n>        HF trace length (default 10000)
      --seed <n>             trace seed (default 0)
      --threads <n>          HF worker threads inside a batch
      --workers <n>          connection workers (default 4)
      --max-batch <n>        coalescer points per batch (default 64)
      --max-delay-ms <n>     coalescer gather window (default 2)
      --queue-cap <n>        queue depth before 503 (default 128)
      --fnn <file>           serve a trained network for /v1/explain
      --shards <n>           fork n shard worker processes (each owning
                             a hash slice of the design space) behind a
                             front router bound to --addr (default 1:
                             a single server, no router)
      --router-workers <n>   router proxy handlers; size at the peak
                             concurrency to serve without pushback
                             (default 256; only with --shards > 1)
      --trace-out <file>     write a JSONL request trace; a sharded run
                             writes the router's records here plus one
                             <file>.shardN per worker process (merge
                             them with trace-report --requests)
      --trace-sample <n>     trace 1 in n requests, chosen by a
                             deterministic trace-id hash (default 1 =
                             every request; 0 = none)
  loadgen                    hammer /v1/evaluate with concurrent clients
                             and report how the coalescer batched them
      --addr <host:port>     target server (default: self-host a quick one)
      --clients <n>          concurrent clients (default 4)
      --requests <n>         requests per client (default 8)
      --concurrency <c>      closed-loop saturating mode: c clients each
                             keep one request in flight on a keep-alive
                             connection until --duration elapses,
                             retrying 503s with backoff
      --duration <s>         closed-loop run length in seconds (default
                             2 when --concurrency is set)
      --shards <n>           self-host n shard worker processes behind a
                             router and hammer the router
                             (conflicts with --addr)
      --trend                sweep {1, --shards} shard stacks across
                             {16, 256, 1024} clients closed-loop and
                             record every row in
                             results/BENCH_loadgen.json
      --points <n>           design points per request (default 4)
      --fidelity <name>      tier to request: lf|learned|hf, or auto to
                             let the uncertainty gate route (default lf)
      --seed <n>             point-choice seed (default 1)
      --trace-len <n>        self-hosted servers' trace length
                             (default 2000)
      --queue-cap <n>        self-hosted servers' eval queue depth
                             (default 128)
      --trace                send a client-generated X-ArchDSE-Trace id
                             with every request and report the client
                             RTT vs server-reported-time gap from the
                             Server-Timing response header
      --trace-out <file>     trace the self-hosted target (router
                             records here, one <file>.shardN per shard
                             worker); conflicts with --addr
      --metrics-out <file>   dump the target's (aggregated) Prometheus
                             exposition after the run
                             (run stats also persist to
                             results/BENCH_loadgen.json)
  trace-report               summarize a JSONL trace from --trace-out:
                             per-phase wall time, per-fidelity budget
                             totals cross-checked against the ledger,
                             and the hottest spans
      --trace <file>         the trace to read (required); --requests
                             mode accepts a comma-separated list
      --top <n>              slowest spans to list (default 10)
      --requests             per-request timeline mode: merge request
                             records across router + shard trace files,
                             report per-phase p50/p95/p99 and verify
                             every proxied router span joins its shard
                             span(s) and phase sums fit the wall time
  check-metrics              validate a Prometheus text exposition
                             (from --metrics-out or /metrics)
      --file <path>          the exposition to check (required)
  ingest <elf>               run a statically linked RV64 ELF through the
                             functional executor and characterize it
      --name <s>             workload name (default: the ELF file stem)
      --max-instrs <n>       executor instruction budget
                             (default 50000000)
      --trace-out <file>     write the instruction stream as a compact
                             ADTF trace file
      --profile-out <file>   write the characterized workload profile
                             as JSON
  workload-diff <elf>        ingest an ELF and diff its profile against
                             a synthetic benchmark profile; the report
                             persists to results/workload_diff.json
      --benchmark <name>     synthetic baseline (default mm)
      --golden <file>        also compare against a golden profile JSON;
                             a mismatch exits 1
      --json <file>          also write the diff report to this path
  table2 | fig5 | fig6 | fig7 | ablations
                             regenerate a paper artifact
      --full                 paper-scale budgets (default: quick)
      --json <file>          also write the result as JSON
  help                       show this text
";

/// Every valid subcommand, for the unknown-command error message.
const COMMANDS: &[&str] = &[
    "space",
    "explore",
    "sweep",
    "explain",
    "serve",
    "loadgen",
    "trace-report",
    "check-metrics",
    "ingest",
    "workload-diff",
    "table2",
    "fig5",
    "fig6",
    "fig7",
    "ablations",
    "help",
];

/// The flags each subcommand accepts (misspellings are rejected, not
/// silently ignored).
fn allowed_flags(command: &str) -> &'static [&'static str] {
    match command {
        "space" | "help" => &[],
        "explore" => &[
            "benchmark",
            "general",
            "area",
            "leakage",
            "seed",
            "lf-episodes",
            "hf-budget",
            "tiers",
            "gate-threshold",
            "trace-len",
            "threads",
            "save-fnn",
            "trace-out",
            "metrics-out",
        ],
        "sweep" => &["benchmark", "general", "count", "trace-len", "threads", "seed", "json"],
        "explain" => &["fnn", "benchmark", "area", "steps"],
        "serve" => &[
            "addr",
            "benchmark",
            "general",
            "area",
            "leakage",
            "trace-len",
            "seed",
            "threads",
            "workers",
            "max-batch",
            "max-delay-ms",
            "queue-cap",
            "fnn",
            "shards",
            "router-workers",
            "trace-out",
            "trace-sample",
            "shard-id",
        ],
        "loadgen" => &[
            "addr",
            "clients",
            "requests",
            "concurrency",
            "duration",
            "shards",
            "trend",
            "points",
            "fidelity",
            "seed",
            "trace-len",
            "queue-cap",
            "trace",
            "trace-out",
            "metrics-out",
        ],
        "trace-report" => &["trace", "top", "requests"],
        "check-metrics" => &["file"],
        "ingest" => &["name", "max-instrs", "trace-out", "profile-out"],
        "workload-diff" => &["benchmark", "golden", "json"],
        _ => &["full", "json"],
    }
}

/// How many positional operands (after the subcommand) a command takes.
fn max_positionals(command: &str) -> usize {
    match command {
        "ingest" | "workload-diff" => 1,
        _ => 0,
    }
}

/// Rejects flags the command does not know; `Some(2)` means "exit 2".
fn check_flags(command: &str, args: &Args) -> Option<i32> {
    let allowed = allowed_flags(command);
    let unknown: Vec<&str> = args.flag_names().filter(|f| !allowed.contains(f)).collect();
    if unknown.is_empty() {
        return None;
    }
    let rendered: Vec<String> = unknown.iter().map(|f| format!("--{f}")).collect();
    eprintln!("unknown option(s) for `{command}`: {}", rendered.join(", "));
    if allowed.is_empty() {
        eprintln!("`{command}` takes no options");
    } else {
        let valid: Vec<String> = allowed.iter().map(|f| format!("--{f}")).collect();
        eprintln!("valid options: {}", valid.join(", "));
    }
    eprintln!("run `archdse help` for details");
    Some(2)
}

/// Rejects stray positional operands; `Some(2)` means "exit 2".
fn check_positionals(command: &str, args: &Args) -> Option<i32> {
    let extra = args.positionals().get(max_positionals(command)..).unwrap_or(&[]);
    if extra.is_empty() {
        return None;
    }
    let rendered: Vec<String> = extra.iter().map(|t| format!("{t:?}")).collect();
    eprintln!("unexpected argument(s) for `{command}`: {}", rendered.join(", "));
    eprintln!("run `archdse help` for details");
    Some(2)
}

fn parse_benchmark(name: &str) -> Result<Benchmark, dse_workloads::ParseBenchmarkError> {
    name.parse()
}

/// The JSON payload of `archdse sweep --json`: the `(encoded index,
/// CPI)` rows plus the sweep's cost ledger.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct SweepReport {
    rows: Vec<(u64, f64)>,
    ledger: LedgerSummary,
}

fn maybe_write_json<T: Serialize>(args: &Args, value: &T) -> Result<(), Box<dyn Error>> {
    if let Some(path) = args.value_of::<String>("json")? {
        std::fs::write(&path, serde_json::to_string_pretty(value)?)?;
        println!("(wrote JSON to {path})");
    }
    Ok(())
}

/// Dispatches a parsed invocation; returns the process exit code.
///
/// # Errors
///
/// Returns any argument, IO or serialization error for `main` to print.
pub fn run(args: &Args) -> Result<i32, Box<dyn Error>> {
    if let Some(command) = args.command() {
        if COMMANDS.contains(&command) {
            if let Some(code) = check_flags(command, args) {
                return Ok(code);
            }
            if let Some(code) = check_positionals(command, args) {
                return Ok(code);
            }
        }
    }
    match args.command() {
        Some("space") => cmd_space(),
        Some("explore") => cmd_explore(args),
        Some("sweep") => cmd_sweep(args),
        Some("explain") => cmd_explain(args),
        Some("serve") => cmd_serve(args),
        Some("loadgen") => cmd_loadgen(args),
        Some("trace-report") => cmd_trace_report(args),
        Some("check-metrics") => cmd_check_metrics(args),
        Some("ingest") => cmd_ingest(args),
        Some("workload-diff") => cmd_workload_diff(args),
        Some("table2") => {
            let config =
                if args.switch("full") { Table2Config::default() } else { Table2Config::quick() };
            let result = table2(&config);
            println!("{}", result.to_markdown());
            maybe_write_json(args, &result)?;
            Ok(0)
        }
        Some("fig5") => {
            let config =
                if args.switch("full") { Fig5Config::default() } else { Fig5Config::quick() };
            let result = fig5(&config);
            println!("{}", result.to_markdown());
            maybe_write_json(args, &result)?;
            Ok(0)
        }
        Some("fig6") => {
            let config =
                if args.switch("full") { Fig6Config::default() } else { Fig6Config::quick() };
            let result = fig6(&config);
            println!("{}", result.to_markdown());
            maybe_write_json(args, &result)?;
            Ok(0)
        }
        Some("fig7") => {
            let config =
                if args.switch("full") { Fig7Config::default() } else { Fig7Config::quick() };
            let result = fig7(&config);
            println!("{}", result.to_markdown());
            maybe_write_json(args, &result)?;
            Ok(0)
        }
        Some("ablations") => {
            let config = if args.switch("full") {
                AblationConfig::default()
            } else {
                AblationConfig::quick()
            };
            let result = ablations(&config);
            println!("{}", result.to_markdown());
            maybe_write_json(args, &result)?;
            Ok(0)
        }
        Some("help") | None => {
            println!("{USAGE}");
            Ok(0)
        }
        Some(other) => {
            eprintln!("unknown command {other:?}");
            eprintln!("valid commands: {}", COMMANDS.join(", "));
            eprintln!("run `archdse help` for details");
            Ok(2)
        }
    }
}

fn cmd_space() -> Result<i32, Box<dyn Error>> {
    let space = DesignSpace::boom();
    println!("{:<18} candidates", "parameter");
    for p in Param::ALL {
        let cands: Vec<String> = space.candidates(p).iter().map(|v| format!("{v}")).collect();
        println!("{:<18} {}", p.name(), cands.join(", "));
    }
    println!("total designs: {}", space.size());
    Ok(0)
}

fn cmd_explore(args: &Args) -> Result<i32, Box<dyn Error>> {
    let mut explorer = if args.switch("general") {
        Explorer::general_purpose()
    } else {
        let name = args.value_or("benchmark", "mm".to_string())?;
        Explorer::for_benchmark(parse_benchmark(&name)?)
    };
    let tiers: usize = args.value_or("tiers", 2usize)?;
    if !(2..=dse_exec::Fidelity::COUNT).contains(&tiers) {
        eprintln!("--tiers must be 2 or {}, got {tiers}", dse_exec::Fidelity::COUNT);
        return Ok(2);
    }
    explorer = explorer
        .area_limit_mm2(args.value_or("area", 8.0)?)
        .seed(args.value_or("seed", 0)?)
        .lf_episodes(args.value_or("lf-episodes", 300)?)
        .hf_budget(args.value_or("hf-budget", 9)?)
        .tiers(tiers)
        .gate_threshold(args.value_or("gate-threshold", 0.05)?)
        .trace_len(args.value_or("trace-len", 30_000)?);
    if let Some(leakage) = args.value_of::<f64>("leakage")? {
        explorer = explorer.leakage_limit_mw(leakage);
    }
    if let Some(threads) = args.value_of::<usize>("threads")? {
        if threads == 0 {
            eprintln!("--threads must be >= 1");
            return Ok(2);
        }
        explorer = explorer.threads(threads);
    }
    let trace_out = args.value_of::<String>("trace-out")?;
    if let Some(path) = &trace_out {
        dse_obs::trace::install_file(path)?;
    }

    let report = explorer.run();
    if let Some(path) = &trace_out {
        // The closing event carries the run's final LedgerSummary, the
        // reference `trace-report` reconciles the per-batch deltas
        // against.
        let summary = report.ledger.summary();
        let mut fields: Vec<(&str, dse_obs::trace::FieldValue)> = vec![
            ("best_cpi", report.best_cpi.into()),
            ("hf_sims", (report.hf.evaluations as u64).into()),
            ("lf_evaluations", summary.low.evaluations.into()),
            ("lf_cache_hits", summary.low.cache_hits.into()),
            ("lf_cache_misses", summary.low.cache_misses.into()),
            ("lf_denied", summary.low.denied.into()),
            ("lf_model_time_units", summary.low.model_time_units.into()),
            ("learned_evaluations", summary.learned.evaluations.into()),
            ("learned_cache_hits", summary.learned.cache_hits.into()),
            ("learned_cache_misses", summary.learned.cache_misses.into()),
            ("learned_denied", summary.learned.denied.into()),
            ("learned_model_time_units", summary.learned.model_time_units.into()),
            ("budget_floor", summary.budget_floor.key().into()),
            ("hf_evaluations", summary.high.evaluations.into()),
            ("hf_cache_hits", summary.high.cache_hits.into()),
            ("hf_cache_misses", summary.high.cache_misses.into()),
            ("hf_denied", summary.high.denied.into()),
            ("hf_model_time_units", summary.high.model_time_units.into()),
        ];
        if let Some(budget) = summary.hf_budget {
            fields.push(("hf_budget", budget.into()));
        }
        dse_obs::trace::event("run_summary", &fields);
        dse_obs::trace::shutdown()?;
        println!("(wrote trace to {path})");
    }
    if let Some(path) = args.value_of::<String>("metrics-out")? {
        std::fs::write(&path, dse_obs::global().snapshot().to_prometheus_text())?;
        println!("(wrote metrics to {path})");
    }
    println!("best design  : {}", report.best_point.describe(explorer.space()));
    println!(
        "area         : {:.2} mm2 (limit {:.2})",
        explorer.area().area_mm2(explorer.space(), &report.best_point),
        explorer.area().limit_mm2()
    );
    println!("simulated CPI: {:.4}", report.best_cpi);
    println!("HF sims used : {}", report.hf.evaluations);
    // The run's cost ledger is the single source of budget truth: every
    // LF and HF proposal was replayed, charged or denied by it.
    println!("cost ledger  :");
    for line in report.ledger.summary().to_string().lines() {
        println!("  {line}");
    }
    println!("\nlearned rules:");
    for rule in report.rules.iter().take(12) {
        println!("  {rule}");
    }
    if let Some(path) = args.value_of::<String>("save-fnn")? {
        std::fs::write(&path, serde_json::to_string_pretty(&report.fnn)?)?;
        println!("\n(saved trained network to {path})");
    }
    Ok(0)
}

fn cmd_sweep(args: &Args) -> Result<i32, Box<dyn Error>> {
    let benchmarks: Vec<Benchmark> = if args.switch("general") {
        Benchmark::ALL.to_vec()
    } else {
        vec![parse_benchmark(&args.value_or("benchmark", "mm".to_string())?)?]
    };
    let count: u64 = args.value_or("count", 24u64)?;
    if count == 0 {
        eprintln!("sweep requires --count >= 1");
        return Ok(2);
    }
    let space = DesignSpace::boom();
    let count = count.min(space.size());
    let mut hf = SimulatorHf::for_benchmarks(
        &benchmarks,
        args.value_or("trace-len", 10_000)?,
        args.value_or("seed", 0u64)?,
        1.0,
    );
    if let Some(threads) = args.value_of::<usize>("threads")? {
        if threads == 0 {
            eprintln!("--threads must be >= 1");
            return Ok(2);
        }
        hf = hf.with_threads(threads);
    }

    // Evenly spaced encoded indices cover the space corner to corner.
    let points: Vec<_> = if count == 1 {
        vec![space.smallest()]
    } else {
        (0..count).map(|i| space.decode(i * (space.size() - 1) / (count - 1))).collect()
    };
    // Even a one-shot sweep runs through a ledger, so its accounting
    // comes out in the same shape as every other driver's.
    let mut ledger = CostLedger::new();
    let entries = ledger.evaluate_batch(&mut hf, &space, &points);

    println!("{:<12} {:>8}", "design", "CPI");
    let mut rows: Vec<(u64, f64)> = Vec::with_capacity(points.len());
    for (point, entry) in points.iter().zip(&entries) {
        let index = space.encode(point);
        let cpi = entry.cpi().expect("sweeps install no budget, so nothing is denied");
        println!("{index:<12} {cpi:>8.4}");
        rows.push((index, cpi));
    }
    println!(
        "simulated {} designs x {} traces on {} thread(s)",
        points.len(),
        benchmarks.len(),
        hf.threads(),
    );
    for line in ledger.summary().to_string().lines() {
        println!("  {line}");
    }
    maybe_write_json(args, &SweepReport { rows, ledger: ledger.summary() })?;
    Ok(0)
}

fn cmd_explain(args: &Args) -> Result<i32, Box<dyn Error>> {
    let Some(path) = args.value_of::<String>("fnn")? else {
        eprintln!("explain requires --fnn <file> (produce one with explore --save-fnn)");
        return Ok(2);
    };
    let fnn: Fnn = serde_json::from_str(&std::fs::read_to_string(&path)?)?;
    let name = args.value_or("benchmark", "mm".to_string())?;
    let benchmark = parse_benchmark(&name)?;
    let steps: usize = args.value_or("steps", 5)?;
    let explorer = Explorer::for_benchmark(benchmark).area_limit_mm2(args.value_or("area", 8.0)?);
    let space = explorer.space();
    let lf = explorer.lf_model();
    let area = explorer.area();

    let mut point = space.smallest();
    for step in 0..steps {
        let obs = fnn.observation(space, &point, lf.cpi(space, &point));
        let explanation = explain_top_action(&fnn, &obs, 3);
        println!("step {step}: grow `{}`\n{explanation}\n", explanation.output_name);
        let Some(param) = Param::from_index(explanation.output) else { break };
        match point.increased(space, param) {
            Some(next) if area.fits(space, &next) => point = next,
            _ => {
                println!("(area limit reached)");
                break;
            }
        }
    }
    println!("reached design: {}", point.describe(space));
    Ok(0)
}

/// Builds the serve/loadgen explorer template from shared flags.
fn explorer_from_args(args: &Args, default_trace: usize) -> Result<Explorer, Box<dyn Error>> {
    let mut explorer = if args.switch("general") {
        Explorer::general_purpose()
    } else {
        let name = args.value_or("benchmark", "mm".to_string())?;
        Explorer::for_benchmark(parse_benchmark(&name)?)
    };
    explorer = explorer
        .area_limit_mm2(args.value_or("area", 8.0)?)
        .seed(args.value_or("seed", 0)?)
        .trace_len(args.value_or("trace-len", default_trace)?);
    if let Some(leakage) = args.value_of::<f64>("leakage")? {
        explorer = explorer.leakage_limit_mw(leakage);
    }
    if let Some(threads) = args.value_of::<usize>("threads")? {
        explorer = explorer.threads(threads.max(1));
    }
    Ok(explorer)
}

fn serve_config_from_args(args: &Args, addr: &str) -> Result<ServeConfig, Box<dyn Error>> {
    let mut config = ServeConfig::new(explorer_from_args(args, 10_000)?);
    config.addr = addr.to_string();
    config.workers = args.value_or("workers", config.workers)?;
    config.batcher.max_batch_points = args.value_or("max-batch", 64usize)?.max(1);
    config.batcher.max_delay = std::time::Duration::from_millis(args.value_or("max-delay-ms", 2)?);
    config.batcher.queue_capacity = args.value_or("queue-cap", 128usize)?.max(1);
    if let Some(path) = args.value_of::<String>("fnn")? {
        config.fnn = Some(serde_json::from_str(&std::fs::read_to_string(&path)?)?);
    }
    Ok(config)
}

fn cmd_serve(args: &Args) -> Result<i32, Box<dyn Error>> {
    let shards: usize = args.value_or("shards", 1usize)?;
    if shards == 0 {
        eprintln!("--shards must be >= 1");
        return Ok(2);
    }
    if shards > 1 {
        return cmd_serve_sharded(args, shards);
    }
    let addr = args.value_or("addr", "127.0.0.1:8711".to_string())?;
    let trace_out = install_serve_tracer(args)?;
    let config = serve_config_from_args(args, &addr)?;
    let benchmarks: Vec<&str> = config.explorer.benchmarks().iter().map(|b| b.name()).collect();
    let server = spawn(config)?;
    // The smoke harness parses this line for the ephemeral port; keep
    // the format stable and flush it before blocking.
    println!("archdse-serve listening on {}", server.addr());
    println!("serving benchmarks: {}", benchmarks.join(", "));
    println!("POST /v1/shutdown to stop");
    use std::io::Write as _;
    std::io::stdout().flush()?;
    server.join();
    if trace_out {
        dse_obs::trace::shutdown()?;
    }
    println!("archdse-serve drained and stopped");
    Ok(0)
}

/// Installs the JSONL tracer from serve's `--trace-out` /
/// `--trace-sample` / `--shard-id` flags; returns whether one was
/// installed (so the caller flushes it on shutdown). Shard worker
/// processes are spawned with `--shard-id`, which stamps every record
/// with the shard number and pid for multi-process merging.
fn install_serve_tracer(args: &Args) -> Result<bool, Box<dyn Error>> {
    let Some(path) = args.value_of::<String>("trace-out")? else {
        return Ok(false);
    };
    dse_obs::trace::install_file(&path)?;
    dse_obs::trace::set_request_sampling(args.value_or("trace-sample", 1u64)?);
    if let Some(shard) = args.value_of::<u64>("shard-id")? {
        dse_obs::trace::set_shard(shard);
    }
    Ok(true)
}

/// The per-shard trace path a sharded `--trace-out <file>` derives:
/// `trace.jsonl` becomes `trace.shard3.jsonl` (the router keeps the
/// plain path).
fn shard_trace_path(path: &str, shard: usize) -> String {
    let p = std::path::Path::new(path);
    match (p.file_stem().and_then(|s| s.to_str()), p.extension().and_then(|e| e.to_str())) {
        (Some(stem), Some(ext)) => {
            p.with_file_name(format!("{stem}.shard{shard}.{ext}")).display().to_string()
        }
        _ => format!("{path}.shard{shard}"),
    }
}

/// The extra serve flags one traced shard worker gets: its own trace
/// file, its shard id, and the parent's sampling rate.
fn shard_trace_args(trace_out: Option<&str>, sample: u64, shard: usize) -> Vec<String> {
    match trace_out {
        Some(path) => vec![
            "--trace-out".into(),
            shard_trace_path(path, shard),
            "--shard-id".into(),
            shard.to_string(),
            "--trace-sample".into(),
            sample.to_string(),
        ],
        None => Vec::new(),
    }
}

/// A self-hosted shard: a child `archdse serve` worker process and the
/// ephemeral address it reported on stdout.
struct ShardProc {
    child: std::process::Child,
    addr: String,
    reaped: bool,
}

impl ShardProc {
    /// Re-invokes the current executable as `archdse serve <args>` and
    /// blocks until the child prints its `listening on` line.
    fn spawn(child_args: &[String]) -> Result<ShardProc, Box<dyn Error>> {
        use std::io::BufRead as _;
        let exe = std::env::current_exe()?;
        let mut child = std::process::Command::new(exe)
            .arg("serve")
            .args(child_args)
            .stdin(std::process::Stdio::null())
            .stdout(std::process::Stdio::piped())
            .stderr(std::process::Stdio::inherit())
            .spawn()?;
        let stdout = child.stdout.take().expect("child stdout was piped");
        let mut reader = std::io::BufReader::new(stdout);
        let addr = loop {
            let mut line = String::new();
            if reader.read_line(&mut line)? == 0 {
                let _ = child.kill();
                let _ = child.wait();
                return Err("shard process exited before reporting its address".into());
            }
            if let Some(addr) = line.trim().strip_prefix("archdse-serve listening on ") {
                break addr.to_string();
            }
        };
        // Keep draining the child's stdout so it can never block on a
        // full pipe.
        std::thread::spawn(move || {
            let mut sink = String::new();
            while matches!(reader.read_line(&mut sink), Ok(n) if n > 0) {
                sink.clear();
            }
        });
        Ok(ShardProc { child, addr, reaped: false })
    }

    /// Waits for the child to exit on its own (it does after a graceful
    /// shutdown fan-out); kills it if the grace period runs out.
    fn finish(&mut self, grace: std::time::Duration) {
        let deadline = std::time::Instant::now() + grace;
        loop {
            match self.child.try_wait() {
                Ok(Some(_)) => {
                    self.reaped = true;
                    return;
                }
                Ok(None) if std::time::Instant::now() < deadline => {
                    std::thread::sleep(std::time::Duration::from_millis(50));
                }
                _ => break,
            }
        }
        let _ = self.child.kill();
        let _ = self.child.wait();
        self.reaped = true;
    }
}

impl Drop for ShardProc {
    fn drop(&mut self) {
        if !self.reaped {
            let _ = self.child.kill();
            let _ = self.child.wait();
        }
    }
}

/// A self-hosted serving stack: `shards` worker processes, behind a
/// router when there is more than one.
struct ShardStack {
    children: Vec<ShardProc>,
    router: Option<archdse_serve::RouterHandle>,
    /// The front-door address clients should hit.
    addr: String,
}

impl ShardStack {
    fn boot(
        shards: usize,
        child_args_for: impl Fn(usize) -> Vec<String>,
        router_workers: usize,
    ) -> Result<Self, Box<dyn Error>> {
        let mut children = Vec::with_capacity(shards);
        for shard in 0..shards {
            children.push(ShardProc::spawn(&child_args_for(shard))?);
        }
        if shards == 1 {
            let addr = children[0].addr.clone();
            return Ok(Self { children, router: None, addr });
        }
        let mut config = RouterConfig::new(children.iter().map(|c| c.addr.clone()).collect());
        config.workers = router_workers.max(1);
        config.pool_idle_cap = router_workers.max(64);
        let router = spawn_router(config)?;
        let addr = router.addr().to_string();
        Ok(Self { children, router: Some(router), addr })
    }

    /// Gracefully drains the whole stack: `POST /v1/shutdown` at the
    /// front door (the router fans it to every shard), join the router,
    /// then wait for the worker processes to exit.
    fn teardown(mut self) {
        let _ = archdse_serve::client::post(&self.addr, "/v1/shutdown", "");
        if let Some(router) = self.router.take() {
            router.join();
        }
        for child in &mut self.children {
            child.finish(std::time::Duration::from_secs(30));
        }
    }
}

fn cmd_serve_sharded(args: &Args, shards: usize) -> Result<i32, Box<dyn Error>> {
    let addr = args.value_or("addr", "127.0.0.1:8711".to_string())?;
    // The parent process hosts the router: its records (role "router",
    // no shard id) go to the plain --trace-out path, each worker's to a
    // derived .shardN path with the same sampling rate so a trace id
    // gets the same verdict on both sides of the proxy.
    let trace_out = args.value_of::<String>("trace-out")?;
    let trace_sample = args.value_or("trace-sample", 1u64)?;
    if let Some(path) = &trace_out {
        dse_obs::trace::install_file(path)?;
        dse_obs::trace::set_request_sampling(trace_sample);
    }
    let child_args = child_serve_args(args)?;
    let mut children = Vec::with_capacity(shards);
    for shard in 0..shards {
        let mut shard_args = child_args.clone();
        shard_args.extend(shard_trace_args(trace_out.as_deref(), trace_sample, shard));
        children.push(ShardProc::spawn(&shard_args)?);
    }
    let shard_addrs: Vec<String> = children.iter().map(|c| c.addr.clone()).collect();
    let mut config = RouterConfig::new(shard_addrs.clone());
    config.addr = addr;
    config.workers = args.value_or("router-workers", 256usize)?.max(1);
    config.pool_idle_cap = config.workers.max(64);
    let router = spawn_router(config)?;
    println!("archdse-serve listening on {}", router.addr());
    println!("routing {shards} shards: {}", shard_addrs.join(", "));
    println!("POST /v1/shutdown to stop");
    use std::io::Write as _;
    std::io::stdout().flush()?;
    router.join();
    for child in &mut children {
        child.finish(std::time::Duration::from_secs(30));
    }
    if trace_out.is_some() {
        dse_obs::trace::shutdown()?;
    }
    println!("archdse-serve drained and stopped");
    Ok(0)
}

/// The serve flags a sharded parent forwards verbatim to its worker
/// processes (everything but the bind address and sharding topology).
fn child_serve_args(args: &Args) -> Result<Vec<String>, Box<dyn Error>> {
    let mut out: Vec<String> = vec!["--addr".into(), "127.0.0.1:0".into()];
    if args.switch("general") {
        out.push("--general".into());
    }
    for flag in [
        "benchmark",
        "area",
        "leakage",
        "trace-len",
        "seed",
        "threads",
        "workers",
        "max-batch",
        "max-delay-ms",
        "queue-cap",
        "fnn",
    ] {
        if let Some(value) = args.value_of::<String>(flag)? {
            out.push(format!("--{flag}"));
            out.push(value);
        }
    }
    Ok(out)
}

/// What `loadgen` is pointed at, and what must be torn down afterward.
enum LoadgenTarget {
    /// `--addr`: an externally managed server; nothing to tear down.
    External,
    /// Self-hosted in-process single server (quick default).
    InProcess(archdse_serve::ServerHandle),
    /// Self-hosted multi-process shard stack (`--shards > 1`).
    Stack(ShardStack),
}

impl LoadgenTarget {
    fn teardown(self) {
        match self {
            LoadgenTarget::External => {}
            LoadgenTarget::InProcess(server) => {
                server.shutdown();
                server.join();
            }
            LoadgenTarget::Stack(stack) => stack.teardown(),
        }
    }
}

/// The serve flags `loadgen`'s self-hosted worker processes run with.
fn loadgen_child_args(args: &Args) -> Result<Vec<String>, Box<dyn Error>> {
    Ok(vec![
        "--addr".into(),
        "127.0.0.1:0".into(),
        "--benchmark".into(),
        "ss".into(),
        "--trace-len".into(),
        args.value_or("trace-len", 2_000usize)?.to_string(),
        "--queue-cap".into(),
        args.value_or("queue-cap", 128usize)?.to_string(),
    ])
}

fn cmd_loadgen(args: &Args) -> Result<i32, Box<dyn Error>> {
    let fidelity = args.value_or("fidelity", "lf".to_string())?.to_ascii_lowercase();
    if fidelity != "auto" && dse_exec::Fidelity::from_key(&fidelity).is_none() {
        eprintln!("--fidelity must be lf, learned, hf or auto, got {fidelity:?}");
        return Ok(2);
    }
    let shards: usize = args.value_or("shards", 1usize)?;
    if shards == 0 {
        eprintln!("--shards must be >= 1");
        return Ok(2);
    }
    if args.switch("trend") {
        return cmd_loadgen_trend(args, &fidelity, shards.max(2));
    }
    let concurrency = args.value_of::<usize>("concurrency")?;
    let duration = match args.value_of::<f64>("duration")? {
        Some(s) if s <= 0.0 => {
            eprintln!("--duration must be a positive number of seconds");
            return Ok(2);
        }
        Some(s) => Some(std::time::Duration::from_secs_f64(s)),
        // --concurrency alone implies a short closed-loop run.
        None => concurrency.map(|_| std::time::Duration::from_secs(2)),
    };
    let external = args.value_of::<String>("addr")?;
    if external.is_some() && shards > 1 {
        eprintln!("--shards self-hosts a sharded stack; it conflicts with --addr");
        return Ok(2);
    }
    let trace_out = args.value_of::<String>("trace-out")?;
    if external.is_some() && trace_out.is_some() {
        eprintln!("--trace-out traces the self-hosted target; it conflicts with --addr");
        return Ok(2);
    }
    if let Some(path) = &trace_out {
        // The self-hosted single server (or the sharded stack's router)
        // runs in this process; its records land here, shard workers
        // write derived .shardN files.
        dse_obs::trace::install_file(path)?;
    }
    let (addr, target) = match external {
        Some(addr) => (addr, LoadgenTarget::External),
        None if shards == 1 => {
            // Self-host a quick in-process server for the duration.
            let explorer = Explorer::for_benchmark(Benchmark::StringSearch)
                .trace_len(args.value_or("trace-len", 2_000usize)?);
            let mut config = ServeConfig::new(explorer);
            config.batcher.queue_capacity =
                args.value_or("queue-cap", config.batcher.queue_capacity)?.max(1);
            let server = spawn(config)?;
            println!("(self-hosting a quick server on {})", server.addr());
            (server.addr().to_string(), LoadgenTarget::InProcess(server))
        }
        None => {
            let workers = concurrency.unwrap_or(64).max(64);
            let base_args = loadgen_child_args(args)?;
            let trace_out = trace_out.as_deref();
            let stack = ShardStack::boot(
                shards,
                |shard| {
                    let mut shard_args = base_args.clone();
                    shard_args.extend(shard_trace_args(trace_out, 1, shard));
                    shard_args
                },
                workers,
            )?;
            println!("(self-hosting {shards} shard processes behind {})", stack.addr);
            (stack.addr.clone(), LoadgenTarget::Stack(stack))
        }
    };
    let mut config = LoadgenConfig::new(addr.clone());
    config.clients = concurrency.unwrap_or(args.value_or("clients", 4usize)?).max(1);
    config.requests_per_client = args.value_or("requests", 8usize)?;
    config.duration = duration;
    config.points_per_request = args.value_or("points", 4usize)?.max(1);
    config.fidelity = fidelity.clone();
    config.seed = args.value_or("seed", 1u64)?;
    config.trace = args.switch("trace");
    let report = run_loadgen(&config);
    if report.is_ok() {
        if let Some(path) = args.value_of::<String>("metrics-out")? {
            match archdse_serve::client::get(&addr, "/metrics?format=prometheus") {
                Ok(response) => {
                    std::fs::write(&path, response.body)?;
                    println!("(wrote metrics to {path})");
                }
                Err(e) => eprintln!("could not scrape /metrics for --metrics-out: {e}"),
            }
        }
    }
    target.teardown();
    if trace_out.is_some() {
        dse_obs::trace::shutdown()?;
    }
    let report = report?;
    print!("{}", report.render());
    if report.coalescer.batches < report.coalescer.requests {
        println!(
            "(coalescer amortized {} requests into {} batches)",
            report.coalescer.requests, report.coalescer.batches
        );
    }
    // Persist the run as a bench-style artifact so service latency has
    // the same durable record as kernel throughput.
    let row = loadgen_row(&report, &config);
    let artifact = serde_json::to_string_pretty(&LoadgenArtifact { rows: vec![row] })?;
    dse_bench::write_results_artifact("BENCH_loadgen.json", &artifact);
    Ok(if report.failed == 0 { 0 } else { 1 })
}

/// The trend matrix: {1, N} shard stacks × a fixed concurrency ladder,
/// every cell on a freshly booted stack so caches start cold and rows
/// are comparable.
fn cmd_loadgen_trend(args: &Args, fidelity: &str, shards_n: usize) -> Result<i32, Box<dyn Error>> {
    if args.value_of::<String>("addr")?.is_some() {
        eprintln!("--trend self-hosts its serving stacks; it conflicts with --addr");
        return Ok(2);
    }
    if args.value_of::<String>("trace-out")?.is_some() {
        eprintln!("--trend boots many stacks; trace a single run without --trend instead");
        return Ok(2);
    }
    let duration_s: f64 = args.value_or("duration", 3.0)?;
    if duration_s <= 0.0 {
        eprintln!("--duration must be a positive number of seconds");
        return Ok(2);
    }
    let points = args.value_or("points", 4usize)?.max(1);
    let seed = args.value_or("seed", 1u64)?;
    let concurrencies: [usize; 3] = [16, 256, 1024];
    let child_args = loadgen_child_args(args)?;

    let mut rows = Vec::new();
    let mut all_clean = true;
    for shards in [1, shards_n] {
        for &clients in &concurrencies {
            println!("== {shards} shard(s), {clients} clients, {duration_s:.1}s closed-loop ==");
            let stack = ShardStack::boot(shards, |_| child_args.clone(), clients.max(64))?;
            let mut config = LoadgenConfig::new(stack.addr.clone());
            config.clients = clients;
            config.duration = Some(std::time::Duration::from_secs_f64(duration_s));
            config.points_per_request = points;
            config.fidelity = fidelity.to_string();
            config.seed = seed;
            config.trace = args.switch("trace");
            let report = run_loadgen(&config);
            stack.teardown();
            let report = report?;
            print!("{}", report.render());
            all_clean &= report.failed == 0;
            rows.push(loadgen_row(&report, &config));
        }
    }

    println!(
        "{:<7} {:>11} {:>9} {:>8} {:>11} {:>11} {:>9}",
        "shards", "concurrency", "requests", "failed", "offered/s", "achieved/s", "p99(ms)"
    );
    for row in &rows {
        println!(
            "{:<7} {:>11} {:>9} {:>8} {:>11.0} {:>11.0} {:>9.1}",
            row.shards,
            row.concurrency,
            row.requests,
            row.failed,
            row.offered_rps,
            row.achieved_rps,
            row.latency_us.p99 as f64 / 1000.0
        );
    }
    let artifact = serde_json::to_string_pretty(&LoadgenArtifact { rows })?;
    dse_bench::write_results_artifact("BENCH_loadgen.json", &artifact);
    Ok(if all_clean { 0 } else { 1 })
}

/// Flattens a [`LoadgenReport`] into one artifact row.
fn loadgen_row(report: &LoadgenReport, config: &LoadgenConfig) -> LoadgenRow {
    let us = |d: std::time::Duration| d.as_micros() as u64;
    LoadgenRow {
        shards: report.shards,
        concurrency: config.clients as u64,
        duration_s: report.wall.as_secs_f64(),
        points_per_request: config.points_per_request as u64,
        fidelity: config.fidelity.clone(),
        requests: report.requests,
        ok: report.ok,
        rejected: report.rejected,
        failed: report.failed,
        io_errors: report.io_errors,
        offered_rps: report.offered_rps,
        achieved_rps: report.achieved_rps,
        latency_us: LatencyMicros {
            samples: report.latency.samples,
            p50: us(report.latency.p50),
            p95: us(report.latency.p95),
            p99: us(report.latency.p99),
            max: us(report.latency.max),
        },
        delta_us: LatencyMicros {
            samples: report.delta.samples,
            p50: us(report.delta.p50),
            p95: us(report.delta.p95),
            p99: us(report.delta.p99),
            max: us(report.delta.max),
        },
        statuses: report
            .statuses
            .iter()
            .map(|s| StatusRow {
                status: u64::from(s.status),
                count: s.count,
                p50_us: us(s.latency.p50),
                p99_us: us(s.latency.p99),
                max_us: us(s.latency.max),
            })
            .collect(),
        coalescer: report.coalescer,
        tiers: report
            .ledger
            .sections()
            .iter()
            .map(|(fidelity, section)| TierCounts {
                tier: fidelity.key().to_string(),
                answered: section.evaluations,
                cached: section.cache_hits,
            })
            .collect(),
        escalations: report.escalations,
    }
}

/// Per-tier answered counts in the loadgen artifact.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct TierCounts {
    tier: String,
    answered: u64,
    cached: u64,
}

/// Latency percentiles in microseconds, for the loadgen artifact.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct LatencyMicros {
    samples: u64,
    p50: u64,
    p95: u64,
    p99: u64,
    max: u64,
}

/// Attempt counts and round-trip percentiles for one HTTP status.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct StatusRow {
    status: u64,
    count: u64,
    p50_us: u64,
    p99_us: u64,
    max_us: u64,
}

/// One measured configuration in `results/BENCH_loadgen.json`.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct LoadgenRow {
    shards: u64,
    concurrency: u64,
    duration_s: f64,
    points_per_request: u64,
    fidelity: String,
    requests: u64,
    ok: u64,
    rejected: u64,
    failed: u64,
    io_errors: u64,
    offered_rps: f64,
    achieved_rps: f64,
    latency_us: LatencyMicros,
    /// Client RTT minus server-reported time percentiles; all-zero
    /// unless the run used `--trace`.
    delta_us: LatencyMicros,
    statuses: Vec<StatusRow>,
    coalescer: archdse_serve::CoalescerStats,
    /// Answered/cached counts per fidelity tier, cheapest first.
    tiers: Vec<TierCounts>,
    /// Gate escalations the server recorded during the run.
    escalations: u64,
}

/// The `results/BENCH_loadgen.json` payload: one row per measured
/// configuration. A plain run records one row; `--trend` records the
/// whole 1-shard vs N-shard × concurrency matrix.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct LoadgenArtifact {
    rows: Vec<LoadgenRow>,
}

fn cmd_trace_report(args: &Args) -> Result<i32, Box<dyn Error>> {
    let Some(path) = args.value_of::<String>("trace")? else {
        eprintln!("trace-report requires --trace <file> (produce one with explore --trace-out)");
        return Ok(2);
    };
    if args.switch("requests") {
        let mut files = Vec::new();
        for part in path.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            files.push((part.to_string(), std::fs::read_to_string(part)?));
        }
        let report = match crate::trace_report::summarize_requests(&files) {
            Ok(report) => report,
            Err(e) => {
                eprintln!("{e}");
                return Ok(1);
            }
        };
        print!("{}", crate::trace_report::render_requests(&report));
        return Ok(if crate::trace_report::verify_requests(&report).is_ok() { 0 } else { 1 });
    }
    let top: usize = args.value_or("top", 10)?;
    let text = std::fs::read_to_string(&path)?;
    let summary = match crate::trace_report::summarize(&text, top) {
        Ok(summary) => summary,
        Err(e) => {
            eprintln!("{path}: {e}");
            return Ok(1);
        }
    };
    print!("{}", crate::trace_report::render(&summary));
    Ok(if crate::trace_report::reconcile(&summary).is_ok() { 0 } else { 1 })
}

fn cmd_check_metrics(args: &Args) -> Result<i32, Box<dyn Error>> {
    let Some(path) = args.value_of::<String>("file")? else {
        eprintln!("check-metrics requires --file <path> (a Prometheus text exposition)");
        return Ok(2);
    };
    let text = std::fs::read_to_string(&path)?;
    match dse_obs::check_text(&text) {
        Ok(summary) => {
            println!("{path}: {summary}");
            Ok(0)
        }
        Err(errors) => {
            eprintln!("{path}: {} problem(s)", errors.len());
            for error in &errors {
                eprintln!("  {error}");
            }
            Ok(1)
        }
    }
}

/// Reads the required `<elf>` positional of `ingest`/`workload-diff`;
/// an `Err` carries the exit code after the message was printed.
fn read_elf_positional(command: &str, args: &Args) -> Result<(String, Vec<u8>), i32> {
    let Some(path) = args.positionals().first() else {
        eprintln!("{command} requires an ELF path: archdse {command} <elf> [options]");
        eprintln!("run `archdse help` for details");
        return Err(2);
    };
    match std::fs::read(path) {
        Ok(bytes) => Ok((path.clone(), bytes)),
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            eprintln!("expected a statically linked RV64 ELF executable");
            Err(2)
        }
    }
}

/// Ingests the `<elf>` positional; prints the named ingestion error and
/// maps it to exit 2 so scripted callers can distinguish "bad input"
/// from runtime failures.
fn ingest_from_args(
    command: &str,
    args: &Args,
) -> Result<Result<dse_ingest::Ingested, i32>, Box<dyn Error>> {
    let (path, bytes) = match read_elf_positional(command, args) {
        Ok(read) => read,
        Err(code) => return Ok(Err(code)),
    };
    let stem = std::path::Path::new(&path)
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("workload")
        .to_string();
    let name = args.value_or("name", stem)?;
    let max_instrs = args.value_or("max-instrs", dse_ingest::ExecConfig::default().max_instrs)?;
    match dse_ingest::ingest_elf(&name, &bytes, dse_ingest::ExecConfig { max_instrs }) {
        Ok(ingested) => Ok(Ok(ingested)),
        Err(e) => {
            eprintln!("{path}: {e}");
            Ok(Err(2))
        }
    }
}

fn cmd_ingest(args: &Args) -> Result<i32, Box<dyn Error>> {
    let ingested = match ingest_from_args("ingest", args)? {
        Ok(ingested) => ingested,
        Err(code) => return Ok(code),
    };
    let p = &ingested.profile;
    println!("workload      : {}", ingested.name);
    println!("instructions  : {}", ingested.trace.len());
    println!("exit code     : {}", ingested.exit_code);
    println!(
        "mix           : int_alu {:.3}  int_mul {:.3}  load {:.3}  store {:.3}  fp {:.3}  branch {:.3}",
        p.mix.int_alu, p.mix.int_mul, p.mix.load, p.mix.store, p.mix.fp, p.mix.branch
    );
    println!("mean dep dist : {:.2}", p.mean_dep_distance);
    println!("mispredict    : {:.4}", p.branch_mispredict_rate);
    println!(
        "streaming     : {:.4}   mlp: {:.3}   conflict: {:.3}",
        p.streaming_frac, p.mlp, p.conflict_frac
    );
    if let Some(out) = args.value_of::<String>("trace-out")? {
        let bytes = dse_ingest::trace_file::encode_trace(&ingested.trace)?;
        std::fs::write(&out, &bytes)?;
        println!("(wrote {}-byte trace to {out})", bytes.len());
    }
    if let Some(out) = args.value_of::<String>("profile-out")? {
        let mut json = serde_json::to_string_pretty(&ingested.profile)?;
        json.push('\n');
        std::fs::write(&out, json)?;
        println!("(wrote profile to {out})");
    }
    Ok(0)
}

/// One metric row of the `workload-diff` report.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct DiffRow {
    metric: String,
    synthetic: f64,
    ingested: f64,
    delta: f64,
}

/// The `results/workload_diff.json` payload: per-metric deltas between
/// a synthetic benchmark profile and an ingested one.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct WorkloadDiffReport {
    workload: String,
    benchmark: String,
    instructions: u64,
    exit_code: u64,
    rows: Vec<DiffRow>,
    /// `Some` only when `--golden` was passed.
    golden_matched: Option<bool>,
}

/// The scalar metrics both profile kinds expose, in report order.
fn profile_metrics(p: &dse_workloads::WorkloadProfile) -> Vec<(&'static str, f64)> {
    vec![
        ("mix.int_alu", p.mix.int_alu),
        ("mix.int_mul", p.mix.int_mul),
        ("mix.load", p.mix.load),
        ("mix.store", p.mix.store),
        ("mix.fp", p.mix.fp),
        ("mix.branch", p.mix.branch),
        ("mean_dep_distance", p.mean_dep_distance),
        ("branch_mispredict_rate", p.branch_mispredict_rate),
        ("streaming_frac", p.streaming_frac),
        ("mlp", p.mlp),
        ("conflict_frac", p.conflict_frac),
    ]
}

fn cmd_workload_diff(args: &Args) -> Result<i32, Box<dyn Error>> {
    let ingested = match ingest_from_args("workload-diff", args)? {
        Ok(ingested) => ingested,
        Err(code) => return Ok(code),
    };
    let benchmark = parse_benchmark(&args.value_or("benchmark", "mm".to_string())?)?;
    let synthetic = benchmark.profile();

    let rows: Vec<DiffRow> = profile_metrics(&synthetic)
        .into_iter()
        .zip(profile_metrics(&ingested.profile))
        .map(|((metric, s), (_, i))| DiffRow {
            metric: metric.to_string(),
            synthetic: s,
            ingested: i,
            delta: i - s,
        })
        .collect();

    println!("{:<24} {:>12} {:>12} {:>12}", "metric", "synthetic", "ingested", "delta");
    for row in &rows {
        println!(
            "{:<24} {:>12.4} {:>12.4} {:>+12.4}",
            row.metric, row.synthetic, row.ingested, row.delta
        );
    }
    println!("(synthetic = {}, ingested = {})", benchmark.name(), ingested.name);

    // With --golden, the ingested profile must reproduce a committed
    // golden byte for byte (same serializer, deterministic pipeline).
    let mut golden_matched = None;
    if let Some(golden_path) = args.value_of::<String>("golden")? {
        let golden = std::fs::read_to_string(&golden_path)?;
        let ours = serde_json::to_string_pretty(&ingested.profile)?;
        let matched = golden.trim_end() == ours.trim_end();
        golden_matched = Some(matched);
        if matched {
            println!("golden {golden_path}: profile matches");
        } else {
            eprintln!("golden {golden_path}: profile MISMATCH");
            for (g, o) in golden.trim_end().lines().zip(ours.trim_end().lines()) {
                if g != o {
                    eprintln!("  golden  : {g}");
                    eprintln!("  ingested: {o}");
                }
            }
        }
    }

    let report = WorkloadDiffReport {
        workload: ingested.name.clone(),
        benchmark: benchmark.name().to_string(),
        instructions: ingested.trace.len() as u64,
        exit_code: ingested.exit_code,
        rows,
        golden_matched,
    };
    dse_bench::write_results_artifact(
        "workload_diff.json",
        &serde_json::to_string_pretty(&report)?,
    );
    maybe_write_json(args, &report)?;
    Ok(if golden_matched == Some(false) { 1 } else { 0 })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(tokens: &[&str]) -> Args {
        Args::parse(tokens.iter().map(|s| s.to_string())).unwrap()
    }

    #[test]
    fn benchmark_names_parse() {
        for b in Benchmark::ALL {
            assert_eq!(parse_benchmark(b.name()).unwrap(), b);
        }
        assert!(parse_benchmark("nope").is_err());
    }

    #[test]
    fn help_and_space_succeed() {
        assert_eq!(run(&args(&["help"])).unwrap(), 0);
        assert_eq!(run(&args(&["space"])).unwrap(), 0);
    }

    #[test]
    fn unknown_command_exits_nonzero() {
        assert_eq!(run(&args(&["frobnicate"])).unwrap(), 2);
    }

    #[test]
    fn misspelled_flags_are_rejected_not_ignored() {
        // `--seeed` must not silently fall back to the default seed.
        assert_eq!(run(&args(&["explore", "--seeed", "7"])).unwrap(), 2);
        assert_eq!(run(&args(&["sweep", "--trace-length", "500"])).unwrap(), 2);
        assert_eq!(run(&args(&["space", "--verbose"])).unwrap(), 2);
        assert_eq!(run(&args(&["serve", "--port", "8711"])).unwrap(), 2);
        assert_eq!(run(&args(&["loadgen", "--client", "4"])).unwrap(), 2);
        assert_eq!(run(&args(&["table2", "--fulll"])).unwrap(), 2);
    }

    #[test]
    fn every_command_has_a_flag_table() {
        for &command in COMMANDS {
            // Reaching the table at all is the test; an unknown command
            // would fall into the artifact default arm.
            let _ = allowed_flags(command);
        }
        assert!(allowed_flags("table2").contains(&"full"));
        assert!(allowed_flags("serve").contains(&"max-batch"));
        assert!(allowed_flags("serve").contains(&"shards"));
        assert!(allowed_flags("loadgen").contains(&"concurrency"));
        assert!(allowed_flags("loadgen").contains(&"trend"));
    }

    #[test]
    fn loadgen_self_hosts_and_coalesces() {
        let a = args(&["loadgen", "--clients", "3", "--requests", "4", "--points", "2"]);
        assert_eq!(run(&a).unwrap(), 0);
    }

    #[test]
    fn loadgen_rejects_bad_fidelity() {
        assert_eq!(run(&args(&["loadgen", "--fidelity", "mid"])).unwrap(), 2);
    }

    #[test]
    fn loadgen_rejects_contradictory_sharding_flags() {
        // Zero shards is meaningless for both commands.
        assert_eq!(run(&args(&["loadgen", "--shards", "0"])).unwrap(), 2);
        assert_eq!(run(&args(&["serve", "--shards", "0"])).unwrap(), 2);
        // A self-hosted shard stack conflicts with an external target.
        let a = args(&["loadgen", "--addr", "127.0.0.1:1", "--shards", "2"]);
        assert_eq!(run(&a).unwrap(), 2);
        let a = args(&["loadgen", "--trend", "--addr", "127.0.0.1:1"]);
        assert_eq!(run(&a).unwrap(), 2);
        // Closed-loop runs need a positive window.
        let a = args(&["loadgen", "--concurrency", "4", "--duration", "0"]);
        assert_eq!(run(&a).unwrap(), 2);
        assert_eq!(run(&args(&["loadgen", "--trend", "--duration", "-1"])).unwrap(), 2);
    }

    #[test]
    fn loadgen_closed_loop_runs_in_process() {
        // A short closed-loop window against the in-process server: every
        // request must be served (503s retry, so failed stays zero).
        let a = args(&[
            "loadgen",
            "--concurrency",
            "4",
            "--duration",
            "0.3",
            "--points",
            "2",
            "--trace-len",
            "500",
        ]);
        assert_eq!(run(&a).unwrap(), 0);
    }

    #[test]
    fn explore_quick_runs_end_to_end() {
        let a = args(&[
            "explore",
            "--benchmark",
            "ss",
            "--area",
            "6.0",
            "--lf-episodes",
            "15",
            "--hf-budget",
            "2",
            "--trace-len",
            "1000",
        ]);
        assert_eq!(run(&a).unwrap(), 0);
    }

    #[test]
    fn sweep_runs_and_writes_json() {
        let dir = std::env::temp_dir().join("archdse_cli_test_sweep");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sweep.json");
        let path_str = path.to_str().unwrap();
        let a = args(&[
            "sweep",
            "--benchmark",
            "ss",
            "--count",
            "4",
            "--trace-len",
            "500",
            "--threads",
            "2",
            "--json",
            path_str,
        ]);
        assert_eq!(run(&a).unwrap(), 0);
        let report: SweepReport =
            serde_json::from_str(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(report.rows.len(), 4);
        assert!(report.rows.iter().all(|&(_, cpi)| cpi > 0.0 && cpi.is_finite()));
        // The ledger in the report accounts for exactly the swept designs.
        assert_eq!(report.ledger.high.evaluations, 4);
        assert_eq!(report.ledger.high.denied, 0);
        assert_eq!(report.ledger.hf_budget, None);
        assert!(report.ledger.high.model_time_units > 0.0);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn sweep_with_zero_count_exits_nonzero() {
        assert_eq!(run(&args(&["sweep", "--count", "0"])).unwrap(), 2);
    }

    #[test]
    fn explore_saves_a_network_that_explain_can_load() {
        let dir = std::env::temp_dir().join("archdse_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("fnn.json");
        let path_str = path.to_str().unwrap();
        let a = args(&[
            "explore",
            "--benchmark",
            "ss",
            "--area",
            "6.0",
            "--lf-episodes",
            "10",
            "--hf-budget",
            "2",
            "--trace-len",
            "1000",
            "--save-fnn",
            path_str,
        ]);
        assert_eq!(run(&a).unwrap(), 0);
        assert!(path.exists());
        let e = args(&["explain", "--fnn", path_str, "--benchmark", "ss", "--steps", "3"]);
        assert_eq!(run(&e).unwrap(), 0);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn explain_without_fnn_exits_nonzero() {
        assert_eq!(run(&args(&["explain"])).unwrap(), 2);
    }

    fn fixture_path(stem: &str) -> String {
        format!("{}/../ingest/tests/fixtures/{stem}", env!("CARGO_MANIFEST_DIR"))
    }

    #[test]
    fn stray_positionals_are_rejected_per_command() {
        // Commands that take no operands still reject them, now at the
        // dispatch layer instead of the parser.
        assert_eq!(run(&args(&["explore", "oops"])).unwrap(), 2);
        // `ingest` takes exactly one.
        assert_eq!(run(&args(&["ingest", "a.elf", "b.elf"])).unwrap(), 2);
    }

    #[test]
    fn ingest_writes_trace_and_profile_matching_the_golden() {
        let dir = std::env::temp_dir().join("archdse_cli_test_ingest");
        std::fs::create_dir_all(&dir).unwrap();
        let trace_path = dir.join("loop_sum.trace");
        let profile_path = dir.join("loop_sum.profile.json");
        let a = args(&[
            "ingest",
            &fixture_path("loop_sum.elf"),
            "--trace-out",
            trace_path.to_str().unwrap(),
            "--profile-out",
            profile_path.to_str().unwrap(),
        ]);
        assert_eq!(run(&a).unwrap(), 0);
        let decoded = dse_ingest::trace_file::decode_trace(&std::fs::read(&trace_path).unwrap())
            .expect("the written trace must round-trip");
        assert_eq!(decoded.len(), 2823);
        let golden = std::fs::read_to_string(fixture_path("loop_sum.profile.json")).unwrap();
        let written = std::fs::read_to_string(&profile_path).unwrap();
        assert_eq!(written, golden, "--profile-out must reproduce the committed golden");
        std::fs::remove_file(&trace_path).unwrap();
        std::fs::remove_file(&profile_path).unwrap();
    }

    #[test]
    fn ingest_bad_inputs_exit_2_with_named_errors() {
        // Missing path entirely.
        assert_eq!(run(&args(&["ingest"])).unwrap(), 2);
        // Nonexistent file.
        assert_eq!(run(&args(&["ingest", "/no/such/file.elf"])).unwrap(), 2);
        // A file that is not an ELF.
        let dir = std::env::temp_dir().join("archdse_cli_test_ingest_bad");
        std::fs::create_dir_all(&dir).unwrap();
        let junk = dir.join("junk.elf");
        std::fs::write(&junk, b"definitely not an elf").unwrap();
        assert_eq!(run(&args(&["ingest", junk.to_str().unwrap()])).unwrap(), 2);
        std::fs::remove_file(&junk).unwrap();
        // Misspelled flags are rejected by the flag table.
        assert_eq!(run(&args(&["ingest", "x.elf", "--trace-output", "t"])).unwrap(), 2);
        assert_eq!(run(&args(&["workload-diff", "x.elf", "--gold", "g"])).unwrap(), 2);
    }

    #[test]
    fn workload_diff_matches_golden_and_flags_mismatch() {
        // Against the *other* fixture's golden: mismatch exits 1.
        let b = args(&[
            "workload-diff",
            &fixture_path("stride_c.elf"),
            "--golden",
            &fixture_path("loop_sum.profile.json"),
        ]);
        assert_eq!(run(&b).unwrap(), 1);
        // Against its own golden: exit 0 and a persisted artifact.
        let a = args(&[
            "workload-diff",
            &fixture_path("stride_c.elf"),
            "--benchmark",
            "mm",
            "--golden",
            &fixture_path("stride_c.profile.json"),
        ]);
        assert_eq!(run(&a).unwrap(), 0);
        let artifact = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../../results/workload_diff.json");
        let report: WorkloadDiffReport =
            serde_json::from_str(&std::fs::read_to_string(&artifact).unwrap()).unwrap();
        assert_eq!(report.workload, "stride_c");
        assert_eq!(report.benchmark, "mm");
        assert_eq!(report.golden_matched, Some(true));
        assert_eq!(report.rows.len(), 11);
        assert!(
            report.rows.iter().any(|r| r.delta != 0.0),
            "a real binary differs from mm somewhere"
        );
    }
}
