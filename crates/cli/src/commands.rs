//! Subcommand implementations.

use std::error::Error;

use serde::{Deserialize, Serialize};

use archdse::eval::SimulatorHf;
use archdse::experiments::{
    ablations, fig5, fig6, fig7, table2, AblationConfig, Fig5Config, Fig6Config, Fig7Config,
    Table2Config,
};
use archdse::{CostLedger, DesignSpace, Explorer, Fnn, LedgerSummary, Param};
use dse_fnn::explain_top_action;
use dse_mfrl::{Constraint as _, LowFidelity as _};
use dse_workloads::Benchmark;

use crate::Args;

/// Usage text printed by `archdse help` or on a bad invocation.
pub const USAGE: &str = "\
archdse — explainable FNN + multi-fidelity RL micro-architecture DSE

USAGE:
  archdse <COMMAND> [OPTIONS]

COMMANDS:
  space                      print the Table 1 design space
  explore                    run one DSE flow and print design + rules
      --benchmark <name>     dijkstra|mm|fp-vvadd|quicksort|fft|ss
      --general              optimize the six-benchmark average instead
      --area <mm2>           area limit (default 8.0)
      --leakage <mw>         optional static-power budget
      --seed <n>             master seed (default 0)
      --lf-episodes <n>      LF training episodes (default 300)
      --hf-budget <n>        HF simulations (default 9)
      --trace-len <n>        trace length (default 30000)
      --threads <n>          HF worker threads (default: DSE_THREADS env
                             var, else all cores; results are identical)
      --save-fnn <file>      persist the trained network as JSON
  sweep                      simulate a spread of designs in one parallel
                             batch and tabulate their CPIs
      --benchmark <name>     workload (default mm)
      --general              sweep the six-benchmark average instead
      --count <n>            designs, evenly spaced over the space (default 24)
      --trace-len <n>        trace length (default 10000)
      --threads <n>          worker threads (default as for explore)
      --seed <n>             trace seed (default 0)
      --json <file>          also write { rows, ledger } as JSON
  explain                    walk a saved network greedily, explaining
                             each decision's top rules
      --fnn <file>           trained network from `explore --save-fnn`
      --benchmark <name>     workload for the CPI observations
      --area <mm2>           area limit (default 8.0)
      --steps <n>            decisions to explain (default 5)
  table2 | fig5 | fig6 | fig7 | ablations
                             regenerate a paper artifact
      --full                 paper-scale budgets (default: quick)
      --json <file>          also write the result as JSON
  help                       show this text
";

fn parse_benchmark(name: &str) -> Result<Benchmark, dse_workloads::ParseBenchmarkError> {
    name.parse()
}

/// The JSON payload of `archdse sweep --json`: the `(encoded index,
/// CPI)` rows plus the sweep's cost ledger.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct SweepReport {
    rows: Vec<(u64, f64)>,
    ledger: LedgerSummary,
}

fn maybe_write_json<T: Serialize>(args: &Args, value: &T) -> Result<(), Box<dyn Error>> {
    if let Some(path) = args.value_of::<String>("json")? {
        std::fs::write(&path, serde_json::to_string_pretty(value)?)?;
        println!("(wrote JSON to {path})");
    }
    Ok(())
}

/// Dispatches a parsed invocation; returns the process exit code.
///
/// # Errors
///
/// Returns any argument, IO or serialization error for `main` to print.
pub fn run(args: &Args) -> Result<i32, Box<dyn Error>> {
    match args.command() {
        Some("space") => cmd_space(),
        Some("explore") => cmd_explore(args),
        Some("sweep") => cmd_sweep(args),
        Some("explain") => cmd_explain(args),
        Some("table2") => {
            let config =
                if args.switch("full") { Table2Config::default() } else { Table2Config::quick() };
            let result = table2(&config);
            println!("{}", result.to_markdown());
            maybe_write_json(args, &result)?;
            Ok(0)
        }
        Some("fig5") => {
            let config =
                if args.switch("full") { Fig5Config::default() } else { Fig5Config::quick() };
            let result = fig5(&config);
            println!("{}", result.to_markdown());
            maybe_write_json(args, &result)?;
            Ok(0)
        }
        Some("fig6") => {
            let config =
                if args.switch("full") { Fig6Config::default() } else { Fig6Config::quick() };
            let result = fig6(&config);
            println!("{}", result.to_markdown());
            maybe_write_json(args, &result)?;
            Ok(0)
        }
        Some("fig7") => {
            let config =
                if args.switch("full") { Fig7Config::default() } else { Fig7Config::quick() };
            let result = fig7(&config);
            println!("{}", result.to_markdown());
            maybe_write_json(args, &result)?;
            Ok(0)
        }
        Some("ablations") => {
            let config = if args.switch("full") {
                AblationConfig::default()
            } else {
                AblationConfig::quick()
            };
            let result = ablations(&config);
            println!("{}", result.to_markdown());
            maybe_write_json(args, &result)?;
            Ok(0)
        }
        Some("help") | None => {
            println!("{USAGE}");
            Ok(0)
        }
        Some(other) => {
            eprintln!("unknown command {other:?}\n\n{USAGE}");
            Ok(2)
        }
    }
}

fn cmd_space() -> Result<i32, Box<dyn Error>> {
    let space = DesignSpace::boom();
    println!("{:<18} candidates", "parameter");
    for p in Param::ALL {
        let cands: Vec<String> = space.candidates(p).iter().map(|v| format!("{v}")).collect();
        println!("{:<18} {}", p.name(), cands.join(", "));
    }
    println!("total designs: {}", space.size());
    Ok(0)
}

fn cmd_explore(args: &Args) -> Result<i32, Box<dyn Error>> {
    let mut explorer = if args.switch("general") {
        Explorer::general_purpose()
    } else {
        let name = args.value_or("benchmark", "mm".to_string())?;
        Explorer::for_benchmark(parse_benchmark(&name)?)
    };
    explorer = explorer
        .area_limit_mm2(args.value_or("area", 8.0)?)
        .seed(args.value_or("seed", 0)?)
        .lf_episodes(args.value_or("lf-episodes", 300)?)
        .hf_budget(args.value_or("hf-budget", 9)?)
        .trace_len(args.value_or("trace-len", 30_000)?);
    if let Some(leakage) = args.value_of::<f64>("leakage")? {
        explorer = explorer.leakage_limit_mw(leakage);
    }
    if let Some(threads) = args.value_of::<usize>("threads")? {
        if threads == 0 {
            eprintln!("--threads must be >= 1");
            return Ok(2);
        }
        explorer = explorer.threads(threads);
    }

    let report = explorer.run();
    println!("best design  : {}", report.best_point.describe(explorer.space()));
    println!(
        "area         : {:.2} mm2 (limit {:.2})",
        explorer.area().area_mm2(explorer.space(), &report.best_point),
        explorer.area().limit_mm2()
    );
    println!("simulated CPI: {:.4}", report.best_cpi);
    println!("HF sims used : {}", report.hf.evaluations);
    // The run's cost ledger is the single source of budget truth: every
    // LF and HF proposal was replayed, charged or denied by it.
    println!("cost ledger  :");
    for line in report.ledger.summary().to_string().lines() {
        println!("  {line}");
    }
    println!("\nlearned rules:");
    for rule in report.rules.iter().take(12) {
        println!("  {rule}");
    }
    if let Some(path) = args.value_of::<String>("save-fnn")? {
        std::fs::write(&path, serde_json::to_string_pretty(&report.fnn)?)?;
        println!("\n(saved trained network to {path})");
    }
    Ok(0)
}

fn cmd_sweep(args: &Args) -> Result<i32, Box<dyn Error>> {
    let benchmarks: Vec<Benchmark> = if args.switch("general") {
        Benchmark::ALL.to_vec()
    } else {
        vec![parse_benchmark(&args.value_or("benchmark", "mm".to_string())?)?]
    };
    let count: u64 = args.value_or("count", 24u64)?;
    if count == 0 {
        eprintln!("sweep requires --count >= 1");
        return Ok(2);
    }
    let space = DesignSpace::boom();
    let count = count.min(space.size());
    let mut hf = SimulatorHf::for_benchmarks(
        &benchmarks,
        args.value_or("trace-len", 10_000)?,
        args.value_or("seed", 0u64)?,
        1.0,
    );
    if let Some(threads) = args.value_of::<usize>("threads")? {
        if threads == 0 {
            eprintln!("--threads must be >= 1");
            return Ok(2);
        }
        hf = hf.with_threads(threads);
    }

    // Evenly spaced encoded indices cover the space corner to corner.
    let points: Vec<_> = if count == 1 {
        vec![space.smallest()]
    } else {
        (0..count).map(|i| space.decode(i * (space.size() - 1) / (count - 1))).collect()
    };
    // Even a one-shot sweep runs through a ledger, so its accounting
    // comes out in the same shape as every other driver's.
    let mut ledger = CostLedger::new();
    let entries = ledger.evaluate_batch(&mut hf, &space, &points);

    println!("{:<12} {:>8}", "design", "CPI");
    let mut rows: Vec<(u64, f64)> = Vec::with_capacity(points.len());
    for (point, entry) in points.iter().zip(&entries) {
        let index = space.encode(point);
        let cpi = entry.cpi().expect("sweeps install no budget, so nothing is denied");
        println!("{index:<12} {cpi:>8.4}");
        rows.push((index, cpi));
    }
    println!(
        "simulated {} designs x {} traces on {} thread(s)",
        points.len(),
        benchmarks.len(),
        hf.threads(),
    );
    for line in ledger.summary().to_string().lines() {
        println!("  {line}");
    }
    maybe_write_json(args, &SweepReport { rows, ledger: ledger.summary() })?;
    Ok(0)
}

fn cmd_explain(args: &Args) -> Result<i32, Box<dyn Error>> {
    let Some(path) = args.value_of::<String>("fnn")? else {
        eprintln!("explain requires --fnn <file> (produce one with explore --save-fnn)");
        return Ok(2);
    };
    let fnn: Fnn = serde_json::from_str(&std::fs::read_to_string(&path)?)?;
    let name = args.value_or("benchmark", "mm".to_string())?;
    let benchmark = parse_benchmark(&name)?;
    let steps: usize = args.value_or("steps", 5)?;
    let explorer = Explorer::for_benchmark(benchmark).area_limit_mm2(args.value_or("area", 8.0)?);
    let space = explorer.space();
    let lf = explorer.lf_model();
    let area = explorer.area();

    let mut point = space.smallest();
    for step in 0..steps {
        let obs = fnn.observation(space, &point, lf.cpi(space, &point));
        let explanation = explain_top_action(&fnn, &obs, 3);
        println!("step {step}: grow `{}`\n{explanation}\n", explanation.output_name);
        let Some(param) = Param::from_index(explanation.output) else { break };
        match point.increased(space, param) {
            Some(next) if area.fits(space, &next) => point = next,
            _ => {
                println!("(area limit reached)");
                break;
            }
        }
    }
    println!("reached design: {}", point.describe(space));
    Ok(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(tokens: &[&str]) -> Args {
        Args::parse(tokens.iter().map(|s| s.to_string())).unwrap()
    }

    #[test]
    fn benchmark_names_parse() {
        for b in Benchmark::ALL {
            assert_eq!(parse_benchmark(b.name()).unwrap(), b);
        }
        assert!(parse_benchmark("nope").is_err());
    }

    #[test]
    fn help_and_space_succeed() {
        assert_eq!(run(&args(&["help"])).unwrap(), 0);
        assert_eq!(run(&args(&["space"])).unwrap(), 0);
    }

    #[test]
    fn unknown_command_exits_nonzero() {
        assert_eq!(run(&args(&["frobnicate"])).unwrap(), 2);
    }

    #[test]
    fn explore_quick_runs_end_to_end() {
        let a = args(&[
            "explore",
            "--benchmark",
            "ss",
            "--area",
            "6.0",
            "--lf-episodes",
            "15",
            "--hf-budget",
            "2",
            "--trace-len",
            "1000",
        ]);
        assert_eq!(run(&a).unwrap(), 0);
    }

    #[test]
    fn sweep_runs_and_writes_json() {
        let dir = std::env::temp_dir().join("archdse_cli_test_sweep");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sweep.json");
        let path_str = path.to_str().unwrap();
        let a = args(&[
            "sweep",
            "--benchmark",
            "ss",
            "--count",
            "4",
            "--trace-len",
            "500",
            "--threads",
            "2",
            "--json",
            path_str,
        ]);
        assert_eq!(run(&a).unwrap(), 0);
        let report: SweepReport =
            serde_json::from_str(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(report.rows.len(), 4);
        assert!(report.rows.iter().all(|&(_, cpi)| cpi > 0.0 && cpi.is_finite()));
        // The ledger in the report accounts for exactly the swept designs.
        assert_eq!(report.ledger.high.evaluations, 4);
        assert_eq!(report.ledger.high.denied, 0);
        assert_eq!(report.ledger.hf_budget, None);
        assert!(report.ledger.high.model_time_units > 0.0);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn sweep_with_zero_count_exits_nonzero() {
        assert_eq!(run(&args(&["sweep", "--count", "0"])).unwrap(), 2);
    }

    #[test]
    fn explore_saves_a_network_that_explain_can_load() {
        let dir = std::env::temp_dir().join("archdse_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("fnn.json");
        let path_str = path.to_str().unwrap();
        let a = args(&[
            "explore",
            "--benchmark",
            "ss",
            "--area",
            "6.0",
            "--lf-episodes",
            "10",
            "--hf-budget",
            "2",
            "--trace-len",
            "1000",
            "--save-fnn",
            path_str,
        ]);
        assert_eq!(run(&a).unwrap(), 0);
        assert!(path.exists());
        let e = args(&["explain", "--fnn", path_str, "--benchmark", "ss", "--steps", "3"]);
        assert_eq!(run(&e).unwrap(), 0);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn explain_without_fnn_exits_nonzero() {
        assert_eq!(run(&args(&["explain"])).unwrap(), 2);
    }
}
