//! Backward compatibility of the trace readers: traces written by
//! earlier revisions of the tracer — before records carried `shard` /
//! `pid` stamps, span links, or `request` timelines — must keep
//! parsing with defaults, and their ledger deltas must still reconcile.
//!
//! The fixtures are verbatim golden copies of the two earlier schema
//! generations: `trace_pr5_two_tier.jsonl` (LF+HF only, no `learned_*`
//! fields) and `trace_pr7_three_tier.jsonl` (adds the learned tier and
//! `tier_gate` events). Do not regenerate them; they pin the past.

use archdse_cli::trace_report;

fn fixture(name: &str) -> String {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures").join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display()))
}

#[test]
fn pr5_era_two_tier_trace_parses_and_reconciles() {
    let text = fixture("trace_pr5_two_tier.jsonl");
    let summary = trace_report::summarize(&text, 5).expect("legacy trace parses");
    assert_eq!(summary.spans, 3);
    assert_eq!(summary.per_fidelity["lf"].evaluations, 5);
    assert_eq!(summary.per_fidelity["hf"].evaluations, 2);
    // No learned tier anywhere: both sides default to zero and agree.
    assert_eq!(summary.run_summary.unwrap().learned, (0, 0, 0, 0, 0.0));
    assert!(trace_report::reconcile(&summary).is_ok());
    // And no request records, which `--requests` mode reports as such
    // rather than choking on the old schema.
    assert_eq!(summary.requests, 0);
}

#[test]
fn pr7_era_three_tier_trace_parses_and_reconciles() {
    let text = fixture("trace_pr7_three_tier.jsonl");
    let summary = trace_report::summarize(&text, 5).expect("legacy trace parses");
    assert_eq!(summary.per_fidelity["learned"].cache_hits, 1);
    assert!(trace_report::reconcile(&summary).is_ok());
}

#[test]
fn requests_mode_skips_legacy_records_without_erroring() {
    let files = vec![
        ("pr5".to_string(), fixture("trace_pr5_two_tier.jsonl")),
        ("pr7".to_string(), fixture("trace_pr7_three_tier.jsonl")),
    ];
    let report = trace_report::summarize_requests(&files).expect("legacy records skip cleanly");
    assert_eq!(report.rows.len(), 0);
    // An empty merge is a verification failure (nothing was traced),
    // not a parse error.
    assert!(trace_report::verify_requests(&report).is_err());
}

#[test]
fn new_records_with_process_stamps_parse_alongside_legacy_ones() {
    // A merged stream mixing an old-era event line with new-schema
    // lines (shard/pid stamps, span links, request timelines): the
    // summarizer must take all of them.
    let mixed = concat!(
        r#"{"type":"event","name":"ledger_batch","span":null,"ts_us":1,"fidelity":"lf","proposals":1,"evaluations":1,"cache_hits":0,"cache_misses":1,"denied":0,"model_time_units":1.0,"dur_us":10}"#,
        "\n",
        r#"{"type":"event","name":"ledger_batch","span":null,"ts_us":2,"fidelity":"lf","proposals":1,"evaluations":1,"cache_hits":0,"cache_misses":1,"denied":0,"model_time_units":1.0,"dur_us":9,"links":["lg0.1"],"shard":1,"pid":4242}"#,
        "\n",
        r#"{"type":"request","trace":"lg0.1","role":"server","endpoint":"evaluate","status":200,"ts_us":30,"dur_us":500,"parse_us":5,"queue_us":100,"coalesce_us":80,"exec_us":300,"serialize_us":5,"write_us":10,"shard":1,"pid":4242}"#,
        "\n"
    );
    let summary = trace_report::summarize(mixed, 5).expect("mixed-era trace parses");
    assert_eq!(summary.requests, 1);
    assert_eq!(summary.per_fidelity["lf"].batches, 2);

    let report =
        trace_report::summarize_requests(&[("mixed".to_string(), mixed.to_string())]).unwrap();
    assert_eq!(report.rows.len(), 1);
    assert_eq!(report.rows[0].shard, Some(1));
    assert_eq!(report.rows[0].phase_sum(), 500);
    assert!(trace_report::verify_requests(&report).is_ok());
}
