//! Server smoke test over the real binary: start `archdse serve` on an
//! ephemeral port, probe it with a raw `std::net::TcpStream` client
//! (deliberately not the crate's own client, so the wire format is
//! checked independently), then shut it down gracefully and verify the
//! process exits 0.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

/// One raw HTTP/1.1 exchange; returns (status, body).
fn raw_request(addr: &str, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    stream.set_write_timeout(Some(Duration::from_secs(30))).unwrap();
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )
    .expect("send");
    stream.flush().unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("receive");
    let status: u16 =
        raw.strip_prefix("HTTP/1.1 ").and_then(|r| r.get(..3)).unwrap().parse().unwrap();
    let body = raw.split_once("\r\n\r\n").map(|(_, b)| b.to_string()).unwrap_or_default();
    (status, body)
}

#[test]
fn serve_answers_probes_and_shuts_down_cleanly() {
    let mut child = Command::new(env!("CARGO_BIN_EXE_archdse"))
        .args(["serve", "--addr", "127.0.0.1:0", "--benchmark", "ss", "--trace-len", "2000"])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("binary starts");

    // The first stdout line announces the bound (ephemeral) address.
    let mut stdout = BufReader::new(child.stdout.take().expect("stdout piped"));
    let mut line = String::new();
    stdout.read_line(&mut line).expect("announce line");
    let addr = line
        .trim()
        .strip_prefix("archdse-serve listening on ")
        .unwrap_or_else(|| panic!("unexpected announce line {line:?}"))
        .to_string();

    // Probe /healthz.
    let (status, body) = raw_request(&addr, "GET", "/healthz", "");
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"ok\""), "{body}");
    assert!(body.contains("\"ss\""), "{body}");

    // Probe one /v1/evaluate.
    let (status, body) =
        raw_request(&addr, "POST", "/v1/evaluate", r#"{"points": [0, 42], "fidelity": "lf"}"#);
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"results\""), "{body}");
    assert!(body.contains("\"cpi\""), "{body}");

    // Graceful shutdown: the server drains and the process exits 0.
    let (status, _) = raw_request(&addr, "POST", "/v1/shutdown", "");
    assert_eq!(status, 200);

    let deadline = Instant::now() + Duration::from_secs(60);
    let exit = loop {
        match child.try_wait().expect("wait") {
            Some(exit) => break exit,
            None if Instant::now() > deadline => {
                let _ = child.kill();
                panic!("server did not exit within 60s of shutdown");
            }
            None => std::thread::sleep(Duration::from_millis(50)),
        }
    };
    assert!(exit.success(), "server exited with {exit:?}");
}
