//! End-to-end request tracing over a real 2-shard stack: boot
//! `archdse serve --shards 2 --trace-out`, drive traced evaluate
//! requests through the router, and verify the acceptance criteria of
//! the tracing layer — 100% of router request spans join shard-side
//! spans, ≥95% of wall time is attributed to named phases, every
//! coalesced batch span links back to its member requests, and
//! `trace-report --requests` agrees with all of it.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use serde_json::Value;

/// One raw HTTP/1.1 exchange with optional extra headers; returns
/// (status, headers, body).
fn raw_request(
    addr: &str,
    method: &str,
    path: &str,
    body: &str,
    extra_headers: &[(&str, &str)],
) -> (u16, String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    stream.set_write_timeout(Some(Duration::from_secs(30))).unwrap();
    let mut head =
        format!("{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\n", body.len());
    for (name, value) in extra_headers {
        head.push_str(&format!("{name}: {value}\r\n"));
    }
    head.push_str("Connection: close\r\n\r\n");
    write!(stream, "{head}{body}").expect("send");
    stream.flush().unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("receive");
    let status: u16 =
        raw.strip_prefix("HTTP/1.1 ").and_then(|r| r.get(..3)).unwrap().parse().unwrap();
    let (headers, body) = raw.split_once("\r\n\r\n").unwrap_or(("", ""));
    (status, headers.to_string(), body.to_string())
}

fn boot_traced_stack(trace_path: &std::path::Path) -> (Child, String) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_archdse"))
        .args([
            "serve",
            "--shards",
            "2",
            "--addr",
            "127.0.0.1:0",
            "--benchmark",
            "ss",
            "--trace-len",
            "1000",
            "--trace-out",
            trace_path.to_str().unwrap(),
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("binary starts");
    let mut stdout = BufReader::new(child.stdout.take().expect("stdout piped"));
    let addr = loop {
        let mut line = String::new();
        assert!(stdout.read_line(&mut line).expect("announce") > 0, "stack died while booting");
        if let Some(addr) = line.trim().strip_prefix("archdse-serve listening on ") {
            break addr.to_string();
        }
    };
    // Keep draining stdout so the child never blocks on the pipe.
    std::thread::spawn(move || {
        let mut sink = String::new();
        while matches!(stdout.read_line(&mut sink), Ok(n) if n > 0) {
            sink.clear();
        }
    });
    (child, addr)
}

fn wait_exit(mut child: Child) {
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        match child.try_wait().expect("wait") {
            Some(exit) => {
                assert!(exit.success(), "stack exited with {exit:?}");
                return;
            }
            None if Instant::now() > deadline => {
                let _ = child.kill();
                panic!("stack did not exit within 60s of shutdown");
            }
            None => std::thread::sleep(Duration::from_millis(50)),
        }
    }
}

/// Parses every JSONL line of one trace file.
fn read_trace(path: &std::path::Path) -> Vec<Value> {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("missing trace file {}: {e}", path.display()));
    text.lines()
        .filter(|l| !l.trim().is_empty())
        .map(|l| serde_json::from_str(l).unwrap_or_else(|e| panic!("bad trace line {l:?}: {e}")))
        .collect()
}

fn requests_of(records: &[Value]) -> Vec<&Value> {
    records.iter().filter(|v| v.get("type").and_then(Value::as_str) == Some("request")).collect()
}

/// Sums the named phase fields (`*_us` minus `ts_us`/`dur_us`) of one
/// request record.
fn phase_sum(record: &Value) -> u64 {
    record
        .as_map()
        .expect("record is an object")
        .iter()
        .filter(|(k, _)| k.ends_with("_us") && k != "ts_us" && k != "dur_us")
        .map(|(_, v)| v.as_u64().unwrap_or(0))
        .sum()
}

#[test]
fn traced_two_shard_run_reconciles_end_to_end() {
    let dir = std::env::temp_dir().join(format!("archdse_req_trace_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let trace_path = dir.join("trace.jsonl");
    let (child, addr) = boot_traced_stack(&trace_path);

    // Drive traced evaluates with client-chosen ids; spread the points
    // so single requests fan out to both shard owners.
    let ids: Vec<String> = (0..8).map(|i| format!("req{i}")).collect();
    for (i, id) in ids.iter().enumerate() {
        let body = format!(
            "{{\"points\":[{},{},{},{}],\"fidelity\":\"lf\"}}",
            i,
            i + 251,
            i + 1021,
            i + 4003
        );
        let (status, headers, resp) =
            raw_request(&addr, "POST", "/v1/evaluate", &body, &[("X-ArchDSE-Trace", id)]);
        assert_eq!(status, 200, "{resp}");
        // The phase breakdown comes back to the client on the wire.
        let timing = headers
            .lines()
            .find(|l| l.to_ascii_lowercase().starts_with("server-timing:"))
            .unwrap_or_else(|| panic!("no Server-Timing header:\n{headers}"));
        assert!(timing.contains("app;dur="), "{timing}");
    }

    // The flight recorder sees them without any parsing of trace files.
    let (status, _, debug) = raw_request(&addr, "GET", "/debug/requests", "", &[]);
    assert_eq!(status, 200, "{debug}");
    let debug: Value = serde_json::from_str(&debug).expect("debug JSON");
    assert!(debug.get("router").is_some() && debug.get("shards").is_some());
    let shard_dumps = debug["shards"].as_array().expect("per-shard dumps");
    assert_eq!(shard_dumps.len(), 2);
    let recorded: u64 = shard_dumps.iter().map(|s| s["recorded"].as_u64().unwrap_or(0)).sum();
    assert!(recorded >= ids.len() as u64, "flight recorders saw {recorded} requests");

    let (status, _, _) = raw_request(&addr, "POST", "/v1/shutdown", "", &[]);
    assert_eq!(status, 200);
    wait_exit(child);

    let router_records = read_trace(&trace_path);
    let shard_paths = [dir.join("trace.shard0.jsonl"), dir.join("trace.shard1.jsonl")];
    let shard_records: Vec<Vec<Value>> = shard_paths.iter().map(|p| read_trace(p)).collect();

    // Router request spans: role "router", no shard stamp, one per
    // traced client request.
    let router_requests = requests_of(&router_records);
    for id in &ids {
        let row = router_requests
            .iter()
            .find(|r| r["trace"].as_str() == Some(id))
            .unwrap_or_else(|| panic!("router never recorded {id}"));
        assert_eq!(row["role"].as_str(), Some("router"));
        assert_eq!(row["endpoint"].as_str(), Some("evaluate"));
        assert!(row.get("shard").is_none(), "router records carry no shard stamp");
    }

    // 100% join: every router evaluate span has at least one shard-side
    // span with the same trace id, stamped with shard + pid.
    let mut shard_ids_seen: Vec<&str> = Vec::new();
    for (shard, records) in shard_records.iter().enumerate() {
        for row in requests_of(records) {
            assert_eq!(row["shard"].as_u64(), Some(shard as u64), "shard stamp");
            assert!(row["pid"].as_u64().is_some(), "pid stamp");
            if let Some(id) = row["trace"].as_str() {
                shard_ids_seen.push(id);
            }
        }
    }
    for id in &ids {
        assert!(shard_ids_seen.iter().any(|s| s == id), "{id} joined no shard request span");
    }

    // ≥95% of each traced request's wall time is attributed to named
    // phases, and no record claims more than its wall time.
    for records in std::iter::once(&router_records).chain(shard_records.iter()) {
        for row in requests_of(records) {
            let dur = row["dur_us"].as_u64().expect("dur_us");
            let attributed = phase_sum(row);
            assert!(attributed <= dur, "phase sums exceed wall time: {row:?}");
            if row["endpoint"].as_str() == Some("evaluate") && dur > 0 {
                assert!(
                    attributed as f64 >= 0.95 * dur as f64,
                    "only {attributed} of {dur} µs attributed: {row:?}"
                );
            }
        }
    }

    // Every coalesced batch span links to all of its member requests:
    // each traced evaluate id shows up in some shard batch's links.
    let mut linked: Vec<String> = Vec::new();
    for records in &shard_records {
        for record in records.iter() {
            if record.get("name").and_then(Value::as_str) == Some("ledger_batch") {
                if let Some(links) = record.get("links").and_then(Value::as_array) {
                    linked.extend(links.iter().filter_map(Value::as_str).map(str::to_string));
                }
            }
        }
    }
    for id in &ids {
        assert!(linked.iter().any(|l| l == id), "{id} missing from every batch's span links");
    }

    // The offline report agrees: merging the three files joins every
    // proxied router span and passes verification (exit 0).
    let merged = format!(
        "{},{},{}",
        trace_path.display(),
        shard_paths[0].display(),
        shard_paths[1].display()
    );
    let out = Command::new(env!("CARGO_BIN_EXE_archdse"))
        .args(["trace-report", "--requests", "--trace", &merged])
        .output()
        .expect("trace-report runs");
    let report = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "trace-report --requests failed:\n{report}\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(report.contains("every check passed"), "{report}");
    assert!(report.contains("per-phase percentiles"), "{report}");

    let _ = std::fs::remove_dir_all(&dir);
}
