//! End-to-end tests of the compiled `archdse` binary.

use std::process::Command;

fn archdse() -> Command {
    Command::new(env!("CARGO_BIN_EXE_archdse"))
}

#[test]
fn help_prints_usage_and_succeeds() {
    let out = archdse().arg("help").output().expect("binary runs");
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("USAGE"));
    assert!(text.contains("explore"));
}

#[test]
fn space_prints_table1() {
    let out = archdse().arg("space").output().expect("binary runs");
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("Decode Width"));
    assert!(text.contains("3000000"));
}

#[test]
fn unknown_command_fails_with_usage() {
    let out = archdse().arg("florble").output().expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("unknown command"));
}

#[test]
fn bad_flag_value_is_reported() {
    let out = archdse().args(["explore", "--benchmark", "nonsense"]).output().expect("binary runs");
    assert!(!out.status.success());
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("nonsense"), "stderr: {err}");
}

#[test]
fn quick_explore_emits_a_design_and_rules_header() {
    let out = archdse()
        .args([
            "explore",
            "--benchmark",
            "ss",
            "--area",
            "6.0",
            "--lf-episodes",
            "10",
            "--hf-budget",
            "2",
            "--trace-len",
            "1000",
        ])
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("best design"));
    assert!(text.contains("simulated CPI"));
    assert!(text.contains("learned rules"));
}

#[test]
fn json_output_is_valid_json() {
    let dir = std::env::temp_dir().join("archdse_bin_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("fig6.json");
    let out =
        archdse().args(["fig6", "--json", path.to_str().unwrap()]).output().expect("binary runs");
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let parsed: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(&path).unwrap()).unwrap();
    assert!(parsed["curves"].is_array());
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn trace_pipeline_roundtrips_through_report_and_check() {
    let dir = std::env::temp_dir().join("archdse_trace_test");
    std::fs::create_dir_all(&dir).unwrap();
    let trace = dir.join("explore.jsonl");
    let metrics = dir.join("metrics.prom");

    let out = archdse()
        .args([
            "explore",
            "--benchmark",
            "ss",
            "--area",
            "6.0",
            "--lf-episodes",
            "10",
            "--hf-budget",
            "2",
            "--trace-len",
            "1000",
            "--trace-out",
            trace.to_str().unwrap(),
            "--metrics-out",
            metrics.to_str().unwrap(),
        ])
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));

    // Every trace line is one JSON object; a run_summary event closes it.
    let text = std::fs::read_to_string(&trace).unwrap();
    assert!(!text.is_empty());
    for line in text.lines() {
        let parsed: serde_json::Value = serde_json::from_str(line).expect("valid JSONL line");
        assert!(parsed.get("ts_us").is_some(), "line missing ts_us: {line}");
    }
    assert!(text.contains("\"name\":\"run_summary\""));
    assert!(text.contains("\"name\":\"episode\""));
    assert!(text.contains("\"name\":\"ledger_batch\""));

    // trace-report reconciles the per-batch deltas against run_summary.
    let out = archdse()
        .args(["trace-report", "--trace", trace.to_str().unwrap(), "--top", "5"])
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let report = String::from_utf8(out.stdout).unwrap();
    assert!(report.contains("per-phase wall time"), "report: {report}");
    assert!(report.contains("exact match"), "report: {report}");

    // The exported snapshot passes the in-repo Prometheus checker.
    let out = archdse()
        .args(["check-metrics", "--file", metrics.to_str().unwrap()])
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let summary = String::from_utf8(out.stdout).unwrap();
    assert!(summary.contains("OK"), "summary: {summary}");

    std::fs::remove_file(&trace).unwrap();
    std::fs::remove_file(&metrics).unwrap();
}

#[test]
fn trace_report_requires_trace_flag() {
    let out = archdse().arg("trace-report").output().expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("--trace"), "stderr: {err}");
}

#[test]
fn check_metrics_rejects_malformed_exposition() {
    let dir = std::env::temp_dir().join("archdse_checkm_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("bad.prom");
    std::fs::write(&path, "this is not prometheus text\n").unwrap();
    let out = archdse()
        .args(["check-metrics", "--file", path.to_str().unwrap()])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(1));
    std::fs::remove_file(&path).unwrap();
}
