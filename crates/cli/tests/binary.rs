//! End-to-end tests of the compiled `archdse` binary.

use std::process::Command;

fn archdse() -> Command {
    Command::new(env!("CARGO_BIN_EXE_archdse"))
}

#[test]
fn help_prints_usage_and_succeeds() {
    let out = archdse().arg("help").output().expect("binary runs");
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("USAGE"));
    assert!(text.contains("explore"));
}

#[test]
fn space_prints_table1() {
    let out = archdse().arg("space").output().expect("binary runs");
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("Decode Width"));
    assert!(text.contains("3000000"));
}

#[test]
fn unknown_command_fails_with_usage() {
    let out = archdse().arg("florble").output().expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("unknown command"));
}

#[test]
fn bad_flag_value_is_reported() {
    let out = archdse().args(["explore", "--benchmark", "nonsense"]).output().expect("binary runs");
    assert!(!out.status.success());
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("nonsense"), "stderr: {err}");
}

#[test]
fn quick_explore_emits_a_design_and_rules_header() {
    let out = archdse()
        .args([
            "explore",
            "--benchmark",
            "ss",
            "--area",
            "6.0",
            "--lf-episodes",
            "10",
            "--hf-budget",
            "2",
            "--trace-len",
            "1000",
        ])
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("best design"));
    assert!(text.contains("simulated CPI"));
    assert!(text.contains("learned rules"));
}

#[test]
fn json_output_is_valid_json() {
    let dir = std::env::temp_dir().join("archdse_bin_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("fig6.json");
    let out =
        archdse().args(["fig6", "--json", path.to_str().unwrap()]).output().expect("binary runs");
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let parsed: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(&path).unwrap()).unwrap();
    assert!(parsed["curves"].is_array());
    std::fs::remove_file(&path).unwrap();
}
